#!/usr/bin/env python
"""Overlay multicast with statistical rate selection.

A source distributes one stream to three clients through a two-level
multicast tree.  The multicast generalization of Lemma 1: pace at the
rate the *weakest* root-to-leaf distribution sustains with 95 %
probability and every client keeps up; pace at the strongest leaf's rate
and the weak subtree drowns.

Run:  python examples/multicast_delivery.py
"""

from repro.core.guarantees import guaranteed_rate_at
from repro.monitoring.cdf import EmpiricalCDF
from repro.overlay.mesh import OverlayMesh
from repro.overlay.multicast import (
    MulticastTree,
    multicast_guaranteed_rate,
    run_multicast_session,
)


def main() -> None:
    mesh = OverlayMesh()
    mesh.add_link("src", "hub", "calm")
    mesh.add_link("hub", "edge", "light")
    mesh.add_link("hub", "c1", "calm")
    mesh.add_link("edge", "c2", "light")
    mesh.add_link("edge", "c3", "abilene-noisy")
    realization = mesh.realize(seed=8, duration=90.0, dt=0.1)

    tree = MulticastTree(
        source="src",
        children={
            "src": ("hub",),
            "hub": ("edge", "c1"),
            "edge": ("c2", "c3"),
            "c1": (),
            "c2": (),
            "c3": (),
        },
    )
    print("root-to-leaf sustainable rates at P=0.95:")
    for leaf, path in sorted(tree.paths_to_leaves().items()):
        cdf = EmpiricalCDF(realization.route_bottleneck_series(path))
        print(f"  {leaf}: {guaranteed_rate_at(cdf, 0.95):6.1f} Mbps via {path}")

    safe = multicast_guaranteed_rate(realization, tree, 0.95)
    fast = max(
        guaranteed_rate_at(
            EmpiricalCDF(realization.route_bottleneck_series(path)), 0.95
        )
        for path in tree.paths_to_leaves().values()
    )
    for label, rate in ((f"paced (weakest leaf)", safe), ("overdriven", fast)):
        result = run_multicast_session(
            realization, tree, rate, node_buffer_bytes=4_000_000
        )
        print(f"\n{label} at {rate:.1f} Mbps:")
        for client in tree.leaves:
            print(
                f"  {client}: attainment "
                f"{result.client_attainment(client, rate) * 100:5.1f}%, "
                f"dropped {result.dropped_bytes[client] / 1e6:6.1f} MB"
            )


if __name__ == "__main__":
    main()
