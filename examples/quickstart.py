#!/usr/bin/env python
"""Quickstart: statistical path guarantees and PGOS in ~60 lines.

Builds the paper's emulated testbed (two overlay paths with NLANR-like
cross traffic), asks the monitoring stack what each path can guarantee,
admits two streams with probabilistic requirements, and runs PGOS.

Run:  python examples/quickstart.py
"""

from repro.core.admission import AdmissionController
from repro.core.guarantees import guaranteed_rate_at, probabilistic_guarantee
from repro.core.pgos import PGOSScheduler
from repro.core.spec import StreamSpec
from repro.harness.experiment import run_schedule_experiment
from repro.harness.metrics import summarize_stream
from repro.monitoring.cdf import EmpiricalCDF
from repro.network.emulab import make_figure8_testbed


def main() -> None:
    # 1. The emulated wide-area testbed (Figure 8 of the paper): two
    #    node-disjoint overlay paths, each sharing its bottleneck with
    #    synthetic cross traffic.
    testbed = make_figure8_testbed()
    realization = testbed.realize(seed=42, duration=120.0, dt=0.1)

    # 2. What can each path statistically guarantee?  (In the live system
    #    the monitor builds these CDFs online; here we peek at a probe
    #    window of the realization.)
    print("Path guarantees from 30 s of monitoring:")
    cdfs = {}
    for name in realization.path_names():
        probe = realization.available[name].window(0, 300)
        cdf = EmpiricalCDF(probe)
        cdfs[name] = cdf
        g95 = guaranteed_rate_at(cdf, 0.95)
        print(
            f"  path {name}: mean {cdf.mean():5.1f} Mbps, "
            f"sustains {g95:5.1f} Mbps 95% of the time"
        )

    # 3. Streams with utility requirements: a control stream that must
    #    flow 99% of the time, a data stream at 95%, and best-effort bulk.
    streams = [
        StreamSpec(name="control", required_mbps=2.0, probability=0.99),
        StreamSpec(name="data", required_mbps=20.0, probability=0.95),
        StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
    ]

    # 4. Admission control: can the overlay accept these requirements?
    decision = AdmissionController(tw=1.0).try_admit(streams, cdfs)
    assert decision.admitted, decision.reason
    mapping = decision.mapping
    for s in streams:
        paths = mapping.paths_of(s.name)
        achieved = mapping.achieved_probability.get(s.name)
        extra = f" (P >= {achieved:.3f})" if achieved else ""
        print(f"  {s.name}: mapped to path(s) {paths}{extra}")

    # 5. Run PGOS end to end and check what the streams actually got.
    result = run_schedule_experiment(
        PGOSScheduler(), realization, streams, warmup_intervals=300
    )
    print("\nDelivered throughput:")
    for s in streams:
        summary = summarize_stream(
            result.stream_series(s.name), s.name, "PGOS", s.required_mbps
        )
        meeting = (
            f", >= target {summary.fraction_meeting_target * 100:.1f}% of time"
            if summary.fraction_meeting_target is not None
            else ""
        )
        print(
            f"  {s.name:8s} mean {summary.mean_mbps:6.2f} Mbps, "
            f"std {summary.std_mbps:5.2f}{meeting}"
        )

    # Sanity: the probabilistic guarantee held.
    control = summarize_stream(
        result.stream_series("control"), "control", "PGOS", 2.0
    )
    assert control.fraction_meeting_target >= 0.95, control
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
