#!/usr/bin/env python
"""Admission control, the upcall protocol, and utility-based selection.

Shows the control plane the paper describes around PGOS:

1. a feasible stream set is admitted and mapped;
2. an overloaded set is rejected with a *renegotiation hint* (the
   probability the overlay can actually offer) — the paper's upcall;
3. the application retries with the hinted probability and is admitted;
4. when several guaranteed streams compete for limited statistical
   capacity, utility-based selection decides which keep their guarantees.

Run:  python examples/admission_control.py
"""

from repro.core.admission import AdmissionController
from repro.core.spec import StreamSpec
from repro.core.utility import select_streams_by_utility
from repro.monitoring.cdf import EmpiricalCDF
from repro.network.emulab import make_figure8_testbed


def main() -> None:
    testbed = make_figure8_testbed()
    realization = testbed.realize(seed=2006, duration=60.0, dt=0.1)
    cdfs = {
        p: EmpiricalCDF(realization.available[p].available_mbps)
        for p in realization.path_names()
    }
    controller = AdmissionController(tw=1.0)

    # 1. A feasible set.
    modest = [
        StreamSpec(name="steering", required_mbps=1.0, probability=0.99),
        StreamSpec(name="viz", required_mbps=20.0, probability=0.95),
    ]
    decision = controller.try_admit(modest, cdfs)
    print(f"modest workload admitted: {decision.admitted}")
    for name in decision.admitted_streams:
        print(
            f"  {name}: paths {decision.mapping.paths_of(name)}, "
            f"P >= {decision.mapping.achieved_probability[name]:.3f}"
        )

    # 2. An overloaded set: the upcall names the stream and hints a
    #    feasible probability.
    greedy = modest + [
        StreamSpec(name="firehose", required_mbps=45.0, probability=0.99)
    ]
    decision = controller.try_admit(greedy, cdfs)
    print(f"\ngreedy workload admitted: {decision.admitted}")
    print(f"  rejected stream: {decision.rejected_stream}")
    print(f"  overlay can offer P ~= {decision.suggested_probability:.3f}")

    # 3. The application renegotiates downward, as the paper describes
    #    ("the application can reduce its bandwidth requirement, e.g.
    #    from 95% to 90%").
    retry_p = max(round(decision.suggested_probability * 0.9, 2), 0.05)
    renegotiated = modest + [
        StreamSpec(name="firehose", required_mbps=45.0, probability=retry_p)
    ]
    decision = controller.try_admit(renegotiated, cdfs)
    print(f"\nretry at P={retry_p}: admitted={decision.admitted}")

    # 4. Utility-based selection under overload: who keeps guarantees?
    competing = [
        StreamSpec(name="steering", required_mbps=1.0, probability=0.95),
        StreamSpec(name="viz", required_mbps=25.0, probability=0.95),
        StreamSpec(name="replicas", required_mbps=40.0, probability=0.95),
        StreamSpec(name="archive", required_mbps=45.0, probability=0.95),
    ]
    utilities = {
        "steering": 100.0,
        "viz": 60.0,
        "replicas": 30.0,
        "archive": 5.0,
    }
    selection = select_streams_by_utility(competing, utilities, cdfs)
    print(
        f"\nutility selection: admitted {list(selection.admitted)}, "
        f"demoted {list(selection.demoted)} "
        f"(total utility {selection.total_utility:.0f})"
    )
    assert "steering" in selection.admitted


if __name__ == "__main__":
    main()
