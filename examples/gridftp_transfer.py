#!/usr/bin/env python
"""IQPG-GridFTP parallel transfer scenario (paper Section 6.2).

Streams climate-database records (numeric data + low/high-resolution
images) over two overlay paths.  Standard GridFTP's blocked layout lets
all components compete; IQPG-GridFTP (GridFTP with PGOS interposed)
guarantees DT1/DT2 their 25 records/second while DT3 fills the leftover.

Run:  python examples/gridftp_transfer.py [seed]
"""

import sys

from repro.apps.gridftp import (
    DT1_MBPS,
    DT2_MBPS,
    records_per_second,
    run_gridftp,
)
from repro.harness.metrics import summarize_stream
from repro.harness.report import format_table, series_block


def main(seed: int = 11) -> None:
    rows = []
    for transport in ("GridFTP", "IQPG"):
        res = run_gridftp(transport, seed=seed, duration=150.0)
        print(f"{res.scheduler_name}:")
        for stream in ("DT1", "DT2", "DT3"):
            print(" ", series_block(stream, res.stream_series(stream)))
        print()
        for stream, target in (
            ("DT1", DT1_MBPS),
            ("DT2", DT2_MBPS),
            ("DT3", None),
        ):
            s = summarize_stream(
                res.stream_series(stream), stream, res.scheduler_name, target
            )
            rows.append(
                (
                    res.scheduler_name,
                    stream,
                    target,
                    s.mean_mbps,
                    s.std_mbps,
                    records_per_second(res, stream),
                )
            )
    print(
        format_table(
            ["transport", "component", "target Mbps", "mean", "std", "records/s"],
            rows,
        )
    )
    print(
        "\nThe real-time requirement is 25 records/s for DT1 and DT2; "
        "IQPG-GridFTP holds it with near-zero variance while DT3 absorbs "
        "the bandwidth fluctuation."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
