#!/usr/bin/env python
"""Choosing paths with statistical guarantees (paper Section 4 / 5.1).

Demonstrates the core IQ-Paths primitive without any scheduler: given two
paths — one with higher *average* bandwidth but noisy, one lower but
stable — which should carry a control stream that needs 8 Mbps 99% of
the time?  Mean prediction picks the wrong path; percentile prediction
picks the right one.

Run:  python examples/path_selection.py
"""

import numpy as np

from repro.core.guarantees import (
    guaranteed_rate_at,
    probabilistic_guarantee,
    violation_bound,
)
from repro.monitoring.cdf import EmpiricalCDF
from repro.monitoring.predictors import EWMAPredictor, PercentilePredictor
from repro.sim.random import RandomStreams
from repro.traces.synthetic import CompositeProcess, HeavyTailNoise, IIDProcess


def main() -> None:
    streams = RandomStreams(2006)
    # Path "fast-noisy": mean 30 Mbps but heavy dips (bursty cross traffic).
    fast_noisy = CompositeProcess(
        [
            IIDProcess(mean=34.0, std=4.0),
            HeavyTailNoise(burst_prob=0.12, burst_scale=-12.0, sigma=0.6),
        ],
        floor=0.0,
    )
    # Path "slow-stable": mean 12 Mbps, tight distribution.
    slow_stable = IIDProcess(mean=12.0, std=0.8)

    samples = {
        "fast-noisy": fast_noisy.sample(2000, streams.get("fast")),
        "slow-stable": np.clip(
            slow_stable.sample(2000, streams.get("slow")), 0.0, None
        ),
    }

    required, probability = 8.0, 0.99
    print(f"control stream needs {required} Mbps {probability:.0%} of the time\n")
    for name, series in samples.items():
        cdf = EmpiricalCDF(series)
        ewma = EWMAPredictor(alpha=0.25)
        for x in series:
            ewma.update(x)
        pct = PercentilePredictor(q=(1 - probability) * 100, window=1000)
        for x in series[-1000:]:
            pct.update(x)
        p_ok = probabilistic_guarantee(cdf, required)
        ez = violation_bound(cdf, x_packets=667, packet_size=1500, tw=1.0)
        print(f"path {name}:")
        print(f"  mean prediction (EWMA):        {ewma.predict():6.2f} Mbps")
        print(f"  sustains at P={probability}:        {guaranteed_rate_at(cdf, probability):6.2f} Mbps")
        print(f"  P(bw >= {required} Mbps):          {p_ok:6.3f}")
        print(f"  Lemma-2 E[Z] bound (667 pkt/s): {ez:6.1f} pkts/window\n")

    fast_ok = probabilistic_guarantee(EmpiricalCDF(samples["fast-noisy"]), required)
    slow_ok = probabilistic_guarantee(EmpiricalCDF(samples["slow-stable"]), required)
    print(
        "mean prediction would choose the fast-noisy path "
        f"(34 vs 12 Mbps average), but only the slow-stable path meets the "
        f"99% requirement: P = {slow_ok:.3f} vs {fast_ok:.3f}."
    )
    assert slow_ok >= probability > fast_ok


if __name__ == "__main__":
    main()
