#!/usr/bin/env python
"""Path failure, self-regulating recovery, and the runtime health layer.

Part 1 — the paper's static story: a 75 %-severity degradation baked
into the overlay path carrying the critical streams.  PGOS's monitoring
sees the bandwidth CDF shift (Kolmogorov-Smirnov trigger), recomputes
the resource mapping, and moves the guarantees to the healthy path; a
static single-path deployment stays degraded for the rest of the run.

Part 2 — the runtime fault-tolerance layer: the same overlay hit by a
*dynamic* fault campaign (full outage on the best path, applied
mid-run).  Per-path health state machines detect the collapse, the
failed path is quarantined out of the mapping, the elastic stream is
shed to isolate recovery, and the path only re-enters service through
backoff-gated, probe-confirmed recovery.  The chaos report scores the
loop: time to detect, time to recover, guarantee-violation seconds.

Run:  python examples/failure_recovery.py [seed]
"""

import sys

from repro.apps.smartpointer import BOND1_MBPS, smartpointer_streams
from repro.baselines.wfq import WFQScheduler
from repro.core.pgos import PGOSScheduler
from repro.harness.chaos import run_chaos_campaign
from repro.harness.experiment import run_schedule_experiment
from repro.harness.metrics import fraction_of_time_at_least
from repro.harness.report import series_block
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import FaultCampaign, PathFault, inject_faults


def static_failover(realization) -> None:
    fault = PathFault(path="A", start=75.0, end=150.0, severity=0.75)
    faulted = inject_faults(realization, [fault])
    print(
        f"fault: path {fault.path} loses {fault.severity:.0%} of its "
        f"bandwidth from t={fault.start:.0f}s to t={fault.end:.0f}s\n"
    )

    streams = smartpointer_streams()
    for label, scheduler in (
        ("PGOS (adaptive)", PGOSScheduler(ks_threshold=0.15)),
        ("WFQ pinned to A", WFQScheduler(path="A")),
    ):
        result = run_schedule_experiment(
            scheduler, faulted, streams, warmup_intervals=300
        )
        bond1 = result.stream_series("Bond1")
        tail = bond1[-300:]  # the last 30 s, well after the fault
        attainment = fraction_of_time_at_least(tail, BOND1_MBPS * 0.999)
        print(f"{label}:")
        print(" ", series_block("Bond1", bond1))
        if isinstance(scheduler, PGOSScheduler):
            print(f"  remaps: {scheduler.remap_count}")
        print(
            f"  post-fault guarantee attainment (last 30 s): "
            f"{attainment * 100:.1f}%\n"
        )


def runtime_health(realization) -> None:
    campaign = FaultCampaign(
        faults=(PathFault(path="A", start=30.0, end=45.0, severity=1.0),),
        name="outage-on-best-path",
    )
    print(
        f"campaign {campaign.name!r}: full outage on path A, "
        f"t={campaign.first_onset:.0f}s to t={campaign.last_end:.0f}s "
        "(session time, applied mid-run)\n"
    )
    report = run_chaos_campaign(
        realization, smartpointer_streams(), campaign, duration=100.0
    )
    print(report.summary())
    print("\nhealth transitions and degradation decisions:")
    for event in report.events:
        print(f"  {event}")
    print()


def main(seed: int = 41) -> None:
    testbed = make_figure8_testbed(
        profile_a="abilene-moderate", profile_b="light"
    )
    realization = testbed.realize(seed=seed, duration=150.0, dt=0.1)

    print("=== Part 1: static fault, KS-trigger failover ===\n")
    static_failover(realization)

    print("=== Part 2: dynamic campaign, health layer ===\n")
    runtime_health(realization)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 41)
