#!/usr/bin/env python
"""SmartPointer remote-visualization scenario (paper Section 6.1).

A molecular-dynamics server streams Atom / Bond1 / Bond2 data to a remote
collaborator at 25 frames/s.  Atom and Bond1 are critical (in the current
view volume) and carry 95% predictive guarantees; Bond2 is best-effort.
Compares WFQ, MSFQ, PGOS, and the OptSched oracle on one realization and
prints the Figure 9/11-style summary.

Run:  python examples/smartpointer_collab.py [seed]
"""

import sys

from repro.apps.smartpointer import (
    ATOM_MBPS,
    BOND1_MBPS,
    FRAME_RATE,
    frame_bytes,
    run_smartpointer,
)
from repro.harness.metrics import frame_jitter_ms, summarize_stream
from repro.harness.report import format_table, series_block


def main(seed: int = 7) -> None:
    rows = []
    jitter_rows = []
    for alg in ("WFQ", "MSFQ", "PGOS", "OptSched"):
        res = run_smartpointer(alg, seed=seed, duration=150.0)
        for stream, target in (
            ("Atom", ATOM_MBPS),
            ("Bond1", BOND1_MBPS),
            ("Bond2", None),
        ):
            s = summarize_stream(res.stream_series(stream), stream, alg, target)
            rows.append(
                (
                    alg,
                    stream,
                    target,
                    s.mean_mbps,
                    s.std_mbps,
                    s.p95_time_mbps,
                    s.fraction_meeting_target,
                )
            )
        jitter_rows.append(
            (
                alg,
                frame_jitter_ms(
                    res.stream_series("Bond1"),
                    res.dt,
                    frame_bytes(BOND1_MBPS),
                    FRAME_RATE,
                ),
            )
        )
        if alg == "PGOS":
            print("PGOS per-path sub-streams:")
            for stream in ("Atom", "Bond1", "Bond2"):
                for path in res.paths_used(stream):
                    print(
                        " ",
                        series_block(
                            f"{stream}-Path{path}",
                            res.substream_series(stream, path),
                        ),
                    )
            print()

    print(
        format_table(
            [
                "algorithm",
                "stream",
                "target",
                "mean",
                "std",
                "95% time",
                "frac>=target",
            ],
            rows,
        )
    )
    print()
    print(format_table(["algorithm", "frame jitter (ms)"], jitter_rows))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
