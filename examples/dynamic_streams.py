#!/usr/bin/env python
"""Dynamic stream membership through the middleware facade.

A remote-visualization session evolves over two minutes: the steering
channel runs throughout, the visualization stream joins once the viewer
connects, a bulk checkpoint transfer joins and later finishes.  Every
membership change voids PGOS's scheduling vectors and triggers a remap,
while the steering channel's 99 % guarantee holds across all of it.

Run:  python examples/dynamic_streams.py
"""

from repro.core.spec import StreamSpec
from repro.middleware.service import IQPathsService
from repro.harness.report import series_block
from repro.network.emulab import make_figure8_testbed


def main() -> None:
    testbed = make_figure8_testbed()
    realization = testbed.realize(seed=303, duration=150.0, dt=0.1)
    service = IQPathsService(realization, warmup_intervals=300)

    steering = StreamSpec(
        name="steering", required_mbps=1.5, probability=0.99, max_rtt_ms=60.0
    )
    viz = StreamSpec(name="viz", required_mbps=22.0, probability=0.95)
    checkpoint = StreamSpec(
        name="checkpoint", elastic=True, nominal_mbps=50.0
    )

    service.open_stream(steering)
    service.at(20.0, lambda: service.open_stream(viz))
    service.at(45.0, lambda: service.open_stream(checkpoint))
    service.at(90.0, lambda: service.close_stream("checkpoint"))
    service.advance(120.0)

    print(f"remaps over the session: {service.scheduler.remap_count}\n")
    for name, report in service.reports().items():
        attainment = (
            f"  guarantee held {report.attainment * 100:.1f}% of lifetime"
            if report.attainment is not None
            else ""
        )
        print(series_block(name, report.mbps))
        print(f"  mean {report.mean_mbps:.2f} Mbps{attainment}\n")

    steering_report = service.report("steering")
    assert steering_report.attainment >= 0.99, steering_report
    print("steering guarantee held through every join/leave")


if __name__ == "__main__":
    main()
