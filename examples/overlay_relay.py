#!/usr/bin/env python
"""Multi-hop overlay relaying: why statistical pacing matters end to end.

A stream crosses two overlay hops (server -> router daemon -> client).
The first hop is fat; the second is the bottleneck.  A source that pushes
as fast as its first hop accepts floods the router's buffers; a source
paced at the rate the *end-to-end* distribution sustains 95 % of the time
(what PGOS's Lemma-1 machinery prescribes) delivers its full rate with a
tiny router footprint.

Run:  python examples/overlay_relay.py
"""

from repro.core.guarantees import guaranteed_rate_at
from repro.monitoring.cdf import EmpiricalCDF
from repro.overlay.forwarding import RelayStream, run_relay_session
from repro.overlay.mesh import OverlayMesh


def main() -> None:
    mesh = OverlayMesh()
    mesh.add_link("server", "router", "calm")              # fat hop
    mesh.add_link("router", "client", "abilene-moderate")  # bottleneck
    realization = mesh.realize(seed=12, duration=120.0, dt=0.1)

    route = ["server", "router", "client"]
    e2e = EmpiricalCDF(realization.route_bottleneck_series(route))
    paced_rate = guaranteed_rate_at(e2e, 0.95)
    print(
        f"end-to-end distribution: mean {e2e.mean():.1f} Mbps, "
        f"sustains {paced_rate:.1f} Mbps 95% of the time\n"
    )

    for label, stream in (
        (f"paced at {paced_rate:.1f} Mbps", RelayStream("s", paced_rate)),
        ("greedy (fill first hop)", RelayStream("s", None)),
    ):
        result = run_relay_session(realization, route, [stream])
        print(f"{label}:")
        print(f"  delivered mean : {result.delivered_mean('s'):7.2f} Mbps")
        print(
            f"  router queue   : peak "
            f"{result.peak_queue_bytes['router'] / 1e6:7.2f} MB, mean "
            f"{result.mean_queue_bytes['router'] / 1e6:7.2f} MB"
        )
        print(f"  dropped        : {result.dropped_bytes['s'] / 1e6:7.2f} MB\n")


if __name__ == "__main__":
    main()
