#!/usr/bin/env python
"""Layered video over IQ-Paths (the paper's multimedia application).

A fine-grained-scalable video stream: the base layer must arrive for
playback to continue; enhancement layers improve quality when bandwidth
allows.  PGOS maps the base layer to a statistically guaranteed path and
lets the enhancement ride the leftovers — compare stalls/quality against
MSFQ and single-path WFQ.

Run:  python examples/video_streaming.py [seed]
"""

import sys

from repro.apps.video import BASE_LAYER_MBPS, playback_quality, run_video
from repro.harness.metrics import summarize_stream
from repro.harness.report import format_table


def main(seed: int = 23) -> None:
    rows = []
    for alg in ("WFQ", "MSFQ", "PGOS"):
        res = run_video(alg, seed=seed, duration=120.0)
        quality = playback_quality(res)
        base = summarize_stream(
            res.stream_series("base"), "base", alg, BASE_LAYER_MBPS
        )
        rows.append(
            (
                alg,
                base.mean_mbps,
                base.std_mbps,
                f"{quality.stall_fraction * 100:.2f}%",
                quality.mean_quality,
                quality.quality_std,
            )
        )
        print(f"{alg}: {quality.describe()}")
    print()
    print(
        format_table(
            [
                "algorithm",
                "base mean",
                "base std",
                "stalls",
                "quality mean",
                "quality std",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 23)
