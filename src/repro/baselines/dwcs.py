"""Dynamic Window-Constrained Scheduling (DWCS), single path.

The PGOS packet scheduler "is inspired by the DWCS packet scheduling
algorithm" (West & Poellabauer [31]).  This is a faithful single-link
rendition of that ancestor, used to (a) ground the Table-1 precedence
rules in their origin and (b) compare window-constraint satisfaction
against naive EDF/FIFO service on a constrained link.

Each stream *i* declares a window constraint ``(x_i, y_i)``: of every
``y_i`` consecutive packets, at least ``x_i`` must be serviced before the
window ends.  DWCS tracks the *current* constraint ``(x'_i, y'_i)`` and
serves, at each slot, the stream chosen by the precedence rules:

1. earliest deadline first (a stream's deadline is its current window's
   end);
2. equal deadlines: highest current window-constraint ``x'/y'`` first
   (the stream with the most unmet obligation);
3. remaining ties: lowest stream index (FIFO among equals).

Service and window-boundary adjustments follow the DWCS recurrences:
serving a packet decrements ``x'``; when a window expires with ``x' > 0``
the shortfall counts as violations and both counters reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.core.spec import WindowConstraint


@dataclass
class _StreamState:
    name: str
    constraint: WindowConstraint
    window_slots: int
    x_left: int = 0
    window_end: int = 0
    pending: int = 0  # packets queued
    serviced: int = 0
    violations: int = 0

    @property
    def current_ratio(self) -> float:
        """The live obligation x'/y' (0 when satisfied this window)."""
        return self.x_left / self.constraint.y


class DWCSScheduler:
    """Single-link dynamic window-constrained packet scheduler.

    Time advances in *slots*; one packet is transmitted per slot (the
    link's packet rate sets the wall-clock meaning of a slot).  Streams
    are assumed always-backlogged unless ``arrive`` is used to meter
    their queues.

    Parameters
    ----------
    constraints:
        ``{stream_name: (WindowConstraint, window_slots)}`` — each
        stream's (x, y) plus its window length in slots.
    """

    def __init__(
        self, constraints: dict[str, tuple[WindowConstraint, int]]
    ):
        if not constraints:
            raise ConfigurationError("at least one stream required")
        self._streams: list[_StreamState] = []
        for name, (constraint, window_slots) in constraints.items():
            if window_slots < 1:
                raise ConfigurationError(
                    f"window_slots must be >= 1, got {window_slots}"
                )
            if constraint.x > window_slots:
                raise ConfigurationError(
                    f"stream {name!r}: x={constraint.x} cannot exceed its "
                    f"window of {window_slots} slots"
                )
            self._streams.append(
                _StreamState(
                    name=name,
                    constraint=constraint,
                    window_slots=window_slots,
                    x_left=constraint.x,
                    window_end=window_slots,
                )
            )
        self._slot = 0

    # ------------------------------------------------------------------
    # queue metering (optional; default = always backlogged)
    # ------------------------------------------------------------------
    def arrive(self, name: str, packets: int) -> None:
        """Queue ``packets`` arrivals for ``name``."""
        state = self._state(name)
        if packets < 0:
            raise ConfigurationError(f"packets must be >= 0, got {packets}")
        state.pending += packets

    def _state(self, name: str) -> _StreamState:
        for state in self._streams:
            if state.name == name:
                return state
        raise ConfigurationError(f"unknown stream {name!r}")

    # ------------------------------------------------------------------
    # the scheduling loop
    # ------------------------------------------------------------------
    def _roll_windows(self) -> None:
        for state in self._streams:
            if self._slot >= state.window_end:
                if state.x_left > 0:
                    state.violations += state.x_left
                state.x_left = state.constraint.x
                state.window_end += state.window_slots

    def _select(self, always_backlogged: bool) -> _StreamState | None:
        candidates = [
            s
            for s in self._streams
            if (always_backlogged or s.pending > 0)
        ]
        obligated = [s for s in candidates if s.x_left > 0]
        pool = obligated or candidates
        if not pool:
            return None
        # Rule 1: earliest deadline; rule 2: highest x'/y'; rule 3: order.
        return min(
            pool,
            key=lambda s: (
                s.window_end,
                -s.current_ratio,
                self._streams.index(s),
            ),
        )

    def run(self, slots: int, always_backlogged: bool = True) -> None:
        """Advance ``slots`` transmission slots."""
        if slots < 0:
            raise ConfigurationError(f"slots must be >= 0, got {slots}")
        for _ in range(slots):
            self._roll_windows()
            chosen = self._select(always_backlogged)
            if chosen is not None:
                chosen.serviced += 1
                if chosen.x_left > 0:
                    chosen.x_left -= 1
                if not always_backlogged and chosen.pending > 0:
                    chosen.pending -= 1
            self._slot += 1
        self._roll_windows()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def serviced(self, name: str) -> int:
        return self._state(name).serviced

    def violations(self, name: str) -> int:
        return self._state(name).violations

    def violation_rate(self, name: str) -> float:
        """Missed obligations per required packet so far."""
        state = self._state(name)
        windows = max(self._slot // state.window_slots, 1)
        required = windows * state.constraint.x
        return state.violations / required


def utilization(
    constraints: dict[str, tuple[WindowConstraint, int]]
) -> float:
    """Aggregate required service fraction, Σ x_i / window_i.

    A DWCS schedule is feasible (zero violations for always-backlogged
    streams) when this is <= 1 and windows align reasonably; > 1 forces
    violations somewhere.
    """
    return sum(
        c.x / window for (c, window) in constraints.values()
    )
