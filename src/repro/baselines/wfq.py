"""Non-overlay weighted fair queuing (Figure 9a).

The paper's first comparison point: all streams share a *single* overlay
path under classic WFQ.  Streams receive bandwidth in proportion to their
weights (their target rates), so when the one path's available bandwidth
drops below the aggregate demand, every stream — critical or not — loses
its proportional share.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.core.scheduler import PathShareRequest, SchedulerBase
from repro.core.spec import StreamSpec


class WFQScheduler(SchedulerBase):
    """Weighted fair queuing on one path.

    Parameters
    ----------
    path:
        The path to use; defaults to the first configured path (the
        evaluation uses path A, the higher-bandwidth one — the choice a
        static deployment would make).
    """

    name = "WFQ"

    def __init__(self, path: Optional[str] = None):
        self._preferred_path = path
        self._path: Optional[str] = None

    def setup(
        self,
        streams: Sequence[StreamSpec],
        path_names: Sequence[str],
        dt: float,
        tw: float,
    ) -> None:
        super().setup(streams, path_names, dt, tw)
        if self._preferred_path is not None:
            if self._preferred_path not in path_names:
                raise ConfigurationError(
                    f"path {self._preferred_path!r} not in {list(path_names)}"
                )
            self._path = self._preferred_path
        else:
            self._path = path_names[0]

    @property
    def path(self) -> str:
        """The single path all traffic uses."""
        if self._path is None:
            raise ConfigurationError("setup() has not been called")
        return self._path

    def allocate(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        requests = [
            PathShareRequest(
                stream=spec.name,
                demand_mbps=backlog_mbps.get(spec.name),
                weight=spec.weight,
                level=0,
            )
            for spec in self.streams
        ]
        return {self.path: requests}
