"""Multi-Server Fair Queuing (Blanquer & Özden, SIGCOMM 2001) — Figure 9b.

MSFQ generalizes fair queuing to multiple aggregated links ("servers").
Packets must be *assigned* to a server when dequeued, using the server's
predicted service rate; MSFQ therefore splits every stream across all
paths in proportion to the paths' predicted average bandwidth.

The failure mode the paper demonstrates: average bandwidth is mispredicted
by ~20 % (Figure 4), and a packet assigned to a path whose bandwidth dips
waits in that path's queue even if another path has spare capacity.  MSFQ
holds the *proportions* between streams quite well but cannot pin a
specific stream's absolute throughput, so critical streams fluctuate.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.scheduler import PathShareRequest, SchedulerBase
from repro.core.spec import StreamSpec
from repro.monitoring.predictors import EWMAPredictor


class MSFQScheduler(SchedulerBase):
    """Fair queuing over aggregated paths with mean-rate prediction.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor of the per-path average-bandwidth predictor.
    """

    name = "MSFQ"

    def __init__(self, alpha: float = 0.25):
        self.alpha = alpha
        self._predictors: dict[str, EWMAPredictor] = {}

    def setup(
        self,
        streams: Sequence[StreamSpec],
        path_names: Sequence[str],
        dt: float,
        tw: float,
    ) -> None:
        super().setup(streams, path_names, dt, tw)
        self._predictors = {
            p: EWMAPredictor(alpha=self.alpha) for p in path_names
        }

    def observe(
        self,
        interval: int,
        available_mbps: Mapping[str, float],
        rtt_ms: Optional[Mapping[str, float]] = None,
        loss_rate: Optional[Mapping[str, float]] = None,
    ) -> None:
        for path, mbps in available_mbps.items():
            predictor = self._predictors.get(path)
            if predictor is not None:
                predictor.update(mbps)

    def seed_history(self, samples: Mapping[str, Sequence[float]]) -> None:
        """Pre-load the mean predictors with probe-phase samples."""
        for path, series in samples.items():
            for s in series:
                self._predictors[path].update(s)

    def _path_fractions(self) -> dict[str, float]:
        """Predicted share of total service rate per path."""
        predicted = {}
        for path, predictor in self._predictors.items():
            predicted[path] = predictor.predict() if predictor.ready else 1.0
        total = sum(predicted.values())
        if total <= 0:
            even = 1.0 / len(predicted)
            return {p: even for p in predicted}
        return {p: v / total for p, v in predicted.items()}

    def allocate(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        fractions = self._path_fractions()
        requests: dict[str, list[PathShareRequest]] = {
            p: [] for p in self.path_names
        }
        for spec in self.streams:
            backlog = backlog_mbps.get(spec.name)
            for path in self.path_names:
                frac = fractions[path]
                if frac <= 0:
                    continue
                demand = None if backlog is None else backlog * frac
                requests[path].append(
                    PathShareRequest(
                        stream=spec.name,
                        demand_mbps=demand,
                        weight=spec.weight * frac,
                        level=0,
                    )
                )
        return requests
