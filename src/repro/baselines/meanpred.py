"""Mean-prediction scheduler: the PGOS ablation.

Identical in structure to PGOS — pick paths for guaranteed streams first,
let elastic traffic fill the rest at lower priority — but path selection
treats the EWMA *mean* prediction as the path's deterministic capacity,
exactly the assumption the paper argues is broken ("they require exact
values of end-to-end bandwidth, which are hard to attain").

Comparing this against PGOS isolates the contribution of the *statistical*
prediction from the contribution of the priority/overlay machinery; the
ablation bench (``benchmarks/bench_ablations.py``) reports both.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.scheduler import PathShareRequest, SchedulerBase
from repro.core.spec import StreamSpec
from repro.monitoring.predictors import EWMAPredictor


class MeanPredictionScheduler(SchedulerBase):
    """PGOS-shaped scheduler using mean instead of percentile prediction."""

    name = "MeanPred"

    def __init__(self, alpha: float = 0.25, headroom: float = 1.0):
        """``headroom`` < 1 derates the prediction (a common ad-hoc fix)."""
        self.alpha = alpha
        self.headroom = headroom
        self._predictors: dict[str, EWMAPredictor] = {}

    def setup(
        self,
        streams: Sequence[StreamSpec],
        path_names: Sequence[str],
        dt: float,
        tw: float,
    ) -> None:
        super().setup(streams, path_names, dt, tw)
        self._predictors = {
            p: EWMAPredictor(alpha=self.alpha) for p in path_names
        }

    def observe(
        self,
        interval: int,
        available_mbps: Mapping[str, float],
        rtt_ms: Optional[Mapping[str, float]] = None,
        loss_rate: Optional[Mapping[str, float]] = None,
    ) -> None:
        for path, mbps in available_mbps.items():
            predictor = self._predictors.get(path)
            if predictor is not None:
                predictor.update(mbps)

    def seed_history(self, samples: Mapping[str, Sequence[float]]) -> None:
        """Pre-load the mean predictors with probe-phase samples."""
        for path, series in samples.items():
            for s in series:
                self._predictors[path].update(s)

    def _predicted(self) -> dict[str, float]:
        out = {}
        for path, predictor in self._predictors.items():
            value = predictor.predict() if predictor.ready else 0.0
            out[path] = max(value, 0.0) * self.headroom
        return out

    def allocate(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        predicted = self._predicted()
        remaining = dict(predicted)
        requests: dict[str, list[PathShareRequest]] = {
            p: [] for p in self.path_names
        }
        guaranteed = sorted(
            (s for s in self.streams if s.guaranteed),
            key=lambda s: (-(s.probability or 0.0), -(s.required_mbps or 0.0)),
        )
        for spec in guaranteed:
            backlog = backlog_mbps.get(spec.name)
            need = spec.required_mbps
            if backlog is not None:
                need = min(backlog, need) if not spec.elastic else need
            # Single path if the predicted mean says it fits.
            fitting = [p for p in self.path_names if remaining[p] >= need]
            if fitting:
                best = max(fitting, key=lambda p: remaining[p])
                shares = {best: need}
            else:
                shares = {}
                todo = need
                for p in sorted(
                    self.path_names, key=lambda p: remaining[p], reverse=True
                ):
                    take = min(remaining[p], todo)
                    if take > 1e-12:
                        shares[p] = take
                        todo -= take
                if todo > 1e-12 and shares:
                    # Prediction says infeasible: overcommit the largest
                    # share proportionally (the stream still wants its rate).
                    top = max(shares, key=shares.get)
                    shares[top] += todo
                elif todo > 1e-12:
                    shares = {self.path_names[0]: need}
            for p, r in shares.items():
                remaining[p] = max(remaining[p] - r, 0.0)
                requests[p].append(
                    PathShareRequest(
                        stream=spec.name, demand_mbps=r, weight=r, level=0
                    )
                )
        for spec in self.streams:
            if not spec.elastic:
                continue
            backlog = backlog_mbps.get(spec.name)
            for p in self.path_names:
                weight = max(remaining[p], 1e-6)
                requests[p].append(
                    PathShareRequest(
                        stream=spec.name,
                        demand_mbps=backlog,
                        weight=weight,
                        level=1,
                    )
                )
        return requests
