"""Baseline schedulers the paper compares PGOS against.

* :mod:`repro.baselines.wfq` — non-overlay (single path) weighted fair
  queuing, Figure 9a/10a.
* :mod:`repro.baselines.msfq` — Multi-Server Fair Queuing over multiple
  paths (Blanquer & Özden), driven by average-bandwidth prediction,
  Figure 9b/10b.
* :mod:`repro.baselines.optsched` — the near-optimal offline scheduler
  with a-priori knowledge of available bandwidth, Figure 9d/10d.
* :mod:`repro.baselines.meanpred` — a PGOS-shaped scheduler that uses mean
  prediction instead of percentile prediction (ablation).
* :mod:`repro.baselines.dwcs` — single-link Dynamic Window-Constrained
  Scheduling (West & Poellabauer), the algorithm PGOS descends from.
"""

from repro.baselines.wfq import WFQScheduler
from repro.baselines.msfq import MSFQScheduler
from repro.baselines.optsched import OptSchedScheduler
from repro.baselines.meanpred import MeanPredictionScheduler
from repro.baselines.dwcs import DWCSScheduler

__all__ = [
    "WFQScheduler",
    "MSFQScheduler",
    "OptSchedScheduler",
    "MeanPredictionScheduler",
    "DWCSScheduler",
]
