"""OptSched: the near-optimal offline scheduler (Figure 9d).

"We also compare these results with a near-optimal off-line algorithm,
termed OptSched, which assumes that we know available bandwidth a priori.
Although this off-line algorithm cannot be used in practice, it can be
used to gauge the absolute performance of PGOS."

OptSched is handed the realized availability series before the run.  Each
interval it places the guaranteed streams first — on a single path when
one fits (avoiding split/reordering overheads), exact split otherwise —
then lets elastic streams fill every remaining bit of capacity.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.scheduler import PathShareRequest, SchedulerBase
from repro.core.spec import StreamSpec


class OptSchedScheduler(SchedulerBase):
    """Oracle scheduler: exact per-interval available bandwidth known."""

    name = "OptSched"

    def __init__(self) -> None:
        self._oracle: dict[str, np.ndarray] = {}
        # Sticky placement: keep a guaranteed stream on its previous path
        # while that path still fits it (avoids gratuitous reordering).
        self._last_path: dict[str, str] = {}

    def set_oracle(self, available_mbps: Mapping[str, np.ndarray]) -> None:
        """Provide the realized per-path availability series (Mbps)."""
        self._oracle = {
            p: np.asarray(series, dtype=float)
            for p, series in available_mbps.items()
        }

    def setup(
        self,
        streams: Sequence[StreamSpec],
        path_names: Sequence[str],
        dt: float,
        tw: float,
    ) -> None:
        super().setup(streams, path_names, dt, tw)
        missing = [p for p in path_names if p not in self._oracle]
        if missing:
            raise ConfigurationError(
                f"OptSched needs oracle series for paths {missing}; call "
                "set_oracle() first"
            )

    def _available(self, interval: int) -> dict[str, float]:
        out = {}
        for path in self.path_names:
            series = self._oracle[path]
            idx = min(interval, len(series) - 1)
            out[path] = float(series[idx])
        return out

    def allocate(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        avail = self._available(interval)
        remaining = dict(avail)
        requests: dict[str, list[PathShareRequest]] = {
            p: [] for p in self.path_names
        }
        # Guaranteed streams, most demanding probability first.
        guaranteed = sorted(
            (s for s in self.streams if s.guaranteed),
            key=lambda s: (-(s.probability or 0.0), -(s.required_mbps or 0.0)),
        )
        for spec in guaranteed:
            backlog = backlog_mbps.get(spec.name)
            # Drain the whole backlog (catch-up after any dip); an elastic
            # guaranteed stream reserves exactly its required rate here and
            # fills the rest via its elastic request below.
            need = spec.required_mbps
            if backlog is not None and not spec.elastic:
                need = backlog
            if need is None or need <= 0:
                continue
            # Single-path placement when it fits; sticky, then the path
            # with the most remaining capacity.
            fitting = [p for p in self.path_names if remaining[p] >= need]
            if fitting:
                previous = self._last_path.get(spec.name)
                if previous in fitting:
                    best = previous
                else:
                    best = max(fitting, key=lambda p: remaining[p])
                self._last_path[spec.name] = best
                shares = {best: need}
            else:
                shares = {}
                todo = need
                for p in sorted(
                    self.path_names, key=lambda p: remaining[p], reverse=True
                ):
                    take = min(remaining[p], todo)
                    if take > 1e-12:
                        shares[p] = take
                        todo -= take
                    if todo <= 1e-12:
                        break
            for p, r in shares.items():
                remaining[p] -= r
                requests[p].append(
                    PathShareRequest(
                        stream=spec.name,
                        demand_mbps=r,
                        weight=r,
                        level=0,
                    )
                )
        # Elastic streams absorb everything left, split by weight.
        elastic = [s for s in self.streams if s.elastic]
        for spec in elastic:
            backlog = backlog_mbps.get(spec.name)
            for p in self.path_names:
                requests[p].append(
                    PathShareRequest(
                        stream=spec.name,
                        demand_mbps=backlog,
                        weight=spec.weight,
                        level=1,
                    )
                )
        return requests
