"""A minimal, deterministic discrete-event simulation engine.

Events are ordered by ``(time, priority, sequence)``; the sequence number
makes simultaneous events fire in scheduling order, so runs are exactly
reproducible.  The engine underpins the packet-level transport and the
window-level experiment drivers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Tie-breaker among simultaneous events (lower fires first).
    seq:
        Monotone sequence number; final tie-breaker for determinism.
    fn:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so it is skipped when its time arrives."""
        self.cancelled = True


class Simulator:
    """Event queue with a virtual clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(
        self, delay: float, fn: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, priority)

    def schedule_at(
        self, time: float, fn: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``fn`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, priority, next(self._seq), fn)
        heapq.heappush(self._queue, event)
        return event

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or the clock would pass ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if no event fires there, so back-to-back ``run`` calls compose.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop all pending events (the clock keeps its value)."""
        self._queue.clear()

    def __len__(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
