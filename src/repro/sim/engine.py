"""A minimal, deterministic discrete-event simulation engine.

Events are ordered by ``(time, priority, sequence)``; the sequence number
makes simultaneous events fire in scheduling order, so runs are exactly
reproducible.  The engine underpins the packet-level transport and the
window-level experiment drivers.

Cancelled events do not linger: the engine counts them and compacts the
heap whenever they outnumber the live entries, so a workload that
schedules and cancels (timeout patterns, interrupted processes) keeps a
heap proportional to its *live* event count.  With an
:class:`repro.obs.Observability` context attached, the engine also
reports events scheduled/fired/cancelled, compactions, and heap depth.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.errors import CheckpointError, SimulationError
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category

#: Compact only above this queue size; tiny heaps are not worth a rebuild.
_COMPACT_MIN_QUEUE = 64


@dataclass(order=True)
class Event:
    """A scheduled callback in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Tie-breaker among simultaneous events (lower fires first).
    seq:
        Monotone sequence number; final tie-breaker for determinism.
    fn:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events are skipped when popped; the owning simulator
        reclaims their heap slots once they outnumber live entries.
    key:
        Optional checkpoint identity: the registered-callback name this
        event fires (see :meth:`Simulator.schedule`).  Only keyed events
        can be serialized into a checkpoint — an anonymous closure has
        no portable representation.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    owner: Optional["Simulator"] = field(
        default=None, compare=False, repr=False
    )
    key: Optional[str] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark this event so it is skipped when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._note_cancelled()


class Simulator:
    """Event queue with a virtual clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._queue: list[Event] = []
        self._seq_next = 0
        self._now = 0.0
        self._running = False
        self._cancelled = 0
        self._obs = obs if obs is not None else NULL_OBS

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def cancelled_events(self) -> int:
        """Cancelled entries currently occupying heap slots."""
        return self._cancelled

    def schedule(
        self,
        delay: float,
        fn: Callable[[], None],
        priority: int = 0,
        key: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        ``key`` tags the event with a registered-callback name so it can
        survive a checkpoint (see :meth:`state_dict`).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, priority, key=key)

    def schedule_at(
        self,
        time: float,
        fn: Callable[[], None],
        priority: int = 0,
        key: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = self._seq_next
        self._seq_next = seq + 1
        event = Event(time, priority, seq, fn, owner=self, key=key)
        heapq.heappush(self._queue, event)
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("engine.events_scheduled").inc()
            metrics.gauge("engine.heap_depth").set(len(self._queue))
        return event

    # ------------------------------------------------------------------
    # cancelled-entry bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when worthwhile."""
        self._cancelled += 1
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("engine.events_cancelled").inc()
            metrics.gauge("engine.cancelled_pending").set(self._cancelled)
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _note_popped_cancelled(self) -> None:
        if self._cancelled > 0:
            self._cancelled -= 1

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries."""
        before = len(self._queue)
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("engine.heap_compactions").inc()
            metrics.counter("engine.heap_entries_reclaimed").inc(
                before - len(self._queue)
            )
            metrics.gauge("engine.heap_depth").set(len(self._queue))
            metrics.gauge("engine.cancelled_pending").set(0)
            self._obs.trace.emit(
                self._now,
                Category.ENGINE,
                "heap_compacted",
                before=before,
                after=len(self._queue),
            )

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._note_popped_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._note_popped_cancelled()
                continue
            # Disown: cancelling an already-fired event must not skew the
            # count of cancelled entries still occupying heap slots.
            event.owner = None
            self._now = event.time
            prof = self._obs.prof
            if prof.enabled:
                with prof.span("engine.step"):
                    event.fn()
            else:
                event.fn()
            if self._obs.enabled:
                metrics = self._obs.metrics
                metrics.counter("engine.events_fired").inc()
                metrics.gauge("engine.heap_depth").set(len(self._queue))
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or the clock would pass ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if no event fires there, so back-to-back ``run`` calls compose.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        prof = self._obs.prof
        if prof.enabled:
            # The engine owns the virtual clock while it runs, so spans
            # opened inside the loop accrue simulated seconds.
            prof.bind_clock(lambda: self._now)
        try:
            if prof.enabled:
                with prof.span("engine.run"):
                    self._run_loop(until)
            else:
                self._run_loop(until)
        finally:
            self._running = False

    def _run_loop(self, until: Optional[float]) -> None:
        while True:
            next_time = self.peek()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
        if until is not None and until > self._now:
            self._now = until

    def clear(self) -> None:
        """Drop all pending events (the clock keeps its value)."""
        for event in self._queue:
            event.owner = None
        self._queue.clear()
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._queue) - self._cancelled

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the clock and event queue.

        Every *live* event must carry a ``key`` (the name of a callback
        the restoring side registers) — an anonymous closure cannot be
        serialized, so scheduling one and then checkpointing raises
        :class:`CheckpointError`.  Cancelled entries are captured too
        (keyless is fine — they never fire) so the restored heap has the
        same slot layout and compaction trigger state as the original.
        """
        events = []
        for event in self._queue:
            if event.key is None and not event.cancelled:
                raise CheckpointError(
                    f"event at t={event.time} (seq={event.seq}) has no "
                    f"key; only key-registered events survive a checkpoint"
                )
            events.append(
                {
                    "time": event.time,
                    "priority": event.priority,
                    "seq": event.seq,
                    "key": event.key,
                    "cancelled": event.cancelled,
                }
            )
        return {
            "now": self._now,
            "seq_next": self._seq_next,
            "cancelled": self._cancelled,
            # Heap (array) order, not sorted order: the restored list is
            # already a valid heap with the identical slot layout.
            "events": events,
        }

    def load_state_dict(
        self,
        state: Mapping[str, Any],
        callbacks: Optional[Mapping[str, Callable[[], None]]] = None,
    ) -> None:
        """Restore a :meth:`state_dict` snapshot.

        ``callbacks`` maps event keys back to callables; every live
        event's key must resolve.  Cancelled entries are restored with a
        no-op body (they are skipped when popped anyway).
        """
        callbacks = callbacks or {}
        queue: list[Event] = []
        for entry in state["events"]:
            key = entry["key"]
            if entry["cancelled"]:
                fn: Callable[[], None] = _noop
            else:
                fn = callbacks.get(key)
                if fn is None:
                    raise CheckpointError(
                        f"no callback registered for event key {key!r}"
                    )
            queue.append(
                Event(
                    float(entry["time"]),
                    int(entry["priority"]),
                    int(entry["seq"]),
                    fn,
                    cancelled=bool(entry["cancelled"]),
                    owner=self,
                    key=key,
                )
            )
        self._queue = queue
        self._now = float(state["now"])
        self._seq_next = int(state["seq_next"])
        self._cancelled = int(state["cancelled"])
        self._running = False


def _noop() -> None:
    """Body of restored cancelled events (never actually fired)."""
