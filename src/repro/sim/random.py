"""Reproducible, component-isolated random number streams.

Every experiment takes one integer seed.  Components ask for named child
streams; the name is hashed into the seed path so that (a) the same name
always yields the same stream for a given root seed and (b) adding a new
component does not perturb the draws of existing ones.  This is what makes
the figure reproductions byte-for-byte repeatable.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_key(name: str) -> int:
    """Stable 64-bit key for a stream name (Python's hash() is salted)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("path-A")
    >>> b = streams.get("path-B")
    >>> a is streams.get("path-A")
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (and memoize) the generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a new generator for ``name`` with its initial state.

        Unlike :meth:`get`, the stream is not memoized, so repeated calls
        return identical sequences — useful for replaying a trace.
        """
        seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
        return np.random.default_rng(seq)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
        child_seed = int(seq.generate_state(1, np.uint64)[0]) % (2**63)
        return RandomStreams(child_seed)
