"""Reproducible, component-isolated random number streams.

Every experiment takes one integer seed.  Components ask for named child
streams; the name is hashed into the seed path so that (a) the same name
always yields the same stream for a given root seed and (b) adding a new
component does not perturb the draws of existing ones.  This is what makes
the figure reproductions byte-for-byte repeatable.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_key(name: str) -> int:
    """Stable 64-bit key for a stream name (Python's hash() is salted)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("path-A")
    >>> b = streams.get("path-B")
    >>> a is streams.get("path-A")
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (and memoize) the generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a new generator for ``name`` with its initial state.

        Unlike :meth:`get`, the stream is not memoized, so repeated calls
        return identical sequences — useful for replaying a trace.
        """
        seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
        return np.random.default_rng(seq)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        seq = np.random.SeedSequence([self.seed, _name_to_key(name)])
        child_seed = int(seq.generate_state(1, np.uint64)[0]) % (2**63)
        return RandomStreams(child_seed)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every instantiated substream.

        Captures the root seed plus each named generator's bit-generator
        state, so a restored factory continues every stream exactly where
        it left off — streams not yet instantiated are unaffected (they
        are a pure function of ``(seed, name)``).
        """
        return {
            "seed": self.seed,
            "streams": {
                name: _jsonify_bit_state(gen.bit_generator.state)
                for name, gen in self._cache.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the substreams captured by :meth:`state_dict`."""
        from repro.errors import CheckpointError

        if int(state["seed"]) != self.seed:
            raise CheckpointError(
                f"RandomStreams seed mismatch: have {self.seed}, "
                f"checkpoint was taken at {state['seed']}"
            )
        self._cache.clear()
        for name, bit_state in state["streams"].items():
            gen = self.fresh(name)
            gen.bit_generator.state = _dejsonify_bit_state(bit_state)
            self._cache[name] = gen


def _jsonify_bit_state(state: dict) -> dict:
    """Make a numpy bit-generator state dict JSON-round-trippable.

    PCG64's state holds >64-bit integers, which JSON carries natively
    (Python ints are unbounded), but nested numpy scalars must become
    Python ints.
    """
    def convert(value):
        if isinstance(value, dict):
            return {k: convert(v) for k, v in value.items()}
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.ndarray):
            return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
        return value

    return convert(state)


def _dejsonify_bit_state(state: dict) -> dict:
    """Inverse of :func:`_jsonify_bit_state`."""
    def convert(value):
        if isinstance(value, dict):
            if "__ndarray__" in value:
                return np.asarray(
                    value["__ndarray__"], dtype=value["dtype"]
                )
            return {k: convert(v) for k, v in value.items()}
        return value

    return convert(state)
