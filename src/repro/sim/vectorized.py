"""Vectorized (struct-of-arrays) delivery backend for the service loop.

The scalar reference (`IQPathsService._deliver`) advances every open
stream per interval as individual Python objects: per-stream backlog
accrual, a PGOS allocation pass that rebuilds ``PathShareRequest``
objects, a per-path :func:`repro.core.scheduler.water_fill`, and
per-grant delivery accounting.  At 1000+ concurrent streams that is
~O(streams × paths) of Python-object work per 100 ms interval — the
bottleneck named by ROADMAP's "vectorized simulation core" item.

:class:`VectorizedDelivery` replaces exactly that delivery step with
columnar numpy operations over :class:`repro.core.batchstate.BatchState`
rows, keeping the event engine and the rest of the middleware
(admission, remap, health, degradation, checkpoint control plane) as the
scalar control plane.  The contract is **bit-identity**, not
approximation: every float operation replicates the scalar code's
expression shape and evaluation order, so reports, trace checksums, and
snapshot digests come out byte-equal.  The load-bearing equivalences:

* ``sum()`` in Python is a sequential left fold; ``ndarray.sum`` is
  pairwise and NOT bit-compatible.  Order-sensitive reductions use
  ``np.add.accumulate`` / ``np.subtract.accumulate``, which are
  sequential and reproduce the scalar fold exactly (``0 + w0 == w0``
  for the first term).
* Elementwise float64 ``+ - * / minimum maximum`` and comparisons are
  IEEE-identical to the scalar operators applied per element.
* Unit conversions inline the exact expressions from
  :mod:`repro.units` — ``((mbps * 1_000_000) / 8.0) * dt`` and
  ``((nbytes / dt) * 8.0) / 1_000_000`` — with the same associativity.
* The water-fill's ``remaining = max(remaining, 0.0)`` is replicated as
  ``if remaining < 0.0``: CPython's ``max(-0.0, 0.0)`` returns ``-0.0``
  (it keeps the first argument on ties), and the subtraction loop can
  produce exact zeros whose sign must not be "fixed".

Requests are not rebuilt per interval.  The PGOS request structure is a
pure function of the serving stream set, the resource mapping, and the
usable paths — all of which are invalidated through
``scheduler.mapping`` (membership changes and quarantine flips void it;
every remap installs a fresh object).  The engine therefore compiles the
request lists once per mapping into per-path slot arrays (row, rule
kind, rule parameter, weight, level) and re-derives only the per-step
demands from the backlog column.

Backend selection follows the ``REPRO_CDF_BACKEND`` idiom:
``REPRO_SIM_BACKEND=vectorized|scalar`` (default ``vectorized``),
overridable per call via the ``sim_backend`` parameter threaded through
the service, workload, transport, checkpoint, and cluster layers.
Schedulers other than PGOS fall back to scalar silently — the compiled
templates encode PGOS's allocation rules.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.batchstate import BatchState
from repro.core.pgos import (
    LEVEL_UNSCHEDULED,
    PGOSScheduler,
)
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.middleware.service import IQPathsService, StreamHandle

__all__ = [
    "SIM_BACKENDS",
    "default_sim_backend",
    "resolve_sim_backend",
    "VectorizedDelivery",
]

#: Recognized simulation backends: the numpy struct-of-arrays hot loop
#: and the per-object Python reference it is proven against.
SIM_BACKENDS = ("vectorized", "scalar")

_ENV_VAR = "REPRO_SIM_BACKEND"

# Rule kinds a compiled request slot can carry (template-internal).
_KIND_RULE1 = 0  # scheduled on this path: demand = min(backlog, mapped_here)
_KIND_RULE2 = 1  # scheduled elsewhere: demand = max(backlog - mapped_total, 0)
_KIND_RULE3 = 2  # unscheduled/elastic: demand = backlog
_KIND_FALLBACK = 3  # no history yet: demand = backlog / n_usable


def default_sim_backend() -> str:
    """Process-wide simulation backend (``REPRO_SIM_BACKEND``)."""
    value = os.environ.get(_ENV_VAR, "vectorized")
    if value not in SIM_BACKENDS:
        raise ConfigurationError(
            f"{_ENV_VAR} must be one of {SIM_BACKENDS}, got {value!r}"
        )
    return value


def resolve_sim_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend choice, or read the process default."""
    if backend is None:
        return default_sim_backend()
    if backend not in SIM_BACKENDS:
        raise ConfigurationError(
            f"sim backend must be one of {SIM_BACKENDS}, got {backend!r}"
        )
    return backend


class _PathTemplate:
    """One path's compiled request slots (static until the mapping changes)."""

    __slots__ = (
        "rows",
        "weight",
        "kind",
        "param",
        "has_demand",
        "level_groups",
        "idx_rule1",
        "idx_rule2",
        "idx_rule3",
        "idx_fallback",
        "idx_nodemand",
        "idx_hd",
        "rows_hd",
    )

    def __init__(self, slots: list[tuple[int, float, int, int, float, bool]]):
        rows = np.array([s[0] for s in slots], dtype=np.int64)
        weight = np.array([s[1] for s in slots])
        level = np.array([s[2] for s in slots], dtype=np.int64)
        kind = np.array([s[3] for s in slots], dtype=np.int64)
        param = np.array([s[4] for s in slots])
        has_demand = np.array([s[5] for s in slots], dtype=bool)
        self.rows = rows
        self.weight = weight
        self.kind = kind
        self.param = param
        self.has_demand = has_demand
        # Strict-priority groups in ascending level, slot order preserved
        # (matches water_fill's sorted({r.level}) iteration; a group that
        # is fully inactive this step degenerates to a no-op, exactly as
        # an absent level would).
        self.level_groups = [
            np.flatnonzero(level == lv) for lv in sorted(set(level.tolist()))
        ]
        self.idx_rule1 = np.flatnonzero((kind == _KIND_RULE1) & has_demand)
        self.idx_rule2 = np.flatnonzero((kind == _KIND_RULE2) & has_demand)
        self.idx_rule3 = np.flatnonzero((kind == _KIND_RULE3) & has_demand)
        self.idx_fallback = np.flatnonzero(
            (kind == _KIND_FALLBACK) & has_demand
        )
        self.idx_nodemand = np.flatnonzero(~has_demand)
        self.idx_hd = np.flatnonzero(has_demand)
        self.rows_hd = rows[self.idx_hd]


class VectorizedDelivery:
    """Struct-of-arrays delivery engine bound to one service instance.

    The service forwards its stream lifecycle (open/close), the per-step
    delivery call, and checkpoint materialization here; everything else
    stays on the scalar control plane.
    """

    def __init__(self, service: "IQPathsService"):
        if not isinstance(service.scheduler, PGOSScheduler):
            raise ConfigurationError(
                "the vectorized backend requires a PGOSScheduler"
            )
        self.service = service
        self.batch = BatchState(
            n_columns=service.realization.n_intervals - service._start_k,
            dt=service.dt,
            buffer_seconds=service.buffer_seconds,
        )
        # Per-path compiled request slots, keyed by mapping identity:
        # every event that voids requests (membership change, quarantine
        # flip, CDF-shift remap) installs a fresh mapping object.
        self._templates: Optional[dict[str, _PathTemplate]] = None
        self._template_mapping: Optional[object] = None
        self._demand_rows: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # stream lifecycle (called from the service control plane)
    # ------------------------------------------------------------------
    def on_open(self, handle: "StreamHandle") -> None:
        svc = self.service
        self.batch.open(
            handle.spec, handle.stream_id, svc._k - svc._start_k
        )
        self._demand_rows = None

    def on_close(self, name: str) -> None:
        svc = self.service
        self.batch.close(name, svc._k - svc._start_k)
        self._demand_rows = None

    def _demand_row_indices(self) -> np.ndarray:
        """Rows of open streams that have a bounded (CBR) demand."""
        rows = self._demand_rows
        if rows is None:
            batch = self.batch
            all_rows = batch.rows_in_order()
            rows = all_rows[~np.isnan(batch.demand_mbps[all_rows])]
            self._demand_rows = rows
        return rows

    # ------------------------------------------------------------------
    # request-template compilation
    # ------------------------------------------------------------------
    def _compile(self, fallback: bool) -> dict[str, _PathTemplate]:
        """Compile PGOS's request lists into per-path slot arrays.

        Mirrors ``PGOSScheduler._allocate_inner`` (or
        ``_fallback_requests`` when ``fallback``) entry by entry: per
        serving spec, the rule-1/rule-2 entry for each usable path, then
        the rule-3 entries for elastic specs — so each path's slot order
        equals the scalar request-list order that drives water-fill's
        pending iteration and its sequential float folds.
        """
        svc = self.service
        sched = svc.scheduler
        batch = self.batch
        usable = sched.usable_paths
        per_path: dict[str, list] = {p: [] for p in usable}
        seen: dict[str, set] = {p: set() for p in usable}

        def add(path, row, weight, level, kind, param, has_demand, stream):
            if stream in seen[path]:
                # Same error (and message) water_fill raises when one
                # stream files two requests on one path.
                raise ConfigurationError(
                    f"duplicate request for stream {stream!r} on one path"
                )
            seen[path].add(stream)
            per_path[path].append(
                (row, weight, level, kind, param, has_demand)
            )

        if fallback:
            n = len(usable)
            for spec in sched.streams:
                row = batch.row(spec.name)
                has_demand = not np.isnan(batch.demand_mbps[row])
                for path in usable:
                    add(
                        path,
                        row,
                        spec.weight,
                        LEVEL_UNSCHEDULED if spec.elastic else 0,
                        _KIND_FALLBACK,
                        float(n),
                        has_demand,
                        spec.name,
                    )
            return {p: _PathTemplate(s) for p, s in per_path.items() if s}

        mapping = sched.mapping
        for spec in sched.streams:
            row = batch.row(spec.name)
            # Demand presence comes from the *original* handle spec (the
            # service keys backlog_mbps off h.spec), which is what the
            # batch columns were filled from at open time.
            has_demand = not np.isnan(batch.demand_mbps[row])
            rates = mapping.rates_mbps.get(spec.name, {})
            # Compile-time Python sum in dict insertion order — the same
            # sequential fold the scalar allocator runs per interval.
            mapped_total = sum(rates.values())
            guaranteed = spec.guaranteed or spec.max_violation_rate is not None
            for path in usable:
                mapped_here = rates.get(path, 0.0)
                if guaranteed and mapped_here > 0:
                    add(
                        path,
                        row,
                        mapped_here,
                        0,
                        _KIND_RULE1,
                        mapped_here,
                        has_demand,
                        spec.name,
                    )
                elif guaranteed and mapped_total > 0:
                    # Rule-2 slots with a bounded demand are *dynamic*:
                    # present only when the step's excess exceeds 1e-9.
                    # The slot is compiled unconditionally and gated per
                    # step by the active mask.
                    add(
                        path,
                        row,
                        max(mapped_total, 1e-6),
                        1,
                        _KIND_RULE2,
                        mapped_total,
                        has_demand,
                        spec.name,
                    )
            if spec.elastic:
                for path in usable:
                    weight = max(rates.get(path, 0.0), 0.0)
                    if weight <= 0:
                        weight = spec.weight / len(usable)
                    add(
                        path,
                        row,
                        weight,
                        LEVEL_UNSCHEDULED,
                        _KIND_RULE3,
                        0.0,
                        has_demand,
                        spec.name,
                    )
        return {p: _PathTemplate(s) for p, s in per_path.items() if s}

    def _current_templates(self) -> dict[str, _PathTemplate]:
        """The step's request templates, honoring PGOS's remap protocol.

        Replicates ``_allocate_inner``'s prelude exactly: no remap check
        at all before history exists (fallback recompiled per step — a
        cold path that only runs when warmup < min_history), otherwise
        one ``_needs_remap()`` per step (it owns the ``pgos.remap_check``
        span and the ``scheduler.remap_checks`` counter) and a
        ``remap()`` when it fires.
        """
        sched = self.service.scheduler
        if not sched.has_history:
            templates = self._compile(fallback=True)
            self._template_mapping = None
            self._templates = None
            return templates
        if sched._needs_remap():
            sched.remap()
        if (
            self._templates is None
            or sched.mapping is not self._template_mapping
        ):
            self._templates = self._compile(fallback=False)
            self._template_mapping = sched.mapping
        return self._templates

    # ------------------------------------------------------------------
    # the hot loop
    # ------------------------------------------------------------------
    def deliver(self, k: int, open_handles: list) -> None:
        """One interval: accrual, allocation, water-fill, delivery.

        Bit-identical to ``IQPathsService._deliver`` — see the module
        docstring for the equivalences this leans on.
        """
        svc = self.service
        batch = self.batch
        dt = batch.dt
        capacity = batch.capacity

        # --- backlog accrual (scalar: += arrival; min with limit) -----
        dr = self._demand_row_indices()
        bm_col = np.zeros(capacity)
        if dr.size:
            b = batch.backlog_bytes[dr] + batch.arrival_bytes[dr]
            np.minimum(b, batch.limit_bytes[dr], out=b)
            batch.backlog_bytes[dr] = b
            bm_col[dr] = ((b / dt) * 8.0) / 1_000_000

        # --- allocation prelude (owns the pgos.allocate span) ---------
        prof = svc.obs.prof
        if prof.enabled:
            with prof.span("pgos.allocate"):
                templates = self._current_templates()
        else:
            templates = self._current_templates()

        # --- per-path water-fill + delivery ---------------------------
        delivered_col = np.zeros(capacity)
        for p in svc.path_names:
            cap = svc._effective_avail(p, k)
            template = templates.get(p)
            if template is None:
                # Scalar still calls water_fill([], cap) here, whose only
                # observable act is the capacity validation.
                if cap < 0:
                    raise ConfigurationError(
                        f"capacity must be >= 0, got {cap}"
                    )
                continue
            granted = self._water_fill(template, bm_col, cap)
            self._apply_grants(template, granted, delivered_col, dt)

        # --- history column + telemetry counters ----------------------
        col = k - svc._start_k
        rows = batch.rows_in_order()
        if rows.size:
            vals = delivered_col[rows]
            batch.history[rows, col] = vals
            thr = batch.threshold_mbps[rows]
            batch.shortfall_windows[rows] += vals < thr

        if svc.obs.enabled:
            # The shortfall emitter iterates in open-handle order (which
            # diverges from row order after a close+reopen), so build the
            # delivered dict the way the scalar path does.  float() also
            # keeps np.float64 out of json-serialized trace events.
            delivered = {
                h.name: float(delivered_col[batch.row(h.name)])
                for h in open_handles
            }
            svc._emit_shortfalls(k, delivered)

    def _water_fill(
        self,
        template: _PathTemplate,
        bm_col: np.ndarray,
        capacity_mbps: float,
    ) -> np.ndarray:
        """Vectorized :func:`repro.core.scheduler.water_fill` over slots."""
        if capacity_mbps < 0:
            raise ConfigurationError(
                f"capacity must be >= 0, got {capacity_mbps}"
            )
        nslots = len(template.rows)
        # Per-step demands: inf encodes the scalar's None (unbounded).
        d = np.full(nslots, np.inf)
        active = np.ones(nslots, dtype=bool)
        idx = template.idx_rule1
        if idx.size:
            d[idx] = np.minimum(
                bm_col[template.rows[idx]], template.param[idx]
            )
        idx = template.idx_rule2
        if idx.size:
            excess = np.maximum(
                bm_col[template.rows[idx]] - template.param[idx], 0.0
            )
            d[idx] = excess
            # Scalar drops the rule-2 request entirely when the excess is
            # negligible (excess > 1e-9 gate).
            active[idx] = excess > 1e-9
        idx = template.idx_rule3
        if idx.size:
            d[idx] = bm_col[template.rows[idx]]
        idx = template.idx_fallback
        if idx.size:
            d[idx] = bm_col[template.rows[idx]] / template.param[idx]

        granted = np.zeros(nslots)
        weight = template.weight
        remaining = capacity_mbps
        for group in template.level_groups:
            if remaining <= 1e-12:
                break
            pend = group[active[group]]
            while pend.size and remaining > 1e-12:
                w = weight[pend]
                # Sequential left fold == Python sum() bit for bit.
                total_weight = float(np.add.accumulate(w)[-1])
                fair = remaining * w / total_weight
                dmd = d[pend]
                capped = dmd <= fair + 1e-12
                if not capped.any():
                    granted[pend] += fair
                    remaining = 0.0
                    break
                cidx = pend[capped]
                dc = d[cidx]
                granted[cidx] += dc
                # Scalar subtracts each capped demand one by one in
                # pending order; subtract.accumulate is that exact fold.
                remaining = float(
                    np.subtract.accumulate(
                        np.concatenate(((remaining,), dc))
                    )[-1]
                )
                pend = pend[~capped]
                # Replicates max(remaining, 0.0) — which returns -0.0 on
                # a -0.0 input in CPython, so only true negatives clamp.
                if remaining < 0.0:
                    remaining = 0.0
        return granted

    def _apply_grants(
        self,
        template: _PathTemplate,
        granted: np.ndarray,
        delivered_col: np.ndarray,
        dt: float,
    ) -> None:
        """Grants → bytes → backlog drain → delivered Mbps, per slot.

        Zero-grant slots ride along: ``x - 0.0`` and ``x + 0.0`` are
        bit-exact no-ops for the non-negative values involved, matching
        the scalar's explicit ``mbps <= 0`` skip.
        """
        batch = self.batch
        nbytes = ((granted * 1_000_000) / 8.0) * dt
        idx_hd = template.idx_hd
        if idx_hd.size:
            rows_hd = template.rows_hd
            backlog = batch.backlog_bytes[rows_hd]
            nb = np.minimum(nbytes[idx_hd], backlog)
            batch.backlog_bytes[rows_hd] = backlog - nb
            nbytes[idx_hd] = nb
        rows = template.rows
        batch.delivered_bytes[rows] += nbytes
        delivered_col[rows] += ((nbytes / dt) * 8.0) / 1_000_000

    # ------------------------------------------------------------------
    # checkpoint materialization
    # ------------------------------------------------------------------
    def rebuild_from_state(self, state: dict) -> None:
        """Repopulate the batch from a service ``state_dict`` snapshot.

        Row assignment follows the snapshot's ``backlog_bytes`` key order
        — the scalar backlog dict's insertion order — so a later
        ``state_dict()`` round-trips byte-identically regardless of which
        backend wrote the snapshot.  The telemetry counters
        (``delivered_bytes`` / ``shortfall_windows``) restart at zero:
        they are diagnostic, deliberately excluded from snapshots so
        payload bytes stay backend-independent.
        """
        svc = self.service
        self.batch.reset()
        self._templates = None
        self._template_mapping = None
        self._demand_rows = None
        delivered = state["delivered"]
        for name, backlog in state["backlog_bytes"].items():
            handle = svc.handles[name]
            self.batch.open(
                handle.spec,
                handle.stream_id,
                svc._opened_interval[name] - svc._start_k,
            )
            self.batch.set_backlog(name, float(backlog))
            series = np.asarray(
                [float(v) for v in delivered[name]]
            )
            if series.size:
                self.batch.load_history(name, series)
        for handle in svc.handles.values():
            if not handle.open:
                self.batch.freeze_empty(handle.name)
