"""Generator-based processes on top of the event engine.

A process is a generator that yields :class:`Timeout` objects; the engine
resumes it when the timeout elapses.  This is the style in which the
transport layer's send services and the applications' frame producers are
written — sequential code instead of callback chains.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Timeout:
    """Yielded by a process to sleep for ``delay`` seconds of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay})"


ProcessGenerator = Generator[Timeout, None, None]


class Process:
    """Drives a generator through the simulator's event queue.

    The generator runs until it returns or :meth:`interrupt` is called.
    ``done`` reports completion; an exception raised inside the generator
    propagates out of :meth:`Simulator.run` at the event that resumed it.
    """

    def __init__(self, sim: Simulator, gen: ProcessGenerator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._done = False
        self._interrupted = False
        self._pending = None
        # Kick off at the current time so construction order is preserved.
        self._pending = sim.schedule(0.0, self._resume)

    @property
    def done(self) -> bool:
        """True once the generator has finished or been interrupted."""
        return self._done

    def interrupt(self) -> None:
        """Stop the process; its pending wake-up (if any) is cancelled."""
        self._interrupted = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if not self._done:
            self._gen.close()
            self._done = True

    def _resume(self) -> None:
        if self._done or self._interrupted:
            return
        self._pending = None
        try:
            timeout = next(self._gen)
        except StopIteration:
            self._done = True
            return
        if not isinstance(timeout, Timeout):
            raise SimulationError(
                f"process {self.name!r} yielded {timeout!r}; expected Timeout"
            )
        self._pending = self.sim.schedule(timeout.delay, self._resume)


def start(sim: Simulator, gen: ProcessGenerator, name: Optional[str] = None) -> Process:
    """Convenience wrapper: attach ``gen`` to ``sim`` as a named process."""
    return Process(sim, gen, name or "")
