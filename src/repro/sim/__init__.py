"""Deterministic discrete-event simulation substrate.

The IQ-Paths evaluation runs on an emulated testbed; this package provides
the virtual-time machinery that replaces it: an event-driven engine
(:mod:`repro.sim.engine`), generator-based processes
(:mod:`repro.sim.process`), reproducible per-component random streams
(:mod:`repro.sim.random`), and the vectorized struct-of-arrays delivery
backend (:mod:`repro.sim.vectorized`) that advances all active streams
per interval as columnar numpy ops — selected via
``REPRO_SIM_BACKEND=vectorized|scalar`` and proven bit-identical to the
scalar reference by ``tests/property/test_sim_vectorized.py``.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import Process, Timeout
from repro.sim.random import RandomStreams
from repro.sim.vectorized import (
    SIM_BACKENDS,
    VectorizedDelivery,
    default_sim_backend,
    resolve_sim_backend,
)

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Timeout",
    "RandomStreams",
    "SIM_BACKENDS",
    "VectorizedDelivery",
    "default_sim_backend",
    "resolve_sim_backend",
]
