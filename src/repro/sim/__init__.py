"""Deterministic discrete-event simulation substrate.

The IQ-Paths evaluation runs on an emulated testbed; this package provides
the virtual-time machinery that replaces it: an event-driven engine
(:mod:`repro.sim.engine`), generator-based processes
(:mod:`repro.sim.process`), and reproducible per-component random streams
(:mod:`repro.sim.random`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import Process, Timeout
from repro.sim.random import RandomStreams

__all__ = ["Event", "Simulator", "Process", "Timeout", "RandomStreams"]
