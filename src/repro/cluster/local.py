"""The in-process baseline the cluster must match byte for byte.

:func:`run_partitioned` executes every partition slice sequentially in
the calling process and merges the results exactly the way the master
does.  It defines the *reference bytes*: a cluster run at any shard
count must produce a merged payload identical to this function's for
the same ``(scenario, seed)`` — the property the determinism suite,
the CI smoke job, and the benchmark all assert.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.context import Observability
from repro.workload.catalog import SessionCatalog
from repro.workload.scenarios import (
    make_partition_run,
    make_scenario,
    partition_ids,
)

from repro.cluster.report import ClusterReport, cluster_report_from_payloads


def run_partitioned(
    scenario_name: str,
    seed: int = 0,
    rate_scale: float = 1.0,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    obs: Optional[Observability] = None,
    sim_backend: Optional[str] = None,
    topology: Optional[str] = None,
) -> ClusterReport:
    """Run all partition slices in-process and merge them (the baseline)."""
    scenario = make_scenario(
        scenario_name,
        rate_scale=rate_scale,
        duration=duration,
        topology=topology,
    )
    partitions = partition_ids(catalog)
    payloads = {}
    for partition in partitions:
        driver = make_partition_run(
            scenario,
            partition,
            seed=seed,
            max_sessions=max_sessions,
            catalog=catalog,
            obs=obs,
            sim_backend=sim_backend,
        )
        payloads[partition] = driver.run(scenario.duration).to_dict()
    return cluster_report_from_payloads(
        payloads,
        shards=0,
        shard_map={p: 0 for p in partitions},
        telemetry={"mode": "in-process"},
    )
