"""The merged result of a sharded run, and what its checksum covers.

A :class:`ClusterReport` wraps the canonical merged payload produced by
:func:`repro.workload.driver.merge_report_payloads` plus *telemetry*
about how the run executed (shard count, placement, epochs, respawns).
The determinism contract draws the line between the two: the checksum
covers **only** the merged payload, which is a pure function of
``(scenario, seed)`` — shard count, placement, respawns, and wall time
are execution details and must never leak into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.workload.driver import merged_checksum


@dataclass(frozen=True)
class ClusterReport:
    """Merged workload report + execution telemetry for one cluster run."""

    merged: dict[str, Any]
    shards: int
    shard_map: dict[str, int] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def offered(self) -> int:
        return int(self.merged["offered"])

    @property
    def violation_rate(self) -> float:
        return float(self.merged["violation_rate"])

    @property
    def scenario(self) -> str:
        return str(self.merged["scenario"])

    @property
    def seed(self) -> int:
        return int(self.merged["seed"])

    @property
    def partitions(self) -> tuple[str, ...]:
        return tuple(self.merged["partitions"])

    def checksum(self) -> str:
        """Digest of the merged payload only — placement-independent."""
        return merged_checksum(self.merged)

    def to_dict(self) -> dict[str, Any]:
        """Full JSON form; ``merged`` is the checksummed part."""
        return {
            "merged": self.merged,
            "checksum": self.checksum(),
            "shards": self.shards,
            "shard_map": dict(self.shard_map),
            "telemetry": dict(self.telemetry),
        }

    def render(self) -> str:
        m = self.merged
        lines = [
            f"cluster run of {m['scenario']!r} "
            f"(seed={m['seed']}, shards={self.shards}):",
            f"  partitions {', '.join(self.partitions)}",
            f"  offered={m['offered']} admitted={m['admitted']} "
            f"degraded={m['degraded']} rejected={m['rejected']}",
            f"  violation_rate={m['violation_rate']:.4f} "
            f"delivered={m['delivered_megabits']:.1f} Mb",
        ]
        if self.shard_map:
            placement = ", ".join(
                f"{p}->s{s}" for p, s in sorted(self.shard_map.items())
            )
            lines.append(f"  placement {placement}")
        if self.telemetry:
            extras = ", ".join(
                f"{k}={v}" for k, v in sorted(self.telemetry.items())
            )
            lines.append(f"  telemetry {extras}")
        return "\n".join(lines)


def cluster_report_from_payloads(
    payloads: Mapping[str, Mapping[str, Any]],
    shards: int,
    shard_map: Mapping[str, int],
    telemetry: Mapping[str, Any],
) -> ClusterReport:
    """Merge per-partition payloads into one :class:`ClusterReport`."""
    from repro.workload.driver import merge_report_payloads

    return ClusterReport(
        merged=merge_report_payloads(payloads),
        shards=shards,
        shard_map=dict(shard_map),
        telemetry=dict(telemetry),
    )
