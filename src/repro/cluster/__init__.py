"""Sharded master/worker control plane with byte-identical scale-out.

``repro.cluster`` runs one workload scenario across worker *processes*:
tenants are hashed onto shards (:mod:`~repro.cluster.partition`), each
worker simulates its partitions' slices with partition-keyed seeds
(:mod:`~repro.cluster.worker`), and the master coordinates them over a
length-prefixed framed protocol (:mod:`~repro.cluster.protocol`) with
barrier-synchronized virtual-time epochs, checkpoint-backed respawn of
dead shards, and a canonical merge (:mod:`~repro.cluster.report`).

The contract that makes the parallelism safe: the merged report is a
pure function of ``(scenario, seed)`` — byte-identical across shard
counts, across re-runs, and to the in-process baseline
(:func:`run_partitioned`).  ``docs/cluster.md`` specifies the
protocol, the seed derivation, and the merge-determinism rules.
"""

from repro.cluster.envelope import estimate_cluster_envelope
from repro.cluster.epochs import epoch_boundaries, epochs_completed
from repro.cluster.local import run_partitioned
from repro.cluster.master import ClusterMaster, run_cluster_scenario
from repro.cluster.partition import partition_map, shard_of
from repro.cluster.protocol import PROTOCOL_VERSION
from repro.cluster.report import ClusterReport

__all__ = [
    "ClusterMaster",
    "ClusterReport",
    "PROTOCOL_VERSION",
    "epoch_boundaries",
    "epochs_completed",
    "estimate_cluster_envelope",
    "partition_map",
    "run_cluster_scenario",
    "run_partitioned",
    "shard_of",
]
