"""The cluster master: spawns shards, drives the barrier, merges.

:class:`ClusterMaster` owns a fleet of worker processes (one per shard
that owns at least one tenant partition) and runs jobs against them: it
hands each worker its partition list, grants virtual-time epochs in
lockstep, collects per-partition report payloads, and performs the
canonical merge.  Supervision mirrors the experiment executor's
semantics: ``epoch_done`` doubles as a heartbeat, a silent or dead
shard is killed and respawned from its partition checkpoints (bounded
respawn budget), and a code-fingerprint mismatch in the handshake
aborts the run before any mixed-version bytes can be computed.

Workers survive across jobs — the capacity-envelope fan-out reuses one
fleet for every probe instead of paying spawn cost per probe.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Optional

import repro
from repro.cluster import protocol
from repro.cluster.epochs import epoch_boundaries
from repro.cluster.partition import partition_map
from repro.cluster.report import ClusterReport, cluster_report_from_payloads
from repro.errors import ClusterError, ConfigurationError
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.runner.fingerprint import code_fingerprint
from repro.workload.scenarios import (
    STEP_DT,
    make_scenario,
    partition_ids,
)

_QUEUE_POLL_S = 0.2
_STDERR_TAIL_BYTES = 4096


@dataclass
class _Shard:
    """One shard's process, protocol state, and barrier counters."""

    shard: int
    partitions: list[str]
    proc: Optional[subprocess.Popen] = None
    incarnation: int = 0
    stderr_path: Optional[Path] = None
    completed: int = -1
    granted: int = 0
    #: Grants are held until the worker's ``resumed`` frame arrives —
    #: a resuming worker expects its first ``epoch_go`` at its own
    #: checkpointed epoch, not at 0.
    ready: bool = False
    finalized: bool = False
    payloads: Optional[dict[str, Any]] = None
    last_heard: float = field(default_factory=time.monotonic)
    respawns: int = 0

    @property
    def stdin(self) -> BinaryIO:
        assert self.proc is not None and self.proc.stdin is not None
        return self.proc.stdin

    def stderr_tail(self) -> str:
        if self.stderr_path is None or not self.stderr_path.exists():
            return ""
        data = self.stderr_path.read_bytes()[-_STDERR_TAIL_BYTES:]
        return data.decode("utf-8", errors="replace")


class ClusterMaster:
    """Master for sharded scenario runs; reusable across jobs.

    Parameters
    ----------
    scenario:
        Named scenario every job of this master runs.
    seed:
        Top-level seed; results are pure functions of it (never of
        ``shards``).
    shards:
        Hash-space size for tenant placement.  Only shards owning at
        least one partition get a worker process.
    epoch_s:
        Virtual seconds per barrier epoch (also the checkpoint cadence).
    checkpoint_root:
        Directory for per-partition snapshot slots.  Required for crash
        supervision — without it a dead shard is unrecoverable and the
        run fails.  Defaults to a private temp directory (so respawn
        always works); pass an explicit path to make runs resumable
        across master restarts.
    hang_timeout:
        Wall seconds of shard silence before it is presumed hung,
        killed, and respawned.
    max_respawns:
        Respawn budget *per shard per job*.
    """

    def __init__(
        self,
        scenario: str = "baseline",
        seed: int = 0,
        shards: int = 2,
        epoch_s: float = 2.0,
        max_sessions: Optional[int] = None,
        checkpoint_root: Optional[os.PathLike] = None,
        hang_timeout: float = 60.0,
        max_respawns: int = 2,
        obs: Optional[Observability] = None,
        sim_backend: Optional[str] = None,
        topology: Optional[str] = None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.scenario = scenario
        self.seed = seed
        self.shards = shards
        self.epoch_s = epoch_s
        self.max_sessions = max_sessions
        # Generated-topology reference every job of this master runs on
        # (None = Figure-8); forwarded verbatim in each assignment so
        # all shards realize the same topology.
        self.topology = topology
        # Pinned into every assignment so all shards simulate with the
        # same delivery backend (None = each worker's process default;
        # harmless either way, the backends are bit-identical).
        self.sim_backend = sim_backend
        self.hang_timeout = hang_timeout
        self.max_respawns = max_respawns
        self.obs = obs if obs is not None else NULL_OBS
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if checkpoint_root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            checkpoint_root = self._tmp.name
        self.checkpoint_root = Path(checkpoint_root)
        self.checkpoint_root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = code_fingerprint()
        self.partitions = list(partition_ids())
        self.shard_map = {
            partition: shard
            for shard, owned in partition_map(
                self.partitions, shards
            ).items()
            for partition in owned
        }
        self._fleet: dict[int, _Shard] = {
            shard: _Shard(shard=shard, partitions=owned)
            for shard, owned in partition_map(
                self.partitions, shards
            ).items()
        }
        self._queue: "queue.Queue[tuple[int, int, Optional[dict]]]" = (
            queue.Queue()
        )
        self._job = 0
        self._closing = False

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, state: _Shard) -> None:
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        state.incarnation += 1
        state.stderr_path = (
            self.checkpoint_root / f"shard-{state.shard}.stderr.log"
        )
        stderr_file = open(state.stderr_path, "ab")
        try:
            state.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.worker",
                    "--shard",
                    str(state.shard),
                ],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=stderr_file,
                env=env,
            )
        finally:
            stderr_file.close()
        hello = protocol.read_frame(state.proc.stdout)
        if hello is None:
            raise ClusterError(
                f"shard {state.shard} died during handshake; "
                f"stderr: {state.stderr_tail()}"
            )
        hello = protocol.expect(hello, "hello")
        if hello["protocol"] != protocol.PROTOCOL_VERSION:
            raise ClusterError(
                f"shard {state.shard} speaks protocol "
                f"{hello['protocol']}, master speaks "
                f"{protocol.PROTOCOL_VERSION}"
            )
        if hello["fingerprint"] != self.fingerprint:
            self._kill(state)
            raise ClusterError(
                f"shard {state.shard} runs different code "
                f"(fingerprint {hello['fingerprint'][:12]}.. vs "
                f"{self.fingerprint[:12]}..); refusing to mix versions"
            )
        protocol.write_frame(state.stdin, protocol.welcome())
        state.last_heard = time.monotonic()
        threading.Thread(
            target=self._read_loop,
            args=(state.shard, state.incarnation, state.proc.stdout),
            daemon=True,
        ).start()

    def _read_loop(
        self, shard: int, incarnation: int, stream: BinaryIO
    ) -> None:
        try:
            while True:
                message = protocol.read_frame(stream)
                self._queue.put((shard, incarnation, message))
                if message is None:
                    return
        except Exception as exc:  # noqa: BLE001 — surfaced on the queue
            self._queue.put(
                (shard, incarnation, protocol.error(str(exc)))
            )
            self._queue.put((shard, incarnation, None))

    def _kill(self, state: _Shard) -> None:
        proc = state.proc
        if proc is None:
            return
        for stop in (proc.terminate, proc.kill):
            if proc.poll() is not None:
                break
            stop()
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                continue
        if proc.stdin is not None:
            try:
                proc.stdin.close()
            except OSError:
                pass
        state.proc = None

    def _fail(self, message: str) -> None:
        """Abort the run: kill the whole fleet, raise with context."""
        for state in self._fleet.values():
            self._kill(state)
        raise ClusterError(message)

    # ------------------------------------------------------------------
    # one job
    # ------------------------------------------------------------------
    def run(
        self,
        rate_scale: float = 1.0,
        duration: Optional[float] = None,
        resume: bool = False,
        kill_at_epoch: Optional[dict[int, int]] = None,
    ) -> ClusterReport:
        """Run one sharded job and return the merged report.

        ``kill_at_epoch`` maps shard id to the epoch after which that
        shard SIGKILLs itself (supervision tests); the respawned
        incarnation never re-arms it.
        """
        if self._closing:
            raise ClusterError("master is closed")
        job = self._job
        self._job += 1
        scenario = make_scenario(
            self.scenario,
            rate_scale=rate_scale,
            duration=duration,
            topology=self.topology,
        )
        boundaries = epoch_boundaries(scenario.duration, self.epoch_s)
        n_epochs = len(boundaries)
        t0 = time.perf_counter()
        respawns_before = sum(s.respawns for s in self._fleet.values())

        for state in self._fleet.values():
            state.completed = -1
            state.granted = 0
            state.ready = False
            state.finalized = False
            state.payloads = None
            if state.proc is None or state.proc.poll() is not None:
                self._spawn(state)
                self._emit(
                    "shard_spawn",
                    0.0,
                    shard=state.shard,
                    pid=state.proc.pid,
                    partitions=state.partitions,
                )
            self._assign(state, job, scenario, rate_scale, resume=resume,
                         kill_at_epoch=(kill_at_epoch or {}).get(state.shard))
            state.last_heard = time.monotonic()

        self._drive(job, scenario, boundaries, n_epochs, rate_scale)

        payloads: dict[str, Any] = {}
        for state in self._fleet.values():
            assert state.payloads is not None
            payloads.update(state.payloads)
        report = cluster_report_from_payloads(
            payloads,
            shards=self.shards,
            shard_map=self.shard_map,
            telemetry={
                "epochs": n_epochs,
                "epoch_s": self.epoch_s,
                "workers": len(self._fleet),
                "respawns": sum(
                    s.respawns for s in self._fleet.values()
                ) - respawns_before,
                "wall_s": round(time.perf_counter() - t0, 3),
            },
        )
        self._emit(
            "merge",
            scenario.duration,
            checksum=report.checksum(),
            partitions=list(report.partitions),
            shards=self.shards,
        )
        return report

    def _assign(
        self,
        state: _Shard,
        job: int,
        scenario,
        rate_scale: float,
        resume: bool,
        kill_at_epoch: Optional[int],
    ) -> None:
        protocol.write_frame(
            state.stdin,
            protocol.assign(
                job=job,
                scenario=self.scenario,
                seed=self.seed,
                partitions=state.partitions,
                rate_scale=rate_scale,
                duration=scenario.duration,
                max_sessions=self.max_sessions,
                epoch_s=self.epoch_s,
                checkpoint_root=str(self.checkpoint_root),
                resume=resume,
                kill_at_epoch=kill_at_epoch,
                sim_backend=self.sim_backend,
                topology=self.topology,
            ),
        )

    def _drive(
        self, job, scenario, boundaries, n_epochs, rate_scale
    ) -> None:
        """The barrier event loop: grants, heartbeats, supervision."""
        dt = STEP_DT
        fleet = self._fleet
        while any(s.payloads is None for s in fleet.values()):
            self._grant(job, n_epochs)
            self._check_hangs(job, scenario, rate_scale)
            try:
                shard, incarnation, message = self._queue.get(
                    timeout=_QUEUE_POLL_S
                )
            except queue.Empty:
                continue
            state = fleet[shard]
            if incarnation != state.incarnation:
                continue  # stale frame from a killed incarnation
            state.last_heard = time.monotonic()
            if message is None:
                if state.payloads is not None:
                    continue  # clean exit after its report was acked
                self._respawn(
                    job, scenario, rate_scale, state,
                    why="exited unexpectedly",
                )
                continue
            kind = message.get("type")
            if kind == "resumed":
                state.completed = int(message["completed"]) - 1
                state.granted = int(message["completed"])
                state.ready = True
            elif kind == "epoch_done":
                state.completed = int(message["epoch"])
                if all(
                    s.completed >= state.completed
                    for s in fleet.values()
                ):
                    self._emit(
                        "epoch_barrier",
                        boundaries[state.completed] * dt,
                        epoch=state.completed,
                        step=boundaries[state.completed],
                    )
            elif kind == "report":
                state.payloads = dict(message["payloads"])
                protocol.write_frame(
                    state.stdin, protocol.report_ack(job)
                )
            elif kind == "error":
                self._fail(
                    f"shard {shard} failed: {message.get('message')}; "
                    f"stderr: {state.stderr_tail()}"
                )
            else:
                self._fail(
                    f"shard {shard} sent unexpected {kind!r} frame"
                )

    def _grant(self, job, n_epochs) -> None:
        fleet = self._fleet
        min_completed = min(s.completed for s in fleet.values())
        for state in fleet.values():
            if not state.ready or state.payloads is not None:
                continue
            if (
                state.granted < n_epochs
                and state.granted == state.completed + 1
                and min_completed >= state.granted - 1
            ):
                protocol.write_frame(
                    state.stdin, protocol.epoch_go(job, state.granted)
                )
                state.granted += 1
            elif (
                not state.finalized
                and state.granted == n_epochs
                and state.completed == n_epochs - 1
            ):
                protocol.write_frame(
                    state.stdin, protocol.epoch_go(job, n_epochs)
                )
                state.finalized = True

    def _check_hangs(self, job, scenario, rate_scale) -> None:
        now = time.monotonic()
        for state in self._fleet.values():
            if state.payloads is not None:
                continue
            if now - state.last_heard > self.hang_timeout:
                self._respawn(
                    job, scenario, rate_scale, state,
                    why=f"silent for {self.hang_timeout:.0f}s",
                )

    def _respawn(
        self, job, scenario, rate_scale, state: _Shard, why: str
    ) -> None:
        if state.respawns >= self.max_respawns:
            self._fail(
                f"shard {state.shard} {why} and exhausted its respawn "
                f"budget ({self.max_respawns}); "
                f"stderr: {state.stderr_tail()}"
            )
        self._emit(
            "shard_exit",
            max(0.0, (state.completed + 1) * self.epoch_s),
            shard=state.shard,
            reason=why,
            respawns=state.respawns,
        )
        self._kill(state)
        state.respawns += 1
        state.completed = -1
        state.granted = 0
        state.ready = False
        state.finalized = False
        self._spawn(state)
        self._emit(
            "shard_respawn",
            max(0.0, (state.completed + 1) * self.epoch_s),
            shard=state.shard,
            pid=state.proc.pid,
            attempt=state.respawns,
        )
        # Resume from the partition checkpoints; never re-arm the kill.
        self._assign(
            state, job, scenario, rate_scale,
            resume=True, kill_at_epoch=None,
        )
        state.last_heard = time.monotonic()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the fleet down cleanly; idempotent."""
        if self._closing:
            return
        self._closing = True
        for state in self._fleet.values():
            proc = state.proc
            if proc is None or proc.poll() is not None:
                continue
            try:
                protocol.write_frame(state.stdin, protocol.shutdown())
            except (OSError, ValueError):
                pass
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
            self._kill(state)
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "ClusterMaster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _emit(self, name: str, sim_time: float, **fields) -> None:
        if self.obs.enabled:
            self.obs.trace.emit(
                sim_time, Category.CLUSTER, name, **fields
            )


def run_cluster_scenario(
    scenario: str,
    seed: int = 0,
    shards: int = 2,
    rate_scale: float = 1.0,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
    epoch_s: float = 2.0,
    checkpoint_root: Optional[os.PathLike] = None,
    resume: bool = False,
    hang_timeout: float = 60.0,
    max_respawns: int = 2,
    obs: Optional[Observability] = None,
    kill_at_epoch: Optional[dict[int, int]] = None,
    sim_backend: Optional[str] = None,
    topology: Optional[str] = None,
) -> ClusterReport:
    """One-shot convenience: spawn a fleet, run one job, tear it down."""
    with ClusterMaster(
        scenario=scenario,
        seed=seed,
        shards=shards,
        epoch_s=epoch_s,
        max_sessions=max_sessions,
        checkpoint_root=checkpoint_root,
        hang_timeout=hang_timeout,
        max_respawns=max_respawns,
        obs=obs,
        sim_backend=sim_backend,
        topology=topology,
    ) as master:
        return master.run(
            rate_scale=rate_scale,
            duration=duration,
            resume=resume,
            kill_at_epoch=kill_at_epoch,
        )
