"""Stable tenant-to-shard assignment via rendezvous hashing.

The partition unit is the *tenant*: one tenant's sessions always
simulate together (they share admission interactions and per-tenant
accounting), and each tenant's slice is a pure function of
``(seed, scenario, tenant)`` — so *where* it runs can never change
*what* it computes.  Shard assignment only has to be deterministic and
reasonably spread; rendezvous (highest-random-weight) hashing gives
both, plus minimal movement when the shard count changes.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.errors import ConfigurationError

#: Hash namespace, versioned.  The suffix was chosen so the default
#: catalog's three tenants split 2/1 at two shards and land on three
#: distinct shards at four — changing it reshuffles every deployment's
#: tenant placement (never its results).
DEFAULT_SALT = "repro-cluster:v3"


def _score(partition: str, shard: int, salt: str) -> int:
    digest = hashlib.sha256(
        f"{salt}|{partition}|{shard}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def shard_of(
    partition: str, shards: int, salt: str = DEFAULT_SALT
) -> int:
    """The shard owning ``partition`` under ``shards``-way hashing."""
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if not partition:
        raise ConfigurationError("partition must be non-empty")
    return max(
        range(shards), key=lambda s: (_score(partition, s, salt), -s)
    )


def partition_map(
    partitions: Iterable[str], shards: int, salt: str = DEFAULT_SALT
) -> dict[int, list[str]]:
    """Group partitions by owning shard: ``{shard: sorted partitions}``.

    Only shards that own at least one partition appear — the master
    never spawns an idle worker.
    """
    owners: dict[int, list[str]] = {}
    seen: set[str] = set()
    for partition in partitions:
        if partition in seen:
            raise ConfigurationError(
                f"duplicate partition {partition!r}"
            )
        seen.add(partition)
        owners.setdefault(shard_of(partition, shards, salt), []).append(
            partition
        )
    return {shard: sorted(owned) for shard, owned in sorted(owners.items())}
