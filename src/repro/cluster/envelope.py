"""Capacity-envelope estimation fanned out across worker shards.

Each binary-search probe is one sharded cluster job; one fleet of
workers is reused for every probe, so the per-probe cost is the
simulation itself, not process spawning.  Because a cluster probe's
``(offered, violation_rate)`` is byte-identical to the in-process
partitioned run's, the search visits exactly the same probe sequence —
the envelope is still a pure function of ``(scenario, seed, ceiling,
bounds, iterations)`` and independent of the shard count.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.context import Observability
from repro.workload.envelope import CapacityEnvelope, estimate_envelope

from repro.cluster.master import ClusterMaster


def estimate_cluster_envelope(
    scenario_name: str,
    seed: int = 0,
    shards: int = 2,
    ceiling: float = 0.05,
    lo_scale: float = 0.125,
    hi_scale: float = 4.0,
    iterations: int = 6,
    probe_duration: float = 30.0,
    max_sessions: Optional[int] = None,
    epoch_s: float = 2.0,
    checkpoint_root: Optional[os.PathLike] = None,
    hang_timeout: float = 60.0,
    max_respawns: int = 2,
    obs: Optional[Observability] = None,
    topology: Optional[str] = None,
) -> CapacityEnvelope:
    """:func:`repro.workload.envelope.estimate_envelope`, shard-fanned."""
    with ClusterMaster(
        scenario=scenario_name,
        seed=seed,
        shards=shards,
        epoch_s=epoch_s,
        max_sessions=max_sessions,
        checkpoint_root=checkpoint_root,
        hang_timeout=hang_timeout,
        max_respawns=max_respawns,
        obs=obs,
        topology=topology,
    ) as master:

        def probe(scale: float) -> tuple[int, float]:
            report = master.run(
                rate_scale=scale, duration=probe_duration
            )
            return report.offered, report.violation_rate

        return estimate_envelope(
            scenario_name,
            seed=seed,
            ceiling=ceiling,
            lo_scale=lo_scale,
            hi_scale=hi_scale,
            iterations=iterations,
            probe_duration=probe_duration,
            max_sessions=max_sessions,
            probe_fn=probe,
            topology=topology,
        )
