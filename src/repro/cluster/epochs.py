"""The virtual-time epoch schedule the barrier synchronizes on.

Master and workers each compute this schedule independently from the
same ``(duration, epoch_s, dt)``; it must therefore be a pure function
of those three numbers.  Epoch ``e`` covers delivery steps
``(boundary(e-1), boundary(e)]``, and the last boundary always equals
the run's total step count (the final epoch may be short).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import ConfigurationError
from repro.workload.scenarios import STEP_DT


def total_steps(duration: float, dt: float = STEP_DT) -> int:
    """Delivery steps in a run of ``duration`` virtual seconds."""
    if duration <= 0:
        raise ConfigurationError(
            f"duration must be positive, got {duration}"
        )
    return int(round(duration / dt))


def epoch_boundaries(
    duration: float, epoch_s: float, dt: float = STEP_DT
) -> list[int]:
    """End step of each epoch: strictly increasing, ends at total steps."""
    if epoch_s < dt:
        raise ConfigurationError(
            f"epoch_s must be >= dt ({dt}), got {epoch_s}"
        )
    steps = total_steps(duration, dt)
    boundaries: list[int] = []
    epoch = 0
    while True:
        boundary = min(steps, int(round((epoch + 1) * epoch_s / dt)))
        boundaries.append(boundary)
        if boundary >= steps:
            return boundaries
        epoch += 1


def epochs_completed(boundaries: list[int], step: int) -> int:
    """How many epochs a run checkpointed at ``step`` has fully finished."""
    return bisect_right(boundaries, step)
