"""One shard's worker process: ``python -m repro.cluster.worker``.

A worker owns a set of tenant partitions and simulates each one's
slice — its own testbed realization, IQPathsService, and ChurnDriver,
all pure functions of ``(seed, scenario, partition)``.  It speaks the
framed protocol on stdin/stdout and advances simulation in
barrier-granted virtual-time epochs, checkpointing every partition at
each epoch boundary when a checkpoint root is assigned.

Stdout hygiene: the protocol stream is the *duplicated* stdout file
descriptor; ``sys.stdout`` itself is rebound to stderr immediately, so
any stray ``print`` in library code lands in the shard's log instead
of corrupting a frame.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import Any, BinaryIO, Mapping, Optional

from repro.checkpoint.snapshot import CheckpointStore
from repro.cluster import protocol
from repro.cluster.epochs import epoch_boundaries, epochs_completed
from repro.errors import ClusterProtocolError
from repro.runner.fingerprint import code_fingerprint
from repro.workload.driver import ChurnDriver
from repro.workload.scenarios import make_partition_run, make_scenario


def _load_partition_checkpoint(
    driver: ChurnDriver,
    store: CheckpointStore,
    fingerprint: str,
    meta_want: Mapping[str, Any],
) -> int:
    """Restore one partition's snapshot if usable; returns its step.

    Lenient by design (the master's respawn path must make progress
    even past a damaged slot): an unusable or mismatched checkpoint
    restarts that partition from step 0.
    """
    checkpoint = store.load(fingerprint=fingerprint, strict=False)
    if checkpoint is None:
        return 0
    meta = checkpoint.meta
    if any(meta.get(key) != want for key, want in meta_want.items()):
        return 0
    driver.service.load_state_dict(checkpoint.payload["service"])
    driver.load_state_dict(checkpoint.payload["driver"])
    return driver.completed_steps


def _save_partition_checkpoint(
    driver: ChurnDriver,
    store: CheckpointStore,
    fingerprint: str,
    meta: Mapping[str, Any],
    step: int,
) -> None:
    store.save(
        {
            "service": driver.service.state_dict(),
            "driver": driver.state_dict(),
        },
        fingerprint=fingerprint,
        meta={**meta, "step": step, "t": step * driver.service.dt},
    )


def _run_job(
    assign: Mapping[str, Any],
    proto_in: BinaryIO,
    proto_out: BinaryIO,
    fingerprint: str,
) -> None:
    """Execute one assigned run: epochs, checkpoints, report upload."""
    job = int(assign["job"])
    scenario = make_scenario(
        assign["scenario"],
        rate_scale=float(assign["rate_scale"]),
        duration=assign["duration"],
        # .get(): masters predating the field omit it (= Figure-8).
        topology=assign.get("topology"),
    )
    duration = scenario.duration
    epoch_s = float(assign["epoch_s"])
    partitions = list(assign["partitions"])
    seed = int(assign["seed"])
    max_sessions = assign["max_sessions"]
    checkpoint_root = assign["checkpoint_root"]
    kill_at_epoch = assign["kill_at_epoch"]
    # .get(): masters predating the field omit it, meaning "worker's own
    # process default" — the backends are bit-identical anyway.
    sim_backend = assign.get("sim_backend")

    drivers: dict[str, ChurnDriver] = {}
    stores: dict[str, CheckpointStore] = {}
    metas: dict[str, dict[str, Any]] = {}
    for partition in partitions:
        drivers[partition] = make_partition_run(
            scenario,
            partition,
            seed=seed,
            max_sessions=max_sessions,
            sim_backend=sim_backend,
        )
        if checkpoint_root is not None:
            stores[partition] = CheckpointStore.for_partition(
                checkpoint_root, partition
            )
            metas[partition] = {
                "scenario": scenario.name,
                "seed": seed,
                "partition": partition,
                "rate_scale": float(assign["rate_scale"]),
                "duration": duration,
                # Guards against resuming a snapshot from a different
                # topology; None (Figure-8) matches legacy snapshots,
                # whose meta simply lacks the key.
                "topology": scenario.topology,
            }

    boundaries = epoch_boundaries(duration, epoch_s)
    n_epochs = len(boundaries)

    completed = 0
    if assign["resume"] and stores:
        # The join point is the *least* advanced partition: a kill can
        # land between two partitions' snapshot writes, and replayed
        # epochs are no-ops for the partitions already past them.
        completed = min(
            epochs_completed(
                boundaries,
                _load_partition_checkpoint(
                    drivers[p], stores[p], fingerprint, metas[p]
                ),
            )
            for p in partitions
        )
    for partition in partitions:
        drivers[partition].begin(duration)
    protocol.write_frame(proto_out, protocol.resumed(job, completed))

    for epoch in range(completed, n_epochs):
        message = protocol.expect(
            protocol.read_frame(proto_in), "epoch_go"
        )
        if message["job"] != job or message["epoch"] != epoch:
            raise ClusterProtocolError(
                f"expected epoch_go(job={job}, epoch={epoch}), "
                f"got {message!r}"
            )
        target = boundaries[epoch]
        for partition in partitions:
            driver = drivers[partition]
            driver.advance_to(max(target, driver.completed_steps))
        for partition in partitions:
            if partition in stores:
                _save_partition_checkpoint(
                    drivers[partition],
                    stores[partition],
                    fingerprint,
                    metas[partition],
                    target,
                )
        if kill_at_epoch is not None and epoch == int(kill_at_epoch):
            # Kill-injection for the supervision tests: die *after* the
            # epoch's snapshots land but *before* the master hears
            # about it — the worst-ordered crash the barrier permits.
            os.kill(os.getpid(), signal.SIGKILL)
        protocol.write_frame(
            proto_out, protocol.epoch_done(job, epoch, target)
        )

    message = protocol.expect(protocol.read_frame(proto_in), "epoch_go")
    if message["job"] != job or message["epoch"] != n_epochs:
        raise ClusterProtocolError(
            f"expected finalize epoch_go(job={job}, epoch={n_epochs}), "
            f"got {message!r}"
        )
    payloads = {
        partition: drivers[partition].finalize(duration).to_dict()
        for partition in partitions
    }
    protocol.write_frame(proto_out, protocol.report(job, payloads))
    protocol.expect(protocol.read_frame(proto_in), "report_ack")
    # Acked means durably merged: finished work must not be "resumed".
    for store in stores.values():
        store.clear()


def serve(
    proto_in: BinaryIO, proto_out: BinaryIO, shard: int
) -> int:
    """Handshake, then process assignments until shutdown or EOF."""
    fingerprint = code_fingerprint()
    protocol.write_frame(
        proto_out, protocol.hello(shard, os.getpid(), fingerprint)
    )
    welcome = protocol.expect(protocol.read_frame(proto_in), "welcome")
    if welcome["protocol"] != protocol.PROTOCOL_VERSION:
        raise ClusterProtocolError(
            f"master speaks protocol {welcome['protocol']}, "
            f"worker speaks {protocol.PROTOCOL_VERSION}"
        )
    while True:
        message = protocol.read_frame(proto_in)
        if message is None or message.get("type") == "shutdown":
            return 0
        _run_job(
            protocol.expect(message, "assign"),
            proto_in,
            proto_out,
            fingerprint,
        )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="One shard of a repro.cluster run (spawned by the "
        "master; speaks the framed protocol on stdin/stdout).",
    )
    parser.add_argument("--shard", type=int, required=True)
    args = parser.parse_args(argv)
    proto_in = sys.stdin.buffer
    proto_out = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    sys.stdout = sys.stderr
    try:
        return serve(proto_in, proto_out, args.shard)
    except BrokenPipeError:
        # Master died; nothing to report to.
        return 1
    except Exception as exc:  # noqa: BLE001 — last-resort diagnosis frame
        print(f"worker shard {args.shard} failed: {exc}", file=sys.stderr)
        try:
            protocol.write_frame(proto_out, protocol.error(str(exc)))
        except OSError:
            pass
        return 1


if __name__ == "__main__":
    sys.exit(main())
