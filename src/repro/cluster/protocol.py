"""The master/worker wire protocol: length-prefixed canonical JSON.

Every message is one *frame*: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON with sorted keys.  Frames are
deterministic — the same message always encodes to the same bytes — so
protocol transcripts are diffable and the handshake can carry exact
code fingerprints.

Message flow (worker lifetime)::

    worker -> master   hello     {shard, pid, fingerprint, protocol}
    master -> worker   welcome   {}
    master -> worker   assign    {job, scenario, seed, partitions, ...}
    worker -> master   resumed   {job, completed}        # 0 when fresh
    master -> worker   epoch_go  {job, epoch}            # barrier grant
    worker -> master   epoch_done{job, epoch, step}      # + heartbeat
    master -> worker   epoch_go  {job, epoch=n_epochs}   # finalize
    worker -> master   report    {job, payloads}
    master -> worker   report_ack{job}                   # next assign ok
    master -> worker   shutdown  {}
    either direction   error     {message}

The worker runs epoch ``e`` (steps up to its boundary) only after
receiving ``epoch_go`` for ``e``; the master grants ``epoch_go(e)`` to
a shard only once every shard has completed epoch ``e - 1`` — a
lockstep barrier on virtual time, which is what lets a killed shard be
respawned and caught up without any other shard running ahead more
than one epoch.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO, Mapping, Optional

from repro.errors import ClusterProtocolError

#: Bumped on any wire-incompatible change; checked in the handshake.
PROTOCOL_VERSION = 1

#: Refuse absurd frame lengths (corrupt header / desynced stream)
#: before attempting a giant read.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """One message as deterministic wire bytes (header + canonical JSON)."""
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(body)) + body


def write_frame(stream: BinaryIO, message: Mapping[str, Any]) -> None:
    """Encode and flush one frame (flushing keeps the peer unblocked)."""
    stream.write(encode_frame(message))
    stream.flush()


def _read_exact(stream: BinaryIO, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ClusterProtocolError(
                f"stream truncated mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[dict[str, Any]]:
    """Read one frame; None on clean EOF (peer closed between frames)."""
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"invalid frame length {length} (desynced or corrupt stream)"
        )
    body = _read_exact(stream, length)
    if body is None:
        raise ClusterProtocolError("stream truncated after frame header")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ClusterProtocolError(
            f"frame is not a typed message: {message!r}"
        )
    return message


def expect(
    message: Optional[Mapping[str, Any]], *types: str
) -> Mapping[str, Any]:
    """Assert a message arrived and is one of ``types``.

    A peer-sent ``error`` message is surfaced verbatim (unless the
    caller explicitly expects one), so failures carry the *other*
    side's diagnosis rather than a generic type mismatch.
    """
    if message is None:
        raise ClusterProtocolError(
            f"peer closed the stream; expected {' or '.join(types)}"
        )
    kind = message.get("type")
    if kind == "error" and "error" not in types:
        raise ClusterProtocolError(
            f"peer reported error: {message.get('message')}"
        )
    if kind not in types:
        raise ClusterProtocolError(
            f"expected {' or '.join(types)}, got {kind!r}"
        )
    return message


# ----------------------------------------------------------------------
# message constructors — one per type, so spellings live in one place
# ----------------------------------------------------------------------
def hello(shard: int, pid: int, fingerprint: str) -> dict[str, Any]:
    return {
        "type": "hello",
        "shard": shard,
        "pid": pid,
        "fingerprint": fingerprint,
        "protocol": PROTOCOL_VERSION,
    }


def welcome() -> dict[str, Any]:
    return {"type": "welcome", "protocol": PROTOCOL_VERSION}


def assign(
    job: int,
    scenario: str,
    seed: int,
    partitions: list[str],
    rate_scale: float = 1.0,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
    epoch_s: float = 2.0,
    checkpoint_root: Optional[str] = None,
    resume: bool = False,
    kill_at_epoch: Optional[int] = None,
    sim_backend: Optional[str] = None,
    topology: Optional[str] = None,
) -> dict[str, Any]:
    return {
        "type": "assign",
        "job": job,
        "scenario": scenario,
        "seed": seed,
        "partitions": sorted(partitions),
        "rate_scale": rate_scale,
        "duration": duration,
        "max_sessions": max_sessions,
        "epoch_s": epoch_s,
        "checkpoint_root": checkpoint_root,
        "resume": resume,
        "kill_at_epoch": kill_at_epoch,
        # Delivery backend the worker must simulate with (None = the
        # worker process's own REPRO_SIM_BACKEND default).  Shard output
        # is bit-identical either way; this pins the choice cluster-wide.
        "sim_backend": sim_backend,
        # Generated-topology reference (repro.topo preset string);
        # None = the Figure-8 testbed.  Workers read it with .get(),
        # so old workers ignore it rather than crash — but the master
        # and workers already share a code fingerprint via the
        # handshake, which rules out genuine version skew.
        "topology": topology,
    }


def resumed(job: int, completed: int) -> dict[str, Any]:
    return {"type": "resumed", "job": job, "completed": completed}


def epoch_go(job: int, epoch: int) -> dict[str, Any]:
    return {"type": "epoch_go", "job": job, "epoch": epoch}


def epoch_done(job: int, epoch: int, step: int) -> dict[str, Any]:
    return {"type": "epoch_done", "job": job, "epoch": epoch, "step": step}


def report(
    job: int, payloads: Mapping[str, Mapping[str, Any]]
) -> dict[str, Any]:
    return {"type": "report", "job": job, "payloads": dict(payloads)}


def report_ack(job: int) -> dict[str, Any]:
    return {"type": "report_ack", "job": job}


def shutdown() -> dict[str, Any]:
    return {"type": "shutdown"}


def error(message: str) -> dict[str, Any]:
    return {"type": "error", "message": message}
