"""Command-line front door for the sharded control plane.

Runs one scenario across worker shards (or the shard-fanned capacity
envelope) and prints the merged deterministic report plus wall-clock
throughput::

    python -m repro.cluster --scenario baseline --shards 4
    python -m repro.cluster --scenario baseline --shards 2 \\
        --check-identity
    python -m repro.cluster --scenario baseline --envelope --shards 4

``--check-identity`` reruns the same job in-process (no subprocesses)
and asserts the merged payloads are byte-identical — the determinism
contract as a one-flag smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from repro.cluster.envelope import estimate_cluster_envelope
from repro.cluster.local import run_partitioned
from repro.cluster.master import run_cluster_scenario
from repro.workload.scenarios import SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description=(
            "Run a workload scenario sharded across worker processes, "
            "with a merged report byte-identical to the in-process run."
        ),
    )
    parser.add_argument(
        "--scenario", default="baseline", choices=sorted(SCENARIOS),
        help="named scenario to run (default: baseline)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="top-level seed; the merged report is a pure function of it",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="hash-space size for tenant placement (default: 2)",
    )
    parser.add_argument(
        "--topology", default=None,
        help=(
            "run on a generated topology preset (repro.topo), e.g. "
            "fat_tree_k4 or leaf_spine_4x8:dc-incast; default: the "
            "Figure-8 Emulab testbed"
        ),
    )
    parser.add_argument(
        "--rate-scale", type=float, default=1.0,
        help="multiply the scenario's arrival rates (default: 1.0)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="override the scenario's run duration (seconds)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None,
        help="truncate the session plan after this many arrivals",
    )
    parser.add_argument(
        "--epoch-s", type=float, default=2.0,
        help="virtual seconds per barrier epoch (default: 2.0)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help=(
            "per-partition snapshot root; makes runs resumable across "
            "master restarts (default: private temp dir, respawn only)"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume partitions from --checkpoint-dir snapshots",
    )
    parser.add_argument(
        "--hang-timeout", type=float, default=60.0,
        help="wall seconds of shard silence before respawn (default: 60)",
    )
    parser.add_argument(
        "--kill-shard-at", type=str, default=None, metavar="SHARD:EPOCH",
        help=(
            "kill-injection: SIGKILL shard SHARD after epoch EPOCH "
            "(supervision smoke tests)"
        ),
    )
    parser.add_argument(
        "--check-identity", action="store_true",
        help=(
            "also run the in-process partitioned baseline and fail "
            "unless the merged payloads are byte-identical"
        ),
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="write the full cluster report (JSON) here",
    )
    parser.add_argument(
        "--envelope", action="store_true",
        help="shard-fanned capacity-envelope search instead of one run",
    )
    parser.add_argument(
        "--ceiling", type=float, default=0.05,
        help="envelope violation-rate ceiling (default: 0.05)",
    )
    parser.add_argument(
        "--iterations", type=int, default=6,
        help="envelope bisection iterations (default: 6)",
    )
    parser.add_argument(
        "--probe-duration", type=float, default=30.0,
        help="duration of each envelope probe run (default: 30s)",
    )
    return parser


def _parse_kill(arg: Optional[str], parser) -> Optional[dict[int, int]]:
    if arg is None:
        return None
    try:
        shard, epoch = arg.split(":", 1)
        return {int(shard): int(epoch)}
    except ValueError:
        parser.error(
            f"--kill-shard-at wants SHARD:EPOCH (two ints), got {arg!r}"
        )


def _run_envelope(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    envelope = estimate_cluster_envelope(
        args.scenario,
        seed=args.seed,
        shards=args.shards,
        ceiling=args.ceiling,
        iterations=args.iterations,
        probe_duration=args.probe_duration,
        max_sessions=args.max_sessions,
        epoch_s=args.epoch_s,
        checkpoint_root=args.checkpoint_dir,
        hang_timeout=args.hang_timeout,
        topology=args.topology,
    )
    wall = time.perf_counter() - t0
    print(envelope.render())
    print(f"checksum {envelope.checksum()}")
    print(
        f"wall {wall:.2f}s over {len(envelope.probes)} probes "
        f"on {args.shards} shards"
    )
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(envelope.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    kill_at_epoch = _parse_kill(args.kill_shard_at, parser)
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    if args.envelope:
        return _run_envelope(args)
    t0 = time.perf_counter()
    report = run_cluster_scenario(
        args.scenario,
        seed=args.seed,
        shards=args.shards,
        rate_scale=args.rate_scale,
        duration=args.duration,
        max_sessions=args.max_sessions,
        epoch_s=args.epoch_s,
        checkpoint_root=args.checkpoint_dir,
        resume=args.resume,
        hang_timeout=args.hang_timeout,
        kill_at_epoch=kill_at_epoch,
        topology=args.topology,
    )
    wall = time.perf_counter() - t0
    print(report.render())
    print(f"checksum {report.checksum()}")
    print(
        f"wall {wall:.2f}s  sessions/sec {report.offered / wall:.1f}"
    )
    if args.check_identity:
        baseline = run_partitioned(
            args.scenario,
            seed=args.seed,
            rate_scale=args.rate_scale,
            duration=args.duration,
            max_sessions=args.max_sessions,
            topology=args.topology,
        )
        if baseline.merged != report.merged:
            print(
                "IDENTITY FAILED: cluster merge differs from the "
                "in-process baseline "
                f"({report.checksum()} != {baseline.checksum()})",
                file=sys.stderr,
            )
            return 1
        print(f"identity ok ({baseline.checksum()})")
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
