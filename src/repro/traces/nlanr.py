"""NLANR-like cross-traffic synthesis.

The paper injects cross traffic replayed from NLANR IP-header traces
collected on Abilene (Internet2) and Auckland links.  We cannot ship those
traces, so this module provides *profiles* — parameterized composite
processes calibrated to reproduce the trace properties the evaluation
depends on:

* sub-second available-bandwidth samples behave near-IID around a slowly
  moving level (mean predictors err ~20 %, Figure 4);
* the short-horizon *distribution* is stable (percentile prediction fails
  < 4 %, Figure 4);
* occasional regime shifts change the level for many seconds at a time.

Each profile describes the **cross-traffic rate** on one bottleneck link;
the residual available bandwidth is ``capacity - rate`` (see
:mod:`repro.network.link`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.synthetic import (
    CompositeProcess,
    HeavyTailNoise,
    IIDProcess,
    MarkovModulatedProcess,
    SelfSimilarProcess,
)


@dataclass(frozen=True)
class CrossTrafficProfile:
    """Calibration knobs for one synthetic cross-traffic source.

    Attributes
    ----------
    name:
        Human-readable profile name.
    mean_mbps:
        Long-run mean cross-traffic rate.
    iid_std:
        Standard deviation of the IID per-interval noise (the dominant
        short-timescale component).
    lrd_std, hurst:
        Magnitude and Hurst parameter of the self-similar drift component.
    burst_prob, burst_scale:
        Heavy-tail burst arrival probability per interval and scale (Mbps).
    regime_levels:
        Optional additional Markov-modulated offsets (Mbps) for slow regime
        shifts; empty tuple disables them.
    regime_stay_prob:
        Per-interval probability of staying in the current regime.
    """

    name: str
    mean_mbps: float
    iid_std: float
    lrd_std: float = 0.0
    hurst: float = 0.8
    burst_prob: float = 0.0
    burst_scale: float = 0.0
    regime_levels: tuple[float, ...] = ()
    regime_stay_prob: float = 0.995

    def build(self) -> CompositeProcess:
        """Materialize the profile as a composable rate process."""
        if self.mean_mbps < 0:
            raise ConfigurationError(
                f"mean_mbps must be >= 0, got {self.mean_mbps}"
            )
        components = [IIDProcess(mean=self.mean_mbps, std=self.iid_std)]
        if self.lrd_std > 0:
            components.append(
                SelfSimilarProcess(mean=0.0, std=self.lrd_std, hurst=self.hurst)
            )
        if self.burst_prob > 0 and self.burst_scale > 0:
            burst = HeavyTailNoise(
                burst_prob=self.burst_prob, burst_scale=self.burst_scale
            )
            # Re-center so bursts do not shift the long-run mean: a burst of
            # expected size E adds burst_prob * E on average.
            expected_burst = (
                self.burst_prob * self.burst_scale * float(np.exp(0.75**2 / 2))
            )
            components.append(burst)
            components.append(IIDProcess(mean=-expected_burst, std=0.0))
        if self.regime_levels:
            components.append(
                MarkovModulatedProcess(
                    levels=self.regime_levels, stay_prob=self.regime_stay_prob
                )
            )
        return CompositeProcess(components, floor=0.0)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` cross-traffic rate samples (Mbps)."""
        return self.build().sample(n, rng)


#: Calibrated profiles.  ``abilene_*`` are backbone-like (moderate mean,
#: bursty); ``auckland`` is access-link-like (higher relative variance).
#: ``light`` is the low-load profile used for the GridFTP experiment, where
#: the paper notes the network can provide almost all demanded throughput.
PROFILES: dict[str, CrossTrafficProfile] = {
    "abilene-moderate": CrossTrafficProfile(
        name="abilene-moderate",
        mean_mbps=45.0,
        iid_std=5.0,
        lrd_std=3.0,
        hurst=0.8,
        burst_prob=0.05,
        burst_scale=8.0,
        regime_levels=(0.0, 6.0),
        regime_stay_prob=0.997,
    ),
    "abilene-noisy": CrossTrafficProfile(
        name="abilene-noisy",
        mean_mbps=60.0,
        iid_std=9.0,
        lrd_std=6.0,
        hurst=0.85,
        burst_prob=0.10,
        burst_scale=12.0,
        regime_levels=(0.0, 10.0),
        regime_stay_prob=0.995,
    ),
    "auckland": CrossTrafficProfile(
        name="auckland",
        mean_mbps=30.0,
        iid_std=7.0,
        lrd_std=5.0,
        hurst=0.75,
        burst_prob=0.08,
        burst_scale=10.0,
    ),
    "light": CrossTrafficProfile(
        name="light",
        mean_mbps=32.0,
        iid_std=4.0,
        lrd_std=2.0,
        hurst=0.8,
        burst_prob=0.03,
        burst_scale=5.0,
    ),
    "calm": CrossTrafficProfile(
        name="calm",
        mean_mbps=20.0,
        iid_std=1.5,
        lrd_std=0.8,
        hurst=0.75,
    ),
    # The "deceptive" pair used by the prediction ablation: `steady`
    # leaves a residual of ~50 Mbps with a tight distribution, while
    # `wild` leaves a ~58 Mbps residual mean whose heavy dips push its
    # 5th percentile far below 50.  A mean predictor prefers the wild
    # path; a percentile predictor correctly prefers the steady one.
    "steady": CrossTrafficProfile(
        name="steady",
        mean_mbps=50.0,
        iid_std=2.0,
        lrd_std=1.0,
        hurst=0.75,
    ),
    "wild": CrossTrafficProfile(
        name="wild",
        mean_mbps=42.0,
        iid_std=10.0,
        lrd_std=6.0,
        hurst=0.85,
        burst_prob=0.12,
        burst_scale=15.0,
        regime_levels=(0.0, 12.0),
        regime_stay_prob=0.995,
    ),
}


def synthesize_cross_traffic(
    profile: str | CrossTrafficProfile,
    duration: float,
    dt: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a cross-traffic rate series.

    Parameters
    ----------
    profile:
        A profile name from :data:`PROFILES` or a profile instance.
    duration:
        Trace length in seconds.
    dt:
        Measurement interval in seconds (the paper samples at 0.1–1 s).
    rng:
        Source of randomness.

    Returns
    -------
    numpy.ndarray
        Rate in Mbps per interval, length ``round(duration / dt)``.
    """
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ConfigurationError(
                f"unknown profile {profile!r}; available: {sorted(PROFILES)}"
            ) from None
    if duration <= 0 or dt <= 0:
        raise ConfigurationError(
            f"duration and dt must be positive, got {duration}, {dt}"
        )
    n = int(round(duration / dt))
    if n == 0:
        raise ConfigurationError(
            f"duration {duration} shorter than one interval of {dt}"
        )
    return profile.sample(n, rng)
