"""Trace tooling CLI: generate, inspect, and list synthetic traces.

Examples
--------
::

    python -m repro.traces list-profiles
    python -m repro.traces generate abilene-noisy --duration 600 -o ct.npz
    python -m repro.traces inspect ct.npz
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.sim.random import RandomStreams
from repro.traces.io import Trace, load_trace, save_trace
from repro.traces.nlanr import PROFILES, synthesize_cross_traffic
from repro.traces.stats import TraceStats, hurst_exponent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-traces",
        description="Generate and inspect synthetic NLANR-like traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-profiles", help="list calibrated profiles")

    gen = sub.add_parser("generate", help="synthesize a cross-traffic trace")
    gen.add_argument("profile", choices=sorted(PROFILES))
    gen.add_argument("--duration", type=float, default=600.0)
    gen.add_argument("--dt", type=float, default=0.1)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)

    ins = sub.add_parser("inspect", help="summarize a saved trace")
    ins.add_argument("path")
    ins.add_argument(
        "--resample",
        type=float,
        default=None,
        help="aggregate to this interval (s) before summarizing",
    )
    return parser


def _cmd_list_profiles() -> int:
    for name in sorted(PROFILES):
        profile = PROFILES[name]
        print(
            f"{name:18s} mean={profile.mean_mbps:5.1f} Mbps "
            f"iid_std={profile.iid_std:4.1f} lrd_std={profile.lrd_std:4.1f} "
            f"hurst={profile.hurst:.2f} burst_p={profile.burst_prob:.2f}"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = RandomStreams(args.seed).fresh(f"cli/{args.profile}")
    rates = synthesize_cross_traffic(
        args.profile, duration=args.duration, dt=args.dt, rng=rng
    )
    trace = Trace(rates=rates, dt=args.dt, name=args.profile)
    save_trace(args.output, trace)
    print(
        f"wrote {args.output}: {len(rates)} samples of {args.dt}s "
        f"({trace.duration:.1f}s), profile {args.profile!r}"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = load_trace(args.path)
    if args.resample:
        trace = trace.resample(args.resample)
    stats = TraceStats.from_series(trace.rates)
    print(f"trace {args.path!r} (origin {trace.name!r})")
    print(f"  samples : {len(trace.rates)} x {trace.dt}s = {trace.duration:.1f}s")
    print(f"  stats   : {stats.describe()}")
    if len(trace.rates) >= 64:
        try:
            print(f"  hurst   : {hurst_exponent(trace.rates):.3f}")
        except Exception:  # short/degenerate series: skip the estimate
            pass
    hist, edges = np.histogram(trace.rates, bins=10)
    width = max(int(hist.max()), 1)
    for count, lo, hi in zip(hist, edges[:-1], edges[1:]):
        bar = "#" * max(1, round(40 * count / width)) if count else ""
        print(f"  [{lo:7.2f},{hi:7.2f}) {count:6d} {bar}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the trace CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-profiles":
        return _cmd_list_profiles()
    if args.command == "generate":
        return _cmd_generate(args)
    return _cmd_inspect(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
