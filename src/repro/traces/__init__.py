"""Synthetic bandwidth and cross-traffic traces.

The paper replays 8 GB of NLANR IP-header traces (Abilene/Auckland) as cross
traffic on its Emulab testbed.  Those traces are not available here, so this
package synthesizes traffic with the statistical properties the paper's
results depend on:

* **short-timescale IID noise** — the paper (citing Zhang et al. [34])
  observes that available bandwidth at sub-second timescales is close to
  IID, which is why percentile prediction works and mean prediction fails;
* **long-range dependence** — wide-area traffic is self-similar (Hurst
  parameter around 0.75–0.85); modelled by fractional Gaussian noise;
* **regime shifts** — slow load changes, modelled by a Markov-modulated
  mean level.

See :mod:`repro.traces.nlanr` for the calibrated "Abilene-like" and
"Auckland-like" profiles used by the figure experiments.
"""

from repro.traces.fgn import fractional_gaussian_noise
from repro.traces.synthetic import (
    BandwidthProcess,
    CompositeProcess,
    ConstantProcess,
    HeavyTailNoise,
    IIDProcess,
    MarkovModulatedProcess,
    OrnsteinUhlenbeckProcess,
    SelfSimilarProcess,
)
from repro.traces.nlanr import CrossTrafficProfile, PROFILES, synthesize_cross_traffic
from repro.traces.io import load_trace, save_trace
from repro.traces.stats import (
    TraceStats,
    autocorrelation,
    fraction_steady,
    hill_tail_index,
    hurst_exponent,
    mean_steady_period,
    rs_hurst,
)

__all__ = [
    "fractional_gaussian_noise",
    "BandwidthProcess",
    "ConstantProcess",
    "IIDProcess",
    "HeavyTailNoise",
    "MarkovModulatedProcess",
    "OrnsteinUhlenbeckProcess",
    "SelfSimilarProcess",
    "CompositeProcess",
    "CrossTrafficProfile",
    "PROFILES",
    "synthesize_cross_traffic",
    "load_trace",
    "save_trace",
    "TraceStats",
    "autocorrelation",
    "hurst_exponent",
    "rs_hurst",
    "hill_tail_index",
    "fraction_steady",
    "mean_steady_period",
]
