"""``python -m repro.traces`` — see :mod:`repro.traces.cli`."""

import sys

from repro.traces.cli import main

sys.exit(main())
