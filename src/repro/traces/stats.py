"""Statistical characterization of rate traces.

Used (a) in tests, to verify the synthetic traces actually have the
properties the paper's argument rests on (near-IID short-timescale noise,
long-range dependence), and (b) by the monitoring stack's documentation of
what "noisy" means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags ``0..max_lag`` (biased estimator)."""
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 2:
        raise TraceError(f"need >= 2 samples for autocorrelation, got {n}")
    if max_lag >= n:
        raise TraceError(f"max_lag {max_lag} must be < series length {n}")
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom == 0.0:
        # Constant series: define acf as 1 at lag 0, 0 elsewhere.
        acf = np.zeros(max_lag + 1)
        acf[0] = 1.0
        return acf
    acf = np.empty(max_lag + 1)
    acf[0] = 1.0
    for lag in range(1, max_lag + 1):
        acf[lag] = float(np.dot(x[:-lag], x[lag:])) / denom
    return acf


def hurst_exponent(series: np.ndarray, min_block: int = 8) -> float:
    """Estimate the Hurst parameter by the aggregated-variance method.

    The series is averaged over blocks of size ``m``; for a self-similar
    process ``Var(mean over m) ~ m^{2H-2}``, so the slope of
    ``log Var`` vs ``log m`` gives ``2H - 2``.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 4 * min_block:
        raise TraceError(
            f"series too short ({n}) to estimate Hurst with min_block {min_block}"
        )
    sizes = []
    variances = []
    m = min_block
    # Require >= 16 blocks per size: the variance of block means is itself
    # estimated, and with only a handful of blocks the log-log fit is noise.
    while n // m >= 16:
        k = n // m
        means = x[: k * m].reshape(k, m).mean(axis=1)
        var = float(means.var())
        if var > 0:
            sizes.append(m)
            variances.append(var)
        m *= 2
    if len(sizes) < 2:
        raise TraceError("not enough block sizes with positive variance")
    slope = np.polyfit(np.log(sizes), np.log(variances), 1)[0]
    hurst = 1.0 + slope / 2.0
    # Estimator can stray slightly outside (0, 1) on short series.
    return float(np.clip(hurst, 0.01, 0.99))


def fraction_steady(
    series: np.ndarray, rho: float, horizon: int
) -> float:
    """Fraction of positions whose next ``horizon`` samples stay within ρ.

    Zhang et al. [34] (which the paper adopts) measure the likelihood of
    bandwidth remaining in a region where ``max/min < rho``.  A position
    is *steady* when the window of the next ``horizon`` samples satisfies
    that ratio (windows touching zero are unsteady by definition).
    """
    if rho <= 1.0:
        raise TraceError(f"rho must be > 1, got {rho}")
    if horizon < 2:
        raise TraceError(f"horizon must be >= 2, got {horizon}")
    x = np.asarray(series, dtype=float)
    if x.size < horizon:
        raise TraceError(
            f"series of {x.size} samples shorter than horizon {horizon}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, horizon)
    mins = windows.min(axis=1)
    maxs = windows.max(axis=1)
    steady = (mins > 0) & (maxs <= rho * mins)
    return float(np.mean(steady))


def mean_steady_period(series: np.ndarray, rho: float) -> float:
    """Average length (in samples) of maximal steady regions.

    A steady region is a maximal run over which ``max/min <= rho``;
    longer steady periods mean predictions stay valid longer.  Greedy
    scan: extend the current region while the ratio constraint holds.
    """
    if rho <= 1.0:
        raise TraceError(f"rho must be > 1, got {rho}")
    x = np.asarray(series, dtype=float)
    if x.size < 1:
        raise TraceError("empty series")
    lengths = []
    start = 0
    lo = hi = x[0]
    for i in range(1, x.size):
        v = x[i]
        new_lo, new_hi = min(lo, v), max(hi, v)
        if new_lo <= 0 or new_hi > rho * max(new_lo, 1e-12):
            lengths.append(i - start)
            start = i
            lo = hi = v
        else:
            lo, hi = new_lo, new_hi
    lengths.append(x.size - start)
    return float(np.mean(lengths))


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a rate trace."""

    mean: float
    std: float
    p05: float
    p10: float
    p50: float
    p90: float
    p95: float
    lag1_acf: float

    @classmethod
    def from_series(cls, series: np.ndarray) -> "TraceStats":
        """Compute summary statistics for ``series``."""
        x = np.asarray(series, dtype=float)
        if x.size < 2:
            raise TraceError(f"need >= 2 samples, got {x.size}")
        p05, p10, p50, p90, p95 = np.percentile(x, [5, 10, 50, 90, 95])
        return cls(
            mean=float(x.mean()),
            std=float(x.std()),
            p05=float(p05),
            p10=float(p10),
            p50=float(p50),
            p90=float(p90),
            p95=float(p95),
            lag1_acf=float(autocorrelation(x, 1)[1]),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"mean={self.mean:.2f} std={self.std:.2f} "
            f"p05={self.p05:.2f} p10={self.p10:.2f} p50={self.p50:.2f} "
            f"p90={self.p90:.2f} p95={self.p95:.2f} acf1={self.lag1_acf:.3f}"
        )
