"""Statistical characterization of rate traces.

Used (a) in tests, to verify the synthetic traces actually have the
properties the paper's argument rests on (near-IID short-timescale noise,
long-range dependence), and (b) by the monitoring stack's documentation of
what "noisy" means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags ``0..max_lag`` (biased estimator)."""
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 2:
        raise TraceError(f"need >= 2 samples for autocorrelation, got {n}")
    if max_lag >= n:
        raise TraceError(f"max_lag {max_lag} must be < series length {n}")
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom == 0.0:
        # Constant series: define acf as 1 at lag 0, 0 elsewhere.
        acf = np.zeros(max_lag + 1)
        acf[0] = 1.0
        return acf
    acf = np.empty(max_lag + 1)
    acf[0] = 1.0
    for lag in range(1, max_lag + 1):
        acf[lag] = float(np.dot(x[:-lag], x[lag:])) / denom
    return acf


def hurst_exponent(series: np.ndarray, min_block: int = 8) -> float:
    """Estimate the Hurst parameter by the aggregated-variance method.

    The series is averaged over blocks of size ``m``; for a self-similar
    process ``Var(mean over m) ~ m^{2H-2}``, so the slope of
    ``log Var`` vs ``log m`` gives ``2H - 2``.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 4 * min_block:
        raise TraceError(
            f"series too short ({n}) to estimate Hurst with min_block {min_block}"
        )
    sizes = []
    variances = []
    m = min_block
    # Require >= 16 blocks per size: the variance of block means is itself
    # estimated, and with only a handful of blocks the log-log fit is noise.
    while n // m >= 16:
        k = n // m
        means = x[: k * m].reshape(k, m).mean(axis=1)
        var = float(means.var())
        if var > 0:
            sizes.append(m)
            variances.append(var)
        m *= 2
    if len(sizes) < 2:
        raise TraceError("not enough block sizes with positive variance")
    slope = np.polyfit(np.log(sizes), np.log(variances), 1)[0]
    hurst = 1.0 + slope / 2.0
    # Estimator can stray slightly outside (0, 1) on short series.
    return float(np.clip(hurst, 0.01, 0.99))


def rs_hurst(series: np.ndarray, min_block: int = 16) -> float:
    """Estimate the Hurst parameter by rescaled-range (R/S) analysis.

    For each block size ``m`` the series is cut into blocks; per block the
    range of the mean-adjusted cumulative sum is divided by the block's
    standard deviation, and ``E[R/S] ~ m^H`` gives ``H`` as the slope of
    ``log(R/S)`` vs ``log m``.  An independent check on
    :func:`hurst_exponent` (aggregated variance) — the acceptance tests
    require both estimators to agree with the requested ``H``.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 4 * min_block:
        raise TraceError(
            f"series too short ({n}) to estimate Hurst with min_block {min_block}"
        )
    sizes = []
    ratios = []
    m = min_block
    while n // m >= 4:
        k = n // m
        blocks = x[: k * m].reshape(k, m)
        demeaned = blocks - blocks.mean(axis=1, keepdims=True)
        cums = np.cumsum(demeaned, axis=1)
        ranges = cums.max(axis=1) - cums.min(axis=1)
        stds = blocks.std(axis=1)
        valid = stds > 0
        if np.any(valid):
            rs = float(np.mean(ranges[valid] / stds[valid]))
            if rs > 0:
                sizes.append(m)
                ratios.append(rs)
        m *= 2
    if len(sizes) < 2:
        raise TraceError("not enough block sizes with positive R/S")
    slope = np.polyfit(np.log(sizes), np.log(ratios), 1)[0]
    return float(np.clip(slope, 0.01, 0.99))


def hill_tail_index(series: np.ndarray, k: int | None = None) -> float:
    """Hill estimator of the upper tail index ``alpha``.

    Uses the ``k`` largest order statistics:
    ``1/alpha = mean(log X_(i) - log X_(k+1))`` over the top ``k``.
    Smaller ``alpha`` means a heavier tail; light-tailed (e.g. Gaussian)
    data yields large values.  ``k`` defaults to ``sqrt(n)`` clipped to
    ``[10, n // 4]``.
    """
    x = np.asarray(series, dtype=float)
    x = x[x > 0]
    n = x.size
    if n < 40:
        raise TraceError(f"need >= 40 positive samples, got {n}")
    if k is None:
        k = int(np.clip(np.sqrt(n), 10, n // 4))
    if not 1 <= k < n:
        raise TraceError(f"k must be in [1, {n - 1}], got {k}")
    tail = np.sort(x)[-(k + 1):]
    logs = np.log(tail)
    inv_alpha = float(np.mean(logs[1:] - logs[0]))
    if inv_alpha <= 0:
        raise TraceError("degenerate tail (all top-k samples equal)")
    return 1.0 / inv_alpha


def fraction_steady(
    series: np.ndarray, rho: float, horizon: int
) -> float:
    """Fraction of positions whose next ``horizon`` samples stay within ρ.

    Zhang et al. [34] (which the paper adopts) measure the likelihood of
    bandwidth remaining in a region where ``max/min < rho``.  A position
    is *steady* when the window of the next ``horizon`` samples satisfies
    that ratio (windows touching zero are unsteady by definition).
    """
    if rho <= 1.0:
        raise TraceError(f"rho must be > 1, got {rho}")
    if horizon < 2:
        raise TraceError(f"horizon must be >= 2, got {horizon}")
    x = np.asarray(series, dtype=float)
    if x.size < horizon:
        raise TraceError(
            f"series of {x.size} samples shorter than horizon {horizon}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, horizon)
    mins = windows.min(axis=1)
    maxs = windows.max(axis=1)
    steady = (mins > 0) & (maxs <= rho * mins)
    return float(np.mean(steady))


def mean_steady_period(series: np.ndarray, rho: float) -> float:
    """Average length (in samples) of maximal steady regions.

    A steady region is a maximal run over which ``max/min <= rho``;
    longer steady periods mean predictions stay valid longer.  Greedy
    scan: extend the current region while the ratio constraint holds.
    """
    if rho <= 1.0:
        raise TraceError(f"rho must be > 1, got {rho}")
    x = np.asarray(series, dtype=float)
    if x.size < 1:
        raise TraceError("empty series")
    lengths = []
    start = 0
    lo = hi = x[0]
    for i in range(1, x.size):
        v = x[i]
        new_lo, new_hi = min(lo, v), max(hi, v)
        if new_lo <= 0 or new_hi > rho * max(new_lo, 1e-12):
            lengths.append(i - start)
            start = i
            lo = hi = v
        else:
            lo, hi = new_lo, new_hi
    lengths.append(x.size - start)
    return float(np.mean(lengths))


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a rate trace."""

    mean: float
    std: float
    p05: float
    p10: float
    p50: float
    p90: float
    p95: float
    lag1_acf: float

    @classmethod
    def from_series(cls, series: np.ndarray) -> "TraceStats":
        """Compute summary statistics for ``series``."""
        x = np.asarray(series, dtype=float)
        if x.size < 2:
            raise TraceError(f"need >= 2 samples, got {x.size}")
        p05, p10, p50, p90, p95 = np.percentile(x, [5, 10, 50, 90, 95])
        return cls(
            mean=float(x.mean()),
            std=float(x.std()),
            p05=float(p05),
            p10=float(p10),
            p50=float(p50),
            p90=float(p90),
            p95=float(p95),
            lag1_acf=float(autocorrelation(x, 1)[1]),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"mean={self.mean:.2f} std={self.std:.2f} "
            f"p05={self.p05:.2f} p10={self.p10:.2f} p50={self.p50:.2f} "
            f"p90={self.p90:.2f} p95={self.p95:.2f} acf1={self.lag1_acf:.3f}"
        )
