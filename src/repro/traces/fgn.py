"""Fractional Gaussian noise via circulant embedding (Davies–Harte).

Wide-area cross traffic is long-range dependent; fGn with Hurst parameter
``H`` in (0.5, 1) is the standard model.  The Davies–Harte method generates
an exact sample path in O(n log n) using the FFT of the circulant embedding
of the fGn autocovariance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def fgn_autocovariance(n: int, hurst: float) -> np.ndarray:
    """Autocovariance gamma(k), k = 0..n-1, of unit-variance fGn."""
    k = np.arange(n, dtype=float)
    two_h = 2.0 * hurst
    return 0.5 * (
        np.abs(k + 1) ** two_h - 2.0 * np.abs(k) ** two_h + np.abs(k - 1) ** two_h
    )


def fractional_gaussian_noise(
    n: int,
    hurst: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``n`` points of zero-mean, unit-variance fGn with Hurst ``hurst``.

    Parameters
    ----------
    n:
        Number of samples (any positive integer; internally padded to the
        circulant embedding size).
    hurst:
        Hurst parameter in (0, 1).  ``0.5`` gives white noise; the paper's
        traffic regime corresponds to roughly ``0.75–0.85``.
    rng:
        Source of randomness.

    Notes
    -----
    For pathological ``hurst`` values the circulant eigenvalues can dip
    slightly negative due to floating point; they are clipped at zero, which
    is the usual practical remedy and introduces negligible bias for
    ``hurst <= 0.95``.
    """
    if not 0.0 < hurst < 1.0:
        raise ConfigurationError(f"hurst must be in (0, 1), got {hurst}")
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if abs(hurst - 0.5) < 1e-12:
        return rng.standard_normal(n)

    gamma = fgn_autocovariance(n, hurst)
    # Circulant embedding: first row is [g0, g1, .., g_{n-1}, g_{n-2}, .., g1].
    row = np.concatenate([gamma, gamma[-2:0:-1]]) if n > 1 else gamma
    eigenvalues = np.fft.rfft(row).real
    eigenvalues = np.clip(eigenvalues, 0.0, None)

    m = row.size
    # Complex Gaussian spectrum with Hermitian symmetry handled by irfft.
    half = eigenvalues.size
    re = rng.standard_normal(half)
    im = rng.standard_normal(half)
    spectrum = np.sqrt(eigenvalues * m / 2.0) * (re + 1j * im)
    # DC and (for even m) Nyquist bins must be real with doubled variance.
    spectrum[0] = np.sqrt(eigenvalues[0] * m) * re[0]
    if m % 2 == 0:
        spectrum[-1] = np.sqrt(eigenvalues[-1] * m) * re[-1]
    path = np.fft.irfft(spectrum, n=m)[:n]
    return path


def fbm_from_fgn(fgn: np.ndarray) -> np.ndarray:
    """Cumulative sum of fGn: a fractional Brownian motion sample path."""
    return np.cumsum(fgn)
