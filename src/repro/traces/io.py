"""Trace persistence.

Traces are stored as ``.npz`` archives carrying the rate series plus the
metadata needed to interpret it (interval length, units, profile name).
This is the moral equivalent of the paper's trace files: generate once,
replay many times.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import TraceError

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Trace:
    """A rate series with its sampling metadata.

    Attributes
    ----------
    rates:
        Rate per interval, in Mbps.
    dt:
        Interval length in seconds.
    name:
        Free-form origin label (profile name, link name, ...).
    """

    rates: np.ndarray
    dt: float
    name: str = ""

    @property
    def duration(self) -> float:
        """Total trace length in seconds."""
        return len(self.rates) * self.dt

    def resample(self, new_dt: float) -> "Trace":
        """Aggregate to a coarser interval by averaging whole groups.

        ``new_dt`` must be an integer multiple of ``dt``; trailing samples
        that do not fill a group are dropped.  This is how the Figure 4
        experiment sweeps the measurement window from 0.1 s to 1.0 s.
        """
        ratio = new_dt / self.dt
        k = int(round(ratio))
        if k < 1 or abs(ratio - k) > 1e-9:
            raise TraceError(
                f"new_dt {new_dt} is not an integer multiple of dt {self.dt}"
            )
        if k == 1:
            return self
        n = (len(self.rates) // k) * k
        if n == 0:
            raise TraceError("trace too short to resample at that interval")
        grouped = self.rates[:n].reshape(-1, k).mean(axis=1)
        return Trace(rates=grouped, dt=new_dt, name=self.name)


def save_trace(path: str | Path, trace: Trace) -> None:
    """Write a trace to ``path`` (``.npz``)."""
    meta = json.dumps(
        {"version": _FORMAT_VERSION, "dt": trace.dt, "name": trace.name}
    )
    np.savez_compressed(
        Path(path), rates=np.asarray(trace.rates, dtype=np.float64), meta=meta
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            rates = archive["rates"]
            meta = json.loads(str(archive["meta"]))
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise TraceError(f"malformed trace file {path}: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {meta.get('version')} in {path}"
        )
    return Trace(rates=rates, dt=float(meta["dt"]), name=str(meta.get("name", "")))
