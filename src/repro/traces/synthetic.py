"""Composable synthetic bandwidth/rate processes.

Every process produces a rate series (Mbps per measurement interval) via
``sample(n, rng)``.  Processes are *descriptions*: they hold parameters, not
random state, so a single description can be sampled repeatedly and
reproducibly with different generators.

The experiments compose these into cross-traffic models; see
:mod:`repro.traces.nlanr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.fgn import fractional_gaussian_noise


class BandwidthProcess:
    """Base class: a description of a stochastic rate process in Mbps."""

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` consecutive rate samples (Mbps, may be negative for
        zero-mean noise components; composites clip at the end)."""
        raise NotImplementedError

    def __add__(self, other: "BandwidthProcess") -> "CompositeProcess":
        return CompositeProcess([self, other])


@dataclass(frozen=True)
class ConstantProcess(BandwidthProcess):
    """A constant rate — the degenerate baseline (and useful in tests)."""

    rate: float

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, float(self.rate))


@dataclass(frozen=True)
class IIDProcess(BandwidthProcess):
    """IID Gaussian rate samples: ``Normal(mean, std)``.

    Models the short-timescale noise that Zhang et al. [34] found dominates
    available-bandwidth series — the property that defeats mean predictors.
    """

    mean: float
    std: float

    def __post_init__(self):
        if self.std < 0:
            raise ConfigurationError(f"std must be >= 0, got {self.std}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.mean + self.std * rng.standard_normal(n)


@dataclass(frozen=True)
class HeavyTailNoise(BandwidthProcess):
    """Zero-median burst noise with lognormal upper tail.

    With probability ``burst_prob`` an interval carries an extra burst drawn
    from ``Lognormal(mu, sigma)`` scaled to ``burst_scale`` Mbps; otherwise
    zero.  Captures the occasional large flows in packet-header traces that
    create outliers in mean-prediction series.
    """

    burst_prob: float
    burst_scale: float
    sigma: float = 0.75

    def __post_init__(self):
        if not 0.0 <= self.burst_prob <= 1.0:
            raise ConfigurationError(
                f"burst_prob must be in [0, 1], got {self.burst_prob}"
            )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        bursts = rng.lognormal(mean=0.0, sigma=self.sigma, size=n) * self.burst_scale
        mask = rng.random(n) < self.burst_prob
        return np.where(mask, bursts, 0.0)


@dataclass(frozen=True)
class MarkovModulatedProcess(BandwidthProcess):
    """Rate level that jumps between states of a Markov chain.

    ``levels[i]`` is the rate while in state ``i``; ``stay_prob`` is the
    per-interval probability of remaining in the current state, with the
    remainder split uniformly over other states.  Models regime shifts
    (diurnal load changes, route changes) that make *long-horizon* mean
    prediction unreliable while leaving the *short-horizon distribution*
    stable.
    """

    levels: tuple[float, ...]
    stay_prob: float = 0.995
    initial_state: int = 0

    def __post_init__(self):
        if len(self.levels) < 1:
            raise ConfigurationError("levels must be non-empty")
        if not 0.0 < self.stay_prob <= 1.0:
            raise ConfigurationError(
                f"stay_prob must be in (0, 1], got {self.stay_prob}"
            )
        if not 0 <= self.initial_state < len(self.levels):
            raise ConfigurationError(
                f"initial_state {self.initial_state} out of range for "
                f"{len(self.levels)} levels"
            )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        k = len(self.levels)
        if k == 1:
            return np.full(n, self.levels[0])
        # Vectorized chain: draw switch flags, then pick next states only at
        # switches (rare), scanning those few positions in Python.
        switches = rng.random(n) > self.stay_prob
        states = np.empty(n, dtype=np.int64)
        state = self.initial_state
        switch_positions = np.flatnonzero(switches)
        prev = 0
        others_cache = {
            s: [t for t in range(k) if t != s] for s in range(k)
        }
        for pos in switch_positions:
            states[prev:pos] = state
            state = int(rng.choice(others_cache[state]))
            prev = pos
        states[prev:] = state
        return np.asarray(self.levels, dtype=float)[states]


@dataclass(frozen=True)
class OrnsteinUhlenbeckProcess(BandwidthProcess):
    """Mean-reverting Gaussian rate: discretized OU process.

    ``theta`` controls how fast the rate reverts to ``mean``; ``std`` is the
    stationary standard deviation.  A smoother alternative to fGn for slow
    load drift.
    """

    mean: float
    std: float
    theta: float = 0.05

    def __post_init__(self):
        if not 0.0 < self.theta < 1.0:
            raise ConfigurationError(f"theta must be in (0, 1), got {self.theta}")
        if self.std < 0:
            raise ConfigurationError(f"std must be >= 0, got {self.std}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # x_{t+1} = x_t + theta (mean - x_t) + sigma_step eps
        # stationary variance std^2  =>  sigma_step = std sqrt(1-(1-theta)^2)
        a = 1.0 - self.theta
        sigma_step = self.std * np.sqrt(1.0 - a * a)
        eps = rng.standard_normal(n)
        x = np.empty(n)
        # Start at stationarity so there is no warm-up transient.
        current = self.mean + self.std * rng.standard_normal()
        for i in range(n):
            current = a * current + self.theta * self.mean + sigma_step * eps[i]
            x[i] = current
        return x


@dataclass(frozen=True)
class SelfSimilarProcess(BandwidthProcess):
    """Long-range-dependent rate: ``mean + std * fGn(hurst)``."""

    mean: float
    std: float
    hurst: float = 0.8

    def __post_init__(self):
        if not 0.0 < self.hurst < 1.0:
            raise ConfigurationError(f"hurst must be in (0, 1), got {self.hurst}")
        if self.std < 0:
            raise ConfigurationError(f"std must be >= 0, got {self.std}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.mean + self.std * fractional_gaussian_noise(n, self.hurst, rng)


@dataclass(frozen=True)
class CompositeProcess(BandwidthProcess):
    """Sum of component processes, clipped to ``[floor, ceiling]``.

    The natural model for cross traffic: a base level plus LRD drift plus
    heavy-tail bursts, clipped to the physical link capacity.
    """

    components: Sequence[BandwidthProcess]
    floor: float = 0.0
    ceiling: float = field(default=float("inf"))

    def __post_init__(self):
        if not self.components:
            raise ConfigurationError("CompositeProcess needs >= 1 component")
        if self.floor > self.ceiling:
            raise ConfigurationError(
                f"floor {self.floor} exceeds ceiling {self.ceiling}"
            )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        total = np.zeros(n)
        for component in self.components:
            total += component.sample(n, rng)
        return np.clip(total, self.floor, self.ceiling)
