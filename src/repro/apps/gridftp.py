"""GridFTP vs IQPG-GridFTP (Section 6.2).

The workload simulates the Earth System Grid II climate database: records
stream at 25 records/second, each with three components:

* **DT1** — numeric data, ~172.8 KB/record  → 34.56 Mbps at 25 rec/s
* **DT2** — low-resolution images, 128 KB   → 25.60 Mbps
* **DT3** — high-resolution images, 384 KB  → 76.80 Mbps (elastic: "fully
  utilize bandwidth to transfer high-resolution data")

(The paper's in-text rates — e.g. DT1's 34.55 Mbps measured mean — imply
decimal kilobytes, so sizes here are in units of 1000 bytes.)

DT1 and DT2 must arrive at >= 25 records/second for real-time streaming;
DT3 should go as fast as the leftover bandwidth allows.

Two transports are compared over two overlay paths:

* **standard GridFTP** (:class:`GridFTPScheduler`) — the *blocked* data
  layout: fixed-size blocks of the record stream are distributed
  round-robin over the parallel connections, so every data type competes
  FIFO on both paths and dips hit all three types proportionally;
* **IQPG-GridFTP** — GridFTP with PGOS interposed between the parallel
  link layer and the transports: DT1/DT2 are mapped with 95 % guarantees,
  DT3 rides the leftover.

A *partitioned* layout (contiguous chunks split evenly across
connections) is also provided; at interval granularity its steady-state
behaviour matches the blocked layout, since each connection carries the
same component mix over time.
"""

from __future__ import annotations

import enum
from typing import Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.baselines.optsched import OptSchedScheduler
from repro.core.pgos import PGOSScheduler
from repro.core.scheduler import PathShareRequest, SchedulerBase
from repro.core.spec import StreamSpec
from repro.harness.experiment import ExperimentResult, run_schedule_experiment
from repro.network.emulab import make_figure8_testbed

#: Component sizes per climate record (decimal KB, see module docstring).
DT1_BYTES = 172_800
DT2_BYTES = 128_000
DT3_BYTES = 384_000

#: Real-time streaming requirement.
RECORDS_PER_SECOND = 25.0

#: Per-component rates at the required record rate.
DT1_MBPS = DT1_BYTES * 8 * RECORDS_PER_SECOND / 1e6  # 34.56
DT2_MBPS = DT2_BYTES * 8 * RECORDS_PER_SECOND / 1e6  # 25.60
DT3_MBPS = DT3_BYTES * 8 * RECORDS_PER_SECOND / 1e6  # 76.80

GUARANTEE_PROBABILITY = 0.95


class DataLayout(enum.Enum):
    """How file contents are distributed across parallel connections."""

    BLOCKED = "blocked"
    PARTITIONED = "partitioned"
    PGOS = "pgos"


def gridftp_streams() -> list[StreamSpec]:
    """The three record-component streams with the paper's requirements."""
    return [
        StreamSpec(
            name="DT1",
            required_mbps=DT1_MBPS,
            probability=GUARANTEE_PROBABILITY,
        ),
        StreamSpec(
            name="DT2",
            required_mbps=DT2_MBPS,
            probability=GUARANTEE_PROBABILITY,
        ),
        StreamSpec(
            name="DT3",
            elastic=True,
            nominal_mbps=DT3_MBPS,
        ),
    ]


class GridFTPScheduler(SchedulerBase):
    """Standard GridFTP parallel transfer (no service differentiation).

    Blocked layout: each stream's queued bytes are spread evenly over the
    parallel connections; on each connection all data types compete FIFO
    (modelled as fair sharing weighted by the components' byte fractions,
    which is what interleaved fixed-size blocks produce).
    """

    name = "GridFTP"

    def __init__(self, layout: DataLayout = DataLayout.BLOCKED):
        if layout is DataLayout.PGOS:
            raise ConfigurationError(
                "use PGOSScheduler for the PGOS layout"
            )
        self.layout = layout

    def allocate(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        n = len(self.path_names)
        requests: dict[str, list[PathShareRequest]] = {
            p: [] for p in self.path_names
        }
        for spec in self.streams:
            backlog = backlog_mbps.get(spec.name)
            for path in self.path_names:
                demand = None if backlog is None else backlog / n
                requests[path].append(
                    PathShareRequest(
                        stream=spec.name,
                        demand_mbps=demand,
                        weight=spec.weight / n,
                        level=0,
                    )
                )
        return requests


def run_gridftp(
    algorithm: Union[str, SchedulerBase] = "GridFTP",
    seed: int = 11,
    duration: float = 180.0,
    dt: float = 0.1,
    warmup_intervals: int = 300,
    profile_a: str = "light",
    profile_b: str = "light",
) -> ExperimentResult:
    """Run the climate-record transfer under one transport.

    ``algorithm`` is ``"GridFTP"`` (blocked layout), ``"Partitioned"``,
    ``"IQPG"`` (PGOS layout), ``"OptSched"``, or a scheduler instance.
    Cross traffic defaults to the *light* profile on both bottlenecks: the
    paper notes that in this experiment "the network can provide almost
    the total throughput required by the application" (~137 Mbps demanded
    of ~140 Mbps available).
    """
    if isinstance(algorithm, str):
        if algorithm == "GridFTP":
            scheduler: SchedulerBase = GridFTPScheduler(DataLayout.BLOCKED)
        elif algorithm == "Partitioned":
            scheduler = GridFTPScheduler(DataLayout.PARTITIONED)
            scheduler.name = "GridFTP-Partitioned"
        elif algorithm == "IQPG":
            scheduler = PGOSScheduler()
            scheduler.name = "IQPG-GridFTP"
        elif algorithm == "OptSched":
            scheduler = OptSchedScheduler()
        else:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; use GridFTP, Partitioned, "
                "IQPG, or OptSched"
            )
    else:
        scheduler = algorithm

    testbed = make_figure8_testbed(profile_a=profile_a, profile_b=profile_b)
    realization = testbed.realize(seed=seed, duration=duration, dt=dt)
    if isinstance(scheduler, OptSchedScheduler):
        scheduler.set_oracle(
            {
                p: realization.available[p].available_mbps
                for p in realization.path_names()
            }
        )
    return run_schedule_experiment(
        scheduler,
        realization,
        gridftp_streams(),
        warmup_intervals=warmup_intervals,
    )


def records_per_second(result: ExperimentResult, stream: str) -> float:
    """Mean record rate achieved by one component stream."""
    sizes = {"DT1": DT1_BYTES, "DT2": DT2_BYTES, "DT3": DT3_BYTES}
    if stream not in sizes:
        raise ConfigurationError(f"unknown component {stream!r}")
    mean_mbps = float(result.stream_series(stream).mean())
    return mean_mbps * 1e6 / 8.0 / sizes[stream]
