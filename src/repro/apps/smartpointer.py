"""The SmartPointer workload (Section 6.1).

A molecular-dynamics visualization server issues three streams to remote
collaborators at 25 frames/second:

* **Atom** — all atom positions in the viewer's volume; critical.
  Utility: 3.249 Mbps with a 95 % predictive guarantee.
* **Bond1** — bonds inside the current view volume; critical.
  Utility: 22.148 Mbps with a 95 % predictive guarantee.
* **Bond2** — bonds outside the current view; best-effort (useful when
  the viewer pans quickly, so it should still flow when bandwidth allows).

The experiment compares WFQ (single path), MSFQ, PGOS, and the offline
OptSched oracle over the Figure-8 testbed's two overlay paths.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.errors import ConfigurationError
from repro.baselines import (
    MeanPredictionScheduler,
    MSFQScheduler,
    OptSchedScheduler,
    WFQScheduler,
)
from repro.core.pgos import PGOSScheduler
from repro.core.scheduler import SchedulerBase
from repro.core.spec import StreamSpec
from repro.harness.experiment import ExperimentResult, run_schedule_experiment
from repro.network.emulab import make_figure8_testbed
from repro.units import mbps_to_bytes_per_s

#: The paper's utility requirements (Section 6.1).
ATOM_MBPS = 3.249
BOND1_MBPS = 22.148
GUARANTEE_PROBABILITY = 0.95

#: Display rate for effective collaboration.
FRAME_RATE = 25.0

#: Nominal demand of the best-effort Bond2 stream (its fair-queuing
#: weight); the Bond2 source can always fill this much.
BOND2_NOMINAL_MBPS = 40.0


def frame_bytes(mbps: float, frame_rate: float = FRAME_RATE) -> float:
    """Per-frame payload of a CBR stream at the given frame rate."""
    if frame_rate <= 0:
        raise ConfigurationError(f"frame_rate must be > 0, got {frame_rate}")
    return mbps_to_bytes_per_s(mbps) / frame_rate


def smartpointer_streams(
    bond2_nominal: float = BOND2_NOMINAL_MBPS,
    probability: float = GUARANTEE_PROBABILITY,
) -> list[StreamSpec]:
    """The three SmartPointer stream specifications."""
    return [
        StreamSpec(
            name="Atom",
            required_mbps=ATOM_MBPS,
            probability=probability,
        ),
        StreamSpec(
            name="Bond1",
            required_mbps=BOND1_MBPS,
            probability=probability,
        ),
        StreamSpec(
            name="Bond2",
            elastic=True,
            nominal_mbps=bond2_nominal,
        ),
    ]


#: Scheduler factories by the names used throughout the evaluation.
SCHEDULER_FACTORIES: dict[str, Callable[[], SchedulerBase]] = {
    "WFQ": WFQScheduler,
    "MSFQ": MSFQScheduler,
    "PGOS": PGOSScheduler,
    "OptSched": OptSchedScheduler,
    "MeanPred": MeanPredictionScheduler,
}


def make_scheduler(name: str) -> SchedulerBase:
    """Instantiate one of the evaluation's schedulers by name."""
    try:
        return SCHEDULER_FACTORIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: "
            f"{sorted(SCHEDULER_FACTORIES)}"
        ) from None


def run_smartpointer(
    algorithm: Union[str, SchedulerBase],
    seed: int = 7,
    duration: float = 180.0,
    dt: float = 0.1,
    warmup_intervals: int = 300,
    profile_a: str = "abilene-moderate",
    profile_b: str = "abilene-noisy",
    bond2_nominal: float = BOND2_NOMINAL_MBPS,
) -> ExperimentResult:
    """Run the SmartPointer experiment under one algorithm.

    Parameters
    ----------
    algorithm:
        Scheduler name (``"WFQ"``, ``"MSFQ"``, ``"PGOS"``, ``"OptSched"``,
        ``"MeanPred"``) or a pre-built scheduler instance.
    seed, duration, dt:
        Realization seed, experiment length (seconds) and measurement
        interval.  ``duration`` *includes* the warmup probe phase.
    warmup_intervals:
        Probe intervals before application traffic starts (monitors and
        predictors fill up; nothing is recorded).
    profile_a, profile_b:
        Cross-traffic profiles of the two bottlenecks.
    """
    scheduler = (
        make_scheduler(algorithm) if isinstance(algorithm, str) else algorithm
    )
    testbed = make_figure8_testbed(profile_a=profile_a, profile_b=profile_b)
    realization = testbed.realize(seed=seed, duration=duration, dt=dt)
    if isinstance(scheduler, OptSchedScheduler):
        scheduler.set_oracle(
            {
                p: realization.available[p].available_mbps
                for p in realization.path_names()
            }
        )
    streams = smartpointer_streams(bond2_nominal=bond2_nominal)
    return run_schedule_experiment(
        scheduler,
        realization,
        streams,
        warmup_intervals=warmup_intervals,
    )
