"""Layered MPEG-4 FGS-like video streaming over IQ-Paths.

The paper's third application (detailed in the companion technical
report): a fine-grained-scalable video stream whose *base layer* must flow
continuously for playback while *enhancement layers* opportunistically
improve quality.  IQ-Paths maps the base layer onto a path with a strong
statistical guarantee and lets the enhancement layer fill whatever
bandwidth remains — "improved smoothness of video playback, despite the
variable-bit-rate nature of layered video".

The quality model is deliberately simple: per interval, the playback
quality level is the fraction of the enhancement-layer nominal rate that
arrived, *provided* the base layer arrived in full; an interval whose base
layer is short is a stall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.smartpointer import make_scheduler
from repro.baselines.optsched import OptSchedScheduler
from repro.core.scheduler import SchedulerBase
from repro.core.spec import StreamSpec
from repro.harness.experiment import ExperimentResult, run_schedule_experiment
from repro.network.emulab import make_figure8_testbed

#: Base-layer rate (CBR) and required guarantee.
BASE_LAYER_MBPS = 2.0
BASE_LAYER_PROBABILITY = 0.97

#: Nominal full-quality enhancement-layer rate (VBR, elastic).
ENHANCEMENT_NOMINAL_MBPS = 12.0


def layered_video_streams(
    base_mbps: float = BASE_LAYER_MBPS,
    enhancement_nominal: float = ENHANCEMENT_NOMINAL_MBPS,
    probability: float = BASE_LAYER_PROBABILITY,
) -> list[StreamSpec]:
    """Base + enhancement stream specifications."""
    return [
        StreamSpec(
            name="base",
            required_mbps=base_mbps,
            probability=probability,
        ),
        StreamSpec(
            name="enhancement",
            elastic=True,
            nominal_mbps=enhancement_nominal,
        ),
    ]


@dataclass(frozen=True)
class VideoQuality:
    """Playback-quality summary of one run."""

    stall_fraction: float
    mean_quality: float
    quality_std: float

    def describe(self) -> str:
        return (
            f"stalls={self.stall_fraction * 100:.2f}% of intervals, "
            f"quality mean={self.mean_quality:.3f} std={self.quality_std:.3f}"
        )


def playback_quality(
    result: ExperimentResult,
    base_mbps: float = BASE_LAYER_MBPS,
    enhancement_nominal: float = ENHANCEMENT_NOMINAL_MBPS,
) -> VideoQuality:
    """Score a run with the simple stall/quality model."""
    base = result.stream_series("base")
    enh = result.stream_series("enhancement")
    ok = base >= base_mbps * (1 - 1e-6)
    quality = np.where(ok, np.clip(enh / enhancement_nominal, 0.0, 1.0), 0.0)
    return VideoQuality(
        stall_fraction=float(np.mean(~ok)),
        mean_quality=float(quality.mean()),
        quality_std=float(quality.std()),
    )


def vbr_frame_sizes(
    duration: float,
    frame_rate: float,
    mean_mbps: float,
    rng: np.random.Generator,
    scene_change_prob: float = 0.01,
    scene_factor_range: tuple[float, float] = (0.5, 2.0),
    frame_cv: float = 0.25,
) -> np.ndarray:
    """Synthesize VBR frame sizes (bytes) for an FGS enhancement layer.

    Two-level model of coded video: a scene-complexity factor that jumps
    at scene changes (Markov arrivals with ``scene_change_prob`` per
    frame) scales the mean frame size, plus per-frame lognormal variation
    with coefficient of variation ``frame_cv``.  The long-run mean rate is
    normalized to ``mean_mbps``.
    """
    if duration <= 0 or frame_rate <= 0 or mean_mbps <= 0:
        raise ConfigurationError(
            "duration, frame_rate, and mean_mbps must be positive"
        )
    lo, hi = scene_factor_range
    if not 0 < lo <= hi:
        raise ConfigurationError(
            f"bad scene_factor_range {scene_factor_range}"
        )
    n = int(round(duration * frame_rate))
    if n == 0:
        raise ConfigurationError("duration shorter than one frame")
    # Scene complexity: piecewise-constant factors.
    factors = np.empty(n)
    factor = rng.uniform(lo, hi)
    for i in range(n):
        if rng.random() < scene_change_prob:
            factor = rng.uniform(lo, hi)
        factors[i] = factor
    sigma = np.sqrt(np.log(1 + frame_cv**2))
    noise = rng.lognormal(mean=-sigma**2 / 2, sigma=sigma, size=n)
    raw = factors * noise
    mean_frame_bytes = mean_mbps * 1e6 / 8.0 / frame_rate
    return raw / raw.mean() * mean_frame_bytes


def startup_delay_seconds(
    delivered_mbps: np.ndarray,
    dt: float,
    playout_mbps: float,
) -> float:
    """Pre-buffering time needed for stall-free playback.

    The receiver buffers ``required_playout_buffer_bytes`` before starting;
    at the delivered mean rate that takes this many seconds.  The
    tech-report claim reduces to: PGOS's smoother delivery needs a shorter
    startup delay than MSFQ's at the same mean throughput.
    """
    from repro.harness.metrics import required_playout_buffer_bytes

    buffer_bytes = required_playout_buffer_bytes(
        delivered_mbps, dt, playout_mbps
    )
    mean_rate = float(np.asarray(delivered_mbps).mean())
    if mean_rate <= 0:
        raise ConfigurationError("stream delivered nothing")
    return buffer_bytes / (mean_rate * 1e6 / 8.0)


def run_video(
    algorithm: Union[str, SchedulerBase] = "PGOS",
    seed: int = 23,
    duration: float = 120.0,
    dt: float = 0.1,
    warmup_intervals: int = 300,
    profile_a: str = "abilene-moderate",
    profile_b: str = "abilene-noisy",
) -> ExperimentResult:
    """Stream layered video under one scheduler over the Figure-8 testbed."""
    scheduler = (
        make_scheduler(algorithm) if isinstance(algorithm, str) else algorithm
    )
    testbed = make_figure8_testbed(profile_a=profile_a, profile_b=profile_b)
    realization = testbed.realize(seed=seed, duration=duration, dt=dt)
    if isinstance(scheduler, OptSchedScheduler):
        scheduler.set_oracle(
            {
                p: realization.available[p].available_mbps
                for p in realization.path_names()
            }
        )
    streams = layered_video_streams()
    if warmup_intervals >= realization.n_intervals:
        raise ConfigurationError(
            f"warmup {warmup_intervals} exceeds run of "
            f"{realization.n_intervals} intervals"
        )
    return run_schedule_experiment(
        scheduler,
        realization,
        streams,
        warmup_intervals=warmup_intervals,
    )
