"""The paper's evaluation applications.

* :mod:`repro.apps.smartpointer` — the SmartPointer distributed
  collaboration / molecular-dynamics visualization workload (Section 6.1).
* :mod:`repro.apps.gridftp` — parallel climate-record transfer: standard
  GridFTP layouts vs IQPG-GridFTP (Section 6.2).
* :mod:`repro.apps.video` — layered MPEG-4-FGS-like video streaming, the
  third application referenced from the companion technical report.
"""

from repro.apps.smartpointer import (
    ATOM_MBPS,
    BOND1_MBPS,
    FRAME_RATE,
    make_scheduler,
    run_smartpointer,
    smartpointer_streams,
)
from repro.apps.gridftp import (
    DT1_BYTES,
    DT2_BYTES,
    DT3_BYTES,
    GridFTPScheduler,
    RECORDS_PER_SECOND,
    gridftp_streams,
    run_gridftp,
)
from repro.apps.video import layered_video_streams, run_video

__all__ = [
    "ATOM_MBPS",
    "BOND1_MBPS",
    "FRAME_RATE",
    "smartpointer_streams",
    "run_smartpointer",
    "make_scheduler",
    "DT1_BYTES",
    "DT2_BYTES",
    "DT3_BYTES",
    "RECORDS_PER_SECOND",
    "gridftp_streams",
    "run_gridftp",
    "GridFTPScheduler",
    "layered_video_streams",
    "run_video",
]
