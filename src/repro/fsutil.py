"""Atomic filesystem writes shared by every result/report writer.

Concurrent runner workers (and interrupted runs) must never leave torn
or interleaved output files: every write in the repo that produces a
result artifact — figure reports, benchmark baselines, cache entries,
metrics exports — goes through :func:`atomic_write_text` /
:func:`atomic_write_json`, which write to a temporary file in the target
directory and publish with :func:`os.replace` (atomic on POSIX and NTFS
for same-directory renames).  Readers therefore always see either the
old complete file or the new complete file, never a partial one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; returns the final path.

    The temporary file lives in the same directory as the target so the
    final :func:`os.replace` never crosses a filesystem boundary.
    Parent directories are created if missing.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fp:
            fp.write(text)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def atomic_write_json(
    path: str | Path,
    obj: Any,
    indent: int | None = 2,
    sort_keys: bool = True,
) -> Path:
    """JSON-serialize ``obj`` and write it atomically with a newline."""
    return atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )
