"""``python -m repro.runner`` — the one-command evaluation front door."""

import sys

from repro.runner.cli import main

sys.exit(main())
