"""Task implementations: pure spec -> JSON-payload functions.

Each entry in :data:`TASKS` maps a spec ``kind`` to a top-level
function (picklable, importable under any multiprocessing start
method) that executes the spec and returns a JSON-serializable payload.
Payloads are *pure* functions of the spec: no wall clocks, hostnames,
PIDs, or attempt counters ever leak in, which is what makes parallel
execution byte-identical to serial and cache entries reusable.

Every payload carries a ``"report"`` key — the human-readable text the
front door writes to ``<output>/<name>.txt`` — plus task-specific
structured fields.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.runner.spec import RunSpec


def jsonify(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays for JSON serialization."""
    if isinstance(obj, np.ndarray):
        return [jsonify(v) for v in obj.tolist()]
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# figure
# ----------------------------------------------------------------------
def run_figure(spec: RunSpec) -> dict[str, Any]:
    """Regenerate one figure: params ``{"figure": ..., "fast": ...}``.

    The RNG seed is the spec's :meth:`~RunSpec.effective_seed` — the
    suite builder pins each figure's canonical seed explicitly, so the
    report bytes match ``python -m repro.harness <figure>``.
    """
    from repro.harness.figures import FIGURES

    name = spec.params.get("figure")
    if name not in FIGURES:
        raise ConfigurationError(
            f"unknown figure {name!r}; known: {sorted(FIGURES)}"
        )
    result = FIGURES[name](
        seed=spec.effective_seed(),
        fast=bool(spec.params.get("fast", False)),
    )
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "report": result.render() + "\n",
        "measured": jsonify(result.measured),
        "notes": list(result.notes),
    }


# ----------------------------------------------------------------------
# sweep points
# ----------------------------------------------------------------------
def run_sweep_point(spec: RunSpec) -> dict[str, Any]:
    """One cross-traffic intensity: params ``{"scale": ..., ...}``.

    Calls the same :func:`repro.harness.sweep.cross_traffic_point` the
    serial sweep loop uses, with the same base seed, so a fanned-out
    sweep reassembles bit-identically to ``sweep_cross_traffic``.
    """
    from repro.harness.sweep import cross_traffic_point, render_sweep

    point = cross_traffic_point(
        scale=float(spec.params["scale"]),
        algorithms=tuple(spec.params.get("algorithms", ("MSFQ", "PGOS"))),
        seed=spec.effective_seed(),
        duration=float(spec.params.get("duration", 90.0)),
        dt=float(spec.params.get("dt", 0.1)),
        warmup_intervals=int(spec.params.get("warmup_intervals", 200)),
    )
    return {
        "point": jsonify(asdict(point)),
        "report": render_sweep([point]) + "\n",
    }


def run_noise_point(spec: RunSpec) -> dict[str, Any]:
    """One probing-quality level: params describe the probe declaratively.

    ``{"label": ..., "noise_cv": ..., "bias": ..., "smoothing_intervals":
    ..., "perfect": bool}`` — the probe object is built here, inside the
    worker, so specs stay plain data.
    """
    from repro.harness.sweep import measurement_noise_point
    from repro.monitoring.probe import ProbingEstimator

    label = str(spec.params["label"])
    probe = None
    if not spec.params.get("perfect", False):
        probe = ProbingEstimator(
            noise_cv=float(spec.params.get("noise_cv", 0.0)),
            bias=float(spec.params.get("bias", 1.0)),
            smoothing_intervals=int(
                spec.params.get("smoothing_intervals", 1)
            ),
        )
    point = measurement_noise_point(
        label,
        probe,
        seed=spec.effective_seed(),
        duration=float(spec.params.get("duration", 90.0)),
        dt=float(spec.params.get("dt", 0.1)),
        warmup_intervals=int(spec.params.get("warmup_intervals", 200)),
    )
    return {
        "point": jsonify(asdict(point)),
        "report": f"{point.label}: attainment {point.attainment:.3f}\n",
    }


# ----------------------------------------------------------------------
# chaos campaign
# ----------------------------------------------------------------------
def run_chaos(spec: RunSpec) -> dict[str, Any]:
    """The canonical seeded chaos campaign (tools/run_chaos.py's run)."""
    from repro.harness.chaos import standard_chaos_run

    report = standard_chaos_run(
        seed=spec.effective_seed(),
        duration=float(spec.params.get("duration", 80.0)),
    )
    return {
        "campaign": report.campaign,
        "report": report.summary() + "\n",
        "detected": report.detected,
        "recovered": report.recovered,
        "time_to_detect": report.time_to_detect,
        "time_to_recover": report.time_to_recover,
        "remap_count": report.remap_count,
        "violation_seconds": jsonify(report.violation_seconds),
    }


# ----------------------------------------------------------------------
# workload scenarios and capacity envelopes
# ----------------------------------------------------------------------
def run_workload(spec: RunSpec) -> dict[str, Any]:
    """One churn scenario: params ``{"scenario": ..., "rate_scale": ...}``.

    Executes :func:`repro.workload.run_scenario` with the spec's seed.
    The payload embeds the report's own ``checksum`` so byte-identity
    across worker counts (and against fresh runs) is a string compare.
    """
    from repro.workload import run_scenario

    report = run_scenario(
        str(spec.params["scenario"]),
        seed=spec.effective_seed(),
        rate_scale=float(spec.params.get("rate_scale", 1.0)),
        duration=spec.params.get("duration"),
        max_sessions=spec.params.get("max_sessions"),
    )
    return {
        "report": report.render() + "\n",
        "workload": jsonify(report.to_dict()),
        "checksum": report.checksum(),
    }


def run_envelope(spec: RunSpec) -> dict[str, Any]:
    """One capacity-envelope search: params name the scenario + search.

    ``{"scenario": ..., "ceiling": ..., "iterations": ...,
    "probe_duration": ..., "max_sessions": ...}``.
    """
    from repro.workload import estimate_envelope

    envelope = estimate_envelope(
        str(spec.params["scenario"]),
        seed=spec.effective_seed(),
        ceiling=float(spec.params.get("ceiling", 0.05)),
        iterations=int(spec.params.get("iterations", 6)),
        probe_duration=float(spec.params.get("probe_duration", 30.0)),
        max_sessions=spec.params.get("max_sessions"),
    )
    return {
        "report": envelope.render() + "\n",
        "envelope": jsonify(envelope.to_dict()),
        "checksum": envelope.checksum(),
    }


# ----------------------------------------------------------------------
# selftest (executor plumbing probes)
# ----------------------------------------------------------------------
def run_selftest(spec: RunSpec) -> dict[str, Any]:
    """Controlled success/crash/hang behaviors for tests and smoke runs.

    Modes: ``echo`` returns ``value``; ``sleep`` sleeps ``sleep_s`` then
    echoes; ``raise`` raises; ``crash`` hard-exits the worker; and
    ``crash_once`` hard-exits only while the ``marker`` file is absent
    (creating it first), so a retry succeeds — the bounded-retry path in
    one spec.
    """
    mode = spec.params.get("mode", "echo")
    value = spec.params.get("value")
    if mode == "sleep":
        time.sleep(float(spec.params.get("sleep_s", 0.1)))
    elif mode == "raise":
        raise RuntimeError(spec.params.get("message", "selftest failure"))
    elif mode == "crash":
        os._exit(int(spec.params.get("exit_code", 3)))
    elif mode == "crash_once":
        marker = spec.params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fp:
                fp.write("crashed\n")
            os._exit(int(spec.params.get("exit_code", 3)))
    elif mode != "echo":
        raise ConfigurationError(f"unknown selftest mode {mode!r}")
    return {"value": value, "report": f"selftest {mode}: {value}\n"}


#: Dispatch table: spec kind -> task function.
TASKS: dict[str, Callable[[RunSpec], dict[str, Any]]] = {
    "figure": run_figure,
    "sweep_point": run_sweep_point,
    "noise_point": run_noise_point,
    "chaos": run_chaos,
    "workload": run_workload,
    "envelope": run_envelope,
    "selftest": run_selftest,
}


def execute_spec(spec: RunSpec) -> dict[str, Any]:
    """Dispatch one spec to its task; the single worker entry point."""
    task = TASKS.get(spec.kind)
    if task is None:
        raise ConfigurationError(
            f"unknown spec kind {spec.kind!r}; known: {sorted(TASKS)}"
        )
    payload = task(spec)
    if "report" not in payload:
        raise ConfigurationError(
            f"task {spec.kind!r} returned no 'report' key"
        )
    return payload
