"""Task implementations: pure spec -> JSON-payload functions.

Each entry in :data:`TASKS` maps a spec ``kind`` to a top-level
function (picklable, importable under any multiprocessing start
method) that executes the spec and returns a JSON-serializable payload.
Payloads are *pure* functions of the spec: no wall clocks, hostnames,
PIDs, or attempt counters ever leak in, which is what makes parallel
execution byte-identical to serial and cache entries reusable.

Every payload carries a ``"report"`` key — the human-readable text the
front door writes to ``<output>/<name>.txt`` — plus task-specific
structured fields.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.runner.spec import RunSpec


@dataclass
class TaskRuntime:
    """Execution-context services the executor offers a running task.

    Purely *operational* state — nothing here may influence a payload
    (payloads stay pure functions of the spec):

    checkpoint_dir:
        Per-spec directory for crash-recovery state.  Tasks that can
        checkpoint (workload, envelope) snapshot here and auto-resume
        on their next attempt; tasks without checkpoint support ignore
        it.  ``None`` disables checkpointing.
    heartbeat:
        Zero-argument progress callable.  Long tasks invoke it at step
        granularity so the supervisor can tell *hung* (no heartbeats)
        from merely *slow* (steady heartbeats); the executor throttles
        the actual pipe traffic.
    """

    checkpoint_dir: Optional[str] = None
    heartbeat: Optional[Callable[[], None]] = None

    def beat(self) -> None:
        """Signal liveness (no-op without a supervisor)."""
        if self.heartbeat is not None:
            self.heartbeat()


def jsonify(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays for JSON serialization."""
    if isinstance(obj, np.ndarray):
        return [jsonify(v) for v in obj.tolist()]
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# figure
# ----------------------------------------------------------------------
def run_figure(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """Regenerate one figure: params ``{"figure": ..., "fast": ...}``.

    The RNG seed is the spec's :meth:`~RunSpec.effective_seed` — the
    suite builder pins each figure's canonical seed explicitly, so the
    report bytes match ``python -m repro.harness <figure>``.
    """
    from repro.harness.figures import FIGURES

    name = spec.params.get("figure")
    if name not in FIGURES:
        raise ConfigurationError(
            f"unknown figure {name!r}; known: {sorted(FIGURES)}"
        )
    result = FIGURES[name](
        seed=spec.effective_seed(),
        fast=bool(spec.params.get("fast", False)),
    )
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "report": result.render() + "\n",
        "measured": jsonify(result.measured),
        "notes": list(result.notes),
    }


# ----------------------------------------------------------------------
# sweep points
# ----------------------------------------------------------------------
def run_sweep_point(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """One cross-traffic intensity: params ``{"scale": ..., ...}``.

    Calls the same :func:`repro.harness.sweep.cross_traffic_point` the
    serial sweep loop uses, with the same base seed, so a fanned-out
    sweep reassembles bit-identically to ``sweep_cross_traffic``.
    """
    from repro.harness.sweep import cross_traffic_point, render_sweep

    point = cross_traffic_point(
        scale=float(spec.params["scale"]),
        algorithms=tuple(spec.params.get("algorithms", ("MSFQ", "PGOS"))),
        seed=spec.effective_seed(),
        duration=float(spec.params.get("duration", 90.0)),
        dt=float(spec.params.get("dt", 0.1)),
        warmup_intervals=int(spec.params.get("warmup_intervals", 200)),
    )
    return {
        "point": jsonify(asdict(point)),
        "report": render_sweep([point]) + "\n",
    }


def run_noise_point(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """One probing-quality level: params describe the probe declaratively.

    ``{"label": ..., "noise_cv": ..., "bias": ..., "smoothing_intervals":
    ..., "perfect": bool}`` — the probe object is built here, inside the
    worker, so specs stay plain data.
    """
    from repro.harness.sweep import measurement_noise_point
    from repro.monitoring.probe import ProbingEstimator

    label = str(spec.params["label"])
    probe = None
    if not spec.params.get("perfect", False):
        probe = ProbingEstimator(
            noise_cv=float(spec.params.get("noise_cv", 0.0)),
            bias=float(spec.params.get("bias", 1.0)),
            smoothing_intervals=int(
                spec.params.get("smoothing_intervals", 1)
            ),
        )
    point = measurement_noise_point(
        label,
        probe,
        seed=spec.effective_seed(),
        duration=float(spec.params.get("duration", 90.0)),
        dt=float(spec.params.get("dt", 0.1)),
        warmup_intervals=int(spec.params.get("warmup_intervals", 200)),
    )
    return {
        "point": jsonify(asdict(point)),
        "report": f"{point.label}: attainment {point.attainment:.3f}\n",
    }


# ----------------------------------------------------------------------
# chaos campaign
# ----------------------------------------------------------------------
def run_chaos(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """The canonical seeded chaos campaign (tools/run_chaos.py's run)."""
    from repro.harness.chaos import standard_chaos_run

    report = standard_chaos_run(
        seed=spec.effective_seed(),
        duration=float(spec.params.get("duration", 80.0)),
    )
    return {
        "campaign": report.campaign,
        "report": report.summary() + "\n",
        "detected": report.detected,
        "recovered": report.recovered,
        "time_to_detect": report.time_to_detect,
        "time_to_recover": report.time_to_recover,
        "remap_count": report.remap_count,
        "violation_seconds": jsonify(report.violation_seconds),
    }


# ----------------------------------------------------------------------
# workload scenarios and capacity envelopes
# ----------------------------------------------------------------------
def run_workload(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """One churn scenario: params ``{"scenario": ..., "rate_scale": ...}``.

    Executes :func:`repro.workload.run_scenario` with the spec's seed.
    The payload embeds the report's own ``checksum`` so byte-identity
    across worker counts (and against fresh runs) is a string compare.

    With ``runtime.checkpoint_dir`` set the run is crash-safe: it
    snapshots every ``checkpoint_every`` virtual seconds (param,
    default 5.0) and a retried attempt resumes from the last verified
    snapshot instead of starting over.  The report — and therefore the
    payload — is byte-identical either way.  ``kill_points`` (a list of
    virtual times, honored only when checkpointing) arms the
    kill-injection harness: the worker SIGKILLs *itself* at each point,
    once, which is how the crash tests exercise the supervisor.
    """
    from repro.workload import run_scenario
    from repro.workload.scenarios import make_scenario

    name = str(spec.params["scenario"])
    seed = spec.effective_seed()
    rate_scale = float(spec.params.get("rate_scale", 1.0))
    duration = spec.params.get("duration")
    max_sessions = spec.params.get("max_sessions")
    topology = spec.params.get("topology")
    if runtime is None or runtime.checkpoint_dir is None:
        report = run_scenario(
            name,
            seed=seed,
            rate_scale=rate_scale,
            duration=duration,
            max_sessions=max_sessions,
            topology=topology,
        )
    else:
        from repro.checkpoint import (
            CheckpointConfig,
            CheckpointStore,
            run_scale_scenario_checkpointed,
        )
        from repro.harness.crash import KillSwitch

        kill_points = spec.params.get("kill_points") or []
        switch = (
            KillSwitch(
                runtime.checkpoint_dir,
                [float(t) for t in kill_points],
            )
            if kill_points
            else None
        )

        def on_step(k: int, t: float) -> None:
            runtime.beat()
            if switch is not None:
                switch.maybe_kill(t)

        report = run_scale_scenario_checkpointed(
            make_scenario(
                name,
                rate_scale=rate_scale,
                duration=duration,
                topology=topology,
            ),
            CheckpointStore(runtime.checkpoint_dir),
            seed=seed,
            max_sessions=max_sessions,
            config=CheckpointConfig(
                every_s=float(spec.params.get("checkpoint_every", 5.0))
            ),
            on_step=on_step,
        )
    return {
        "report": report.render() + "\n",
        "workload": jsonify(report.to_dict()),
        "checksum": report.checksum(),
    }


def run_envelope(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """One capacity-envelope search: params name the scenario + search.

    ``{"scenario": ..., "ceiling": ..., "iterations": ...,
    "probe_duration": ..., "max_sessions": ...}``.

    With ``runtime.checkpoint_dir`` set, resume is probe-granular: the
    bisection path is a pure function of the probe verdicts, so
    finished probes are journaled (atomically, keyed by rate scale) and
    a retried attempt replays them instead of rerunning — landing at
    the bit-identical envelope.
    """
    from repro.fsutil import atomic_write_text
    from repro.workload import estimate_envelope

    resume_probes = None
    on_probe = None
    if runtime is not None and runtime.checkpoint_dir is not None:
        os.makedirs(runtime.checkpoint_dir, exist_ok=True)
        journal_path = os.path.join(
            runtime.checkpoint_dir, "probes.json"
        )
        journal: dict[str, Any] = {}
        if os.path.exists(journal_path):
            try:
                with open(journal_path, encoding="utf-8") as fp:
                    journal = json.load(fp)
            except (OSError, json.JSONDecodeError):
                journal = {}  # unusable journal: recompute all probes
        resume_probes = {
            float(scale): entry for scale, entry in journal.items()
        }

        def on_probe(probe) -> None:
            if runtime.heartbeat is not None:
                runtime.beat()
            journal[repr(probe.rate_scale)] = probe.to_dict()
            atomic_write_text(journal_path, json.dumps(journal))

    envelope = estimate_envelope(
        str(spec.params["scenario"]),
        seed=spec.effective_seed(),
        ceiling=float(spec.params.get("ceiling", 0.05)),
        iterations=int(spec.params.get("iterations", 6)),
        probe_duration=float(spec.params.get("probe_duration", 30.0)),
        max_sessions=spec.params.get("max_sessions"),
        resume_probes=resume_probes,
        on_probe=on_probe,
        topology=spec.params.get("topology"),
    )
    return {
        "report": envelope.render() + "\n",
        "envelope": jsonify(envelope.to_dict()),
        "checksum": envelope.checksum(),
    }


def run_cluster(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """One sharded cluster run: params ``{"scenario": ..., "shards": ...}``.

    Spawns a worker fleet via :class:`repro.cluster.ClusterMaster`, so
    this task parallelizes *within* one spec — unlike every other kind,
    whose parallelism is across specs.  The payload embeds the merged
    report's checksum, which by the cluster's determinism contract is
    independent of ``shards``; the executor's result cache therefore
    keys only on the simulated work, never on the worker topology
    (``shards`` rides in ``params`` and does change the spec hash —
    intentionally, since wall-time telemetry differs).

    With ``runtime.checkpoint_dir`` set, per-partition snapshots land
    under ``<dir>/cluster`` and a retried attempt resumes them.
    """
    from repro.cluster import run_cluster_scenario

    checkpoint_root = None
    resume = False
    if runtime is not None and runtime.checkpoint_dir is not None:
        checkpoint_root = os.path.join(runtime.checkpoint_dir, "cluster")
        resume = True
    report = run_cluster_scenario(
        str(spec.params["scenario"]),
        seed=spec.effective_seed(),
        shards=int(spec.params.get("shards", 2)),
        rate_scale=float(spec.params.get("rate_scale", 1.0)),
        duration=spec.params.get("duration"),
        max_sessions=spec.params.get("max_sessions"),
        epoch_s=float(spec.params.get("epoch_s", 2.0)),
        checkpoint_root=checkpoint_root,
        resume=resume,
        hang_timeout=float(spec.params.get("hang_timeout", 60.0)),
        topology=spec.params.get("topology"),
    )
    if runtime is not None:
        runtime.beat()
    return {
        "report": report.render() + "\n",
        "cluster": jsonify(report.to_dict()),
        "checksum": report.checksum(),
    }


# ----------------------------------------------------------------------
# selftest (executor plumbing probes)
# ----------------------------------------------------------------------
def run_selftest(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """Controlled success/crash/hang behaviors for tests and smoke runs.

    Modes: ``echo`` returns ``value``; ``sleep`` sleeps ``sleep_s``
    while heartbeating (slow-but-alive: must *not* trip the hang
    watchdog); ``raise`` raises; ``crash`` hard-exits the worker;
    ``crash_once`` hard-exits only while the ``marker`` file is absent
    (creating it first), so a retry succeeds — the bounded-retry path
    in one spec; ``hang`` stops heartbeating and ignores SIGTERM (the
    watchdog's terminate→kill escalation target); ``hang_once`` hangs
    only while the ``marker`` file is absent, so a retry succeeds.
    ``stderr`` writes ``message`` to stderr before crashing (tail
    capture probe).
    """
    import signal

    mode = spec.params.get("mode", "echo")
    value = spec.params.get("value")
    if mode == "sleep":
        deadline = time.monotonic() + float(spec.params.get("sleep_s", 0.1))
        while True:
            left = deadline - time.monotonic()
            if left <= 0:
                break
            time.sleep(min(0.05, left))
            if runtime is not None:
                runtime.beat()
    elif mode == "raise":
        raise RuntimeError(spec.params.get("message", "selftest failure"))
    elif mode == "crash":
        os._exit(int(spec.params.get("exit_code", 3)))
    elif mode == "stderr":
        # Straight to fd 2 (not sys.stderr, which test harnesses may
        # replace): the point is to exercise the executor's fd-level
        # stderr capture, like a dying C extension would.
        message = spec.params.get("message", "selftest stderr")
        os.write(2, (message + "\n").encode())
        os._exit(int(spec.params.get("exit_code", 3)))
    elif mode == "crash_once":
        marker = spec.params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fp:
                fp.write("crashed\n")
            os._exit(int(spec.params.get("exit_code", 3)))
    elif mode in ("hang", "hang_once"):
        marker = spec.params.get("marker")
        if mode == "hang" or (marker and not os.path.exists(marker)):
            if marker:
                with open(marker, "w", encoding="utf-8") as fp:
                    fp.write("hung\n")
            # A real wedge: no heartbeats, and SIGTERM is ignored so
            # only the supervisor's kill escalation can clear it.
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time.sleep(0.1)
    elif mode != "echo":
        raise ConfigurationError(f"unknown selftest mode {mode!r}")
    return {"value": value, "report": f"selftest {mode}: {value}\n"}


#: Dispatch table: spec kind -> task function.
TASKS: dict[
    str, Callable[[RunSpec, Optional[TaskRuntime]], dict[str, Any]]
] = {
    "figure": run_figure,
    "sweep_point": run_sweep_point,
    "noise_point": run_noise_point,
    "chaos": run_chaos,
    "workload": run_workload,
    "envelope": run_envelope,
    "cluster": run_cluster,
    "selftest": run_selftest,
}


def execute_spec(
    spec: RunSpec, runtime: Optional[TaskRuntime] = None
) -> dict[str, Any]:
    """Dispatch one spec to its task; the single worker entry point."""
    task = TASKS.get(spec.kind)
    if task is None:
        raise ConfigurationError(
            f"unknown spec kind {spec.kind!r}; known: {sorted(TASKS)}"
        )
    payload = task(spec, runtime)
    if "report" not in payload:
        raise ConfigurationError(
            f"task {spec.kind!r} returned no 'report' key"
        )
    return payload
