"""Run orchestration: declarative specs, parallel execution, caching.

The runner turns the repo's evaluation into data: every experiment is a
:class:`RunSpec` (kind + params + seed) with a stable content hash;
:func:`run_specs` fans specs across worker processes with per-spec
timeouts, crash capture, and bounded retries; and a content-addressed
:class:`ResultCache` keyed by ``(spec hash, code fingerprint)`` makes
warm reruns of unchanged figures pure cache hits.  Because tasks are
pure functions of their specs, parallel runs are byte-identical to
serial ones regardless of worker count or completion order.

Front door: ``python -m repro.runner`` (or ``tools/run_all.py``).
"""

from repro.runner.cache import CacheStats, ResultCache
from repro.runner.executor import RunOutcome, RunReport, run_specs
from repro.runner.fingerprint import code_fingerprint
from repro.runner.manifest import Manifest, ManifestWriter, load_manifest
from repro.runner.spec import RunSpec, mix_seed
from repro.runner.suite import (
    chaos_spec,
    cluster_spec,
    envelope_spec,
    figure_spec,
    figure_suite,
    scale_suite,
    seed_sweep_suite,
    topo_suite,
    workload_spec,
)

__all__ = [
    "CacheStats",
    "Manifest",
    "ManifestWriter",
    "ResultCache",
    "RunOutcome",
    "RunReport",
    "RunSpec",
    "chaos_spec",
    "cluster_spec",
    "code_fingerprint",
    "envelope_spec",
    "figure_spec",
    "figure_suite",
    "load_manifest",
    "mix_seed",
    "run_specs",
    "scale_suite",
    "seed_sweep_suite",
    "topo_suite",
    "workload_spec",
]
