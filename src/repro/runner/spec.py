"""Declarative run specifications with stable content hashes.

A :class:`RunSpec` names one unit of the evaluation — a figure, a
sweep point, a chaos campaign — as plain data: a task ``kind`` (the
dispatch key into :data:`repro.runner.tasks.TASKS`), a display ``name``,
a JSON-serializable ``params`` mapping, and an optional explicit
``seed``.  Everything downstream keys off the spec's *content hash*:

* the result cache (spec hash x code fingerprint -> payload);
* the run manifest (outcomes are recorded per spec hash);
* seed derivation — a spec with no explicit seed gets one mixed from
  its own hash, so its RNG stream can never depend on execution order
  or worker assignment.

The hash covers a canonical JSON rendering (sorted keys, no
whitespace, schema-versioned), so semantically identical specs hash
identically regardless of how their params dict was built.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError

#: Bumped whenever the canonical spec rendering changes shape, so stale
#: cache entries from older layouts can never be misread as current.
SPEC_SCHEMA = 1


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def stable_digest(text: str) -> str:
    """Hex SHA-256 of ``text`` (the repo-wide content-hash primitive)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def mix_seed(*parts: object) -> int:
    """Derive a 31-bit RNG seed from arbitrary identity parts.

    Uses SHA-256 (not Python's randomized ``hash()``) so the derivation
    is stable across processes, interpreters, and machines.
    """
    digest = hashlib.sha256(
        "|".join(str(p) for p in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass
class RunSpec:
    """One declarative unit of work for the runner.

    Attributes
    ----------
    kind:
        Task type — a key of :data:`repro.runner.tasks.TASKS`
        (``"figure"``, ``"sweep_point"``, ``"noise_point"``,
        ``"chaos"``, ``"selftest"``).
    name:
        Display/output name; figure specs use the figure id so their
        reports land in ``<output>/<name>.txt``.  The name is part of
        the spec's identity (two specs differing only by name hash
        differently).
    params:
        JSON-serializable task parameters.
    seed:
        Explicit RNG seed, or ``None`` to derive one from the spec's
        content hash (see :meth:`effective_seed`).
    """

    kind: str
    name: str
    params: dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ConfigurationError(
                f"spec kind must be a non-empty string, got {self.kind!r}"
            )
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"spec name must be a non-empty string, got {self.name!r}"
            )
        try:
            canonical_json(self.params)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"spec params must be JSON-serializable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """The canonical JSON rendering the content hash covers."""
        return canonical_json(
            {
                "schema": SPEC_SCHEMA,
                "kind": self.kind,
                "name": self.name,
                "params": self.params,
                "seed": self.seed,
            }
        )

    @property
    def content_hash(self) -> str:
        """Hex SHA-256 over the canonical rendering."""
        return stable_digest(self.canonical())

    def effective_seed(self) -> int:
        """The seed a task should use for this spec's RNG streams.

        The explicit ``seed`` when one was declared (figure specs carry
        their canonical seeds so runner output matches the classic
        harness CLI); otherwise a seed mixed from the spec's own content
        hash — order- and worker-independent by construction.
        """
        if self.seed is not None:
            return self.seed
        return mix_seed(self.content_hash, "seed")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "params": self.params,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "RunSpec":
        return cls(
            kind=record["kind"],
            name=record["name"],
            params=dict(record.get("params") or {}),
            seed=record.get("seed"),
        )
