"""Code fingerprinting: the cache-invalidation half of the cache key.

A cached result is only reusable while the code that produced it is
unchanged, so every cache key mixes the spec's content hash with a
*code fingerprint*: a SHA-256 over the contents of every ``*.py`` file
under the ``repro`` package (sorted by relative path, so the walk order
of the filesystem cannot matter).  Editing any source file — even one
the spec never imports — changes the fingerprint and invalidates the
whole cache.  That is deliberately coarse: correctness first; a stale
hit is a silent wrong answer, a spurious miss merely re-runs.

Tests pass explicit ``roots`` to fingerprint a sandbox tree instead of
the live package.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Sequence


def code_fingerprint(
    roots: Optional[Sequence[str | Path]] = None,
) -> str:
    """Hex SHA-256 over all ``*.py`` files under ``roots``.

    Defaults to the installed ``repro`` package directory.  The digest
    covers each file's root-relative POSIX path and its raw bytes, so
    renames, additions, deletions, and edits all change it.
    """
    if roots is None:
        import repro

        roots = [Path(repro.__file__).parent]
    digest = hashlib.sha256()
    for root in roots:
        root = Path(root)
        files = sorted(
            p for p in root.rglob("*.py") if "__pycache__" not in p.parts
        )
        for path in files:
            rel = path.relative_to(root).as_posix()
            digest.update(rel.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()
