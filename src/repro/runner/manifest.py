"""JSONL run manifests: one append-only record stream per run.

A manifest is the durable narration of a run: a ``run`` header (code
fingerprint, worker count, spec count), one ``spec`` line per outcome
in completion order (each tagged with its submission ``index`` so
loaders can restore submission order), and a closing ``summary`` line.
Lines are flushed as they happen, so a killed run still leaves a
readable prefix; :func:`load_manifest` tolerates a torn final line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.errors import ConfigurationError

MANIFEST_SCHEMA = 1


@dataclass
class Manifest:
    """A parsed manifest: header + spec entries + optional summary."""

    header: dict[str, Any]
    entries: list[dict[str, Any]] = field(default_factory=list)
    summary: Optional[dict[str, Any]] = None

    def entries_in_submission_order(self) -> list[dict[str, Any]]:
        return sorted(self.entries, key=lambda e: e.get("index", 0))


class ManifestWriter:
    """Streams manifest lines to disk as a run progresses.

    The file is truncated at open (a manifest describes exactly one
    run) and every line is flushed immediately — crash-safe by
    construction, no buffering to tear.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fp = open(self.path, "w", encoding="utf-8")

    def _write(self, record: dict[str, Any]) -> None:
        self._fp.write(json.dumps(record, sort_keys=True) + "\n")
        self._fp.flush()

    def header(
        self,
        fingerprint: str,
        workers: int,
        n_specs: int,
        **extra: Any,
    ) -> None:
        self._write(
            {
                "type": "run",
                "schema": MANIFEST_SCHEMA,
                "fingerprint": fingerprint,
                "workers": workers,
                "n_specs": n_specs,
                **extra,
            }
        )

    def spec(self, record: dict[str, Any]) -> None:
        self._write({"type": "spec", **record})

    def summary(self, record: dict[str, Any]) -> None:
        self._write({"type": "summary", **record})

    def close(self) -> None:
        if not self._fp.closed:
            self._fp.close()

    def __enter__(self) -> "ManifestWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def load_manifest(path: str | Path) -> Manifest:
    """Parse a manifest written by :class:`ManifestWriter`.

    A torn final line (from a killed run) is ignored; a torn line
    anywhere else raises, since that indicates real corruption.
    """
    header: Optional[dict[str, Any]] = None
    entries: list[dict[str, Any]] = []
    summary: Optional[dict[str, Any]] = None
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if i == len(lines) - 1:
                break  # torn tail from an interrupted run
            raise ConfigurationError(
                f"manifest {path} has a corrupt line {i + 1}: {exc}"
            ) from exc
        if record.get("type") == "run":
            header = record
        elif record.get("type") == "spec":
            entries.append(record)
        elif record.get("type") == "summary":
            summary = record
    if header is None:
        raise ConfigurationError(f"manifest {path} has no run header")
    return Manifest(header=header, entries=entries, summary=summary)
