"""The front door: regenerate the whole evaluation in one command.

Examples
--------
::

    python -m repro.runner                       # every figure, cached
    python -m repro.runner --workers 4           # same bytes, faster
    python -m repro.runner fig9 fig10 --fast     # a subset, short runs
    python -m repro.runner --with-chaos          # + the chaos campaign
    python -m repro.runner --refresh             # ignore cached results

Reports land in ``--output-dir`` (default ``reports``, or
``reports/fast`` with ``--fast``) via atomic writes; results are cached
under ``--cache-dir`` (default ``.repro-cache``) keyed by spec hash and
code fingerprint, so a warm rerun of unchanged code is pure cache hits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.checkpoint.policy import (
    GRACEFUL_EXIT_CODE,
    InterruptFlag,
)
from repro.fsutil import atomic_write_json, atomic_write_text
from repro.harness.figures import FIGURES
from repro.obs.context import Observability
from repro.runner.cache import ResultCache
from repro.runner.executor import RunReport, run_specs
from repro.runner.suite import (
    chaos_spec,
    figure_suite,
    scale_suite,
    topo_suite,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description=(
            "Parallel, cached regeneration of the IQ-Paths evaluation."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="FIGURE",
        help=(
            "figures to run (default: all); see --list for names"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list known figures and exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = inline, no isolation; default 1)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shorter runs (same structure, CI-friendly)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override every figure's canonical seed",
    )
    parser.add_argument(
        "--with-chaos",
        action="store_true",
        help="also run the canonical seeded chaos campaign",
    )
    parser.add_argument(
        "--with-scale",
        action="store_true",
        help=(
            "also run the scale suite: every workload scenario plus "
            "the baseline capacity envelope (shrunk under --fast)"
        ),
    )
    parser.add_argument(
        "--with-topo",
        action="store_true",
        help=(
            "also run the generated-topology suite: churn + capacity "
            "envelope on one preset per topology family (shrunk under "
            "--fast)"
        ),
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "where report .txt files go "
            "(default: reports, or reports/fast with --fast)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".repro-cache"),
        metavar="DIR",
        help="content-addressed result cache root (default .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached results (fresh runs are still stored back)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="per-spec timeout in seconds (default 600)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts after a crash/timeout (default 1)",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "heartbeat watchdog: terminate+retry a worker silent this "
            "long (default: disabled)"
        ),
    )
    parser.add_argument(
        "--checkpoint-root",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "enable crash-safe tasks: per-spec checkpoints under DIR, "
            "resumed across retries and across interrupted runs"
        ),
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        metavar="PATH",
        help="stream a JSONL run manifest to PATH",
    )
    parser.add_argument(
        "--summary-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run summary (counts, cache stats) as JSON",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="export the runner's obs trace as JSONL",
    )
    return parser


def _print_report(report: RunReport, cache: Optional[ResultCache]) -> None:
    for outcome in report.outcomes:
        tag = outcome.status.upper()
        line = f"[{tag:>7}] {outcome.spec.name}"
        if outcome.status == "ok":
            line += f"  ({outcome.duration_s:.1f}s"
            if outcome.attempts > 1:
                line += f", {outcome.attempts} attempts"
            line += ")"
        elif not outcome.ok:
            line += f"  {outcome.error}"
        print(line)
    total = len(report.outcomes)
    hit_rate = report.cached / total if total else 0.0
    print(
        f"{total} specs: {report.executed} executed, "
        f"{report.cached} cached ({hit_rate:.0%} hit rate), "
        f"{report.failed} failed in {report.wall_s:.1f}s "
        f"with {report.workers} worker(s)"
    )
    if cache is not None:
        print(
            f"cache: {cache.entry_count()} entries at {cache.root}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name in sorted(FIGURES):
            print(name)
        return 0

    unknown = [t for t in args.targets if t not in FIGURES]
    if unknown:
        print(
            f"unknown figure(s) {unknown}; known: {sorted(FIGURES)}",
            file=sys.stderr,
        )
        return 2

    specs = figure_suite(
        args.targets or None, fast=args.fast, seed=args.seed
    )
    if args.with_chaos:
        specs.append(chaos_spec())
    if args.with_scale:
        specs.extend(scale_suite(fast=args.fast))
    if args.with_topo:
        specs.extend(topo_suite(fast=args.fast))

    output_dir = args.output_dir
    if output_dir is None:
        output_dir = Path("reports/fast") if args.fast else Path("reports")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    obs = (
        Observability() if args.trace_out is not None else None
    )

    flag = InterruptFlag().install()
    try:
        report = run_specs(
            specs,
            workers=args.workers,
            cache=cache,
            timeout_s=args.timeout,
            retries=args.retries,
            refresh=args.refresh,
            obs=obs,
            manifest_path=(
                str(args.manifest) if args.manifest is not None else None
            ),
            hang_timeout_s=args.hang_timeout,
            checkpoint_root=(
                str(args.checkpoint_root)
                if args.checkpoint_root is not None
                else None
            ),
            interrupt=flag,
        )
    finally:
        flag.restore()

    written = 0
    for outcome in report.outcomes:
        if outcome.ok and outcome.payload is not None:
            atomic_write_text(
                output_dir / f"{outcome.spec.name}.txt",
                outcome.payload["report"],
            )
            written += 1

    _print_report(report, cache)
    if written:
        print(f"wrote {written} report(s) to {output_dir}")

    if args.summary_json is not None:
        summary = report.summary_record()
        if cache is not None:
            summary["cache_stats"] = cache.stats.to_dict()
        summary["specs"] = [
            o.manifest_record(i) for i, o in enumerate(report.outcomes)
        ]
        atomic_write_json(args.summary_json, summary)
        print(f"wrote summary to {args.summary_json}")
    if obs is not None and args.trace_out is not None:
        n = obs.trace.export_jsonl(args.trace_out)
        print(f"wrote {n} trace events to {args.trace_out}")

    if report.interrupted:
        print(
            f"interrupted ({flag.signal_name}): "
            f"{report.interrupted} spec(s) abandoned; "
            "rerun the same command to finish them",
            file=sys.stderr,
        )
        return GRACEFUL_EXIT_CODE
    return 0 if report.all_ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
