"""Built-in spec suites: the runs the repo's evaluation is made of.

:func:`figure_suite` is the declarative form of "regenerate
EXPERIMENTS.md": one :class:`RunSpec` per figure, each pinning the
canonical seed its recorded numbers were produced with, so runner
output is byte-identical to ``python -m repro.harness <figure>``.
:func:`chaos_spec` adds the canonical seeded chaos campaign, and
:func:`seed_sweep_suite` builds the multi-seed replica workload the
scaling benchmark fans out.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.harness.figures import CANONICAL_SEEDS, FIGURES
from repro.runner.spec import RunSpec, mix_seed


def figure_spec(
    name: str,
    *,
    fast: bool = False,
    seed: Optional[int] = None,
) -> RunSpec:
    """Spec for one figure; ``seed=None`` pins the canonical seed."""
    if name not in FIGURES:
        raise ConfigurationError(
            f"unknown figure {name!r}; known: {sorted(FIGURES)}"
        )
    params = {"figure": name}
    if fast:
        params["fast"] = True
    return RunSpec(
        kind="figure",
        name=name if not fast else f"{name}-fast",
        params=params,
        seed=seed if seed is not None else CANONICAL_SEEDS[name],
    )


def figure_suite(
    figures: Optional[Sequence[str]] = None,
    *,
    fast: bool = False,
    seed: Optional[int] = None,
) -> list[RunSpec]:
    """Specs for ``figures`` (default: every figure, sorted by name)."""
    names = sorted(FIGURES) if figures is None else list(figures)
    return [figure_spec(n, fast=fast, seed=seed) for n in names]


def chaos_spec(
    *, seed: int = 7, duration: float = 80.0
) -> RunSpec:
    """The canonical seeded chaos campaign as a spec."""
    return RunSpec(
        kind="chaos",
        name=f"chaos-s{seed}",
        params={"duration": duration},
        seed=seed,
    )


def seed_sweep_suite(
    figure: str = "fig4",
    *,
    n_seeds: int = 4,
    base_seed: int = 7,
    fast: bool = True,
) -> list[RunSpec]:
    """``n_seeds`` replicas of one figure under derived seeds.

    Each replica's seed is mixed from ``base_seed`` and its index, so
    the workload is deterministic but every spec (hence cache key) is
    distinct — the multi-seed sweep the scaling benchmark parallelizes.
    """
    if n_seeds < 1:
        raise ConfigurationError(f"n_seeds must be >= 1, got {n_seeds}")
    params = {"figure": figure}
    if fast:
        params["fast"] = True
    return [
        RunSpec(
            kind="figure",
            name=f"{figure}-seed{i}",
            params=params,
            seed=mix_seed(str(base_seed), figure, str(i)),
        )
        for i in range(n_seeds)
    ]
