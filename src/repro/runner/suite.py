"""Built-in spec suites: the runs the repo's evaluation is made of.

:func:`figure_suite` is the declarative form of "regenerate
EXPERIMENTS.md": one :class:`RunSpec` per figure, each pinning the
canonical seed its recorded numbers were produced with, so runner
output is byte-identical to ``python -m repro.harness <figure>``.
:func:`chaos_spec` adds the canonical seeded chaos campaign,
:func:`seed_sweep_suite` builds the multi-seed replica workload the
scaling benchmark fans out, and :func:`scale_suite` adds the
multi-tenant churn scenarios plus the baseline capacity envelope from
:mod:`repro.workload`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.harness.figures import CANONICAL_SEEDS, FIGURES
from repro.runner.spec import RunSpec, mix_seed


def figure_spec(
    name: str,
    *,
    fast: bool = False,
    seed: Optional[int] = None,
) -> RunSpec:
    """Spec for one figure; ``seed=None`` pins the canonical seed."""
    if name not in FIGURES:
        raise ConfigurationError(
            f"unknown figure {name!r}; known: {sorted(FIGURES)}"
        )
    params = {"figure": name}
    if fast:
        params["fast"] = True
    return RunSpec(
        kind="figure",
        name=name if not fast else f"{name}-fast",
        params=params,
        seed=seed if seed is not None else CANONICAL_SEEDS[name],
    )


def figure_suite(
    figures: Optional[Sequence[str]] = None,
    *,
    fast: bool = False,
    seed: Optional[int] = None,
) -> list[RunSpec]:
    """Specs for ``figures`` (default: every figure, sorted by name)."""
    names = sorted(FIGURES) if figures is None else list(figures)
    return [figure_spec(n, fast=fast, seed=seed) for n in names]


def chaos_spec(
    *, seed: int = 7, duration: float = 80.0
) -> RunSpec:
    """The canonical seeded chaos campaign as a spec."""
    return RunSpec(
        kind="chaos",
        name=f"chaos-s{seed}",
        params={"duration": duration},
        seed=seed,
    )


def _topo_slug(topology: str) -> str:
    """Filesystem/name-safe form of a topology reference."""
    return topology.replace(":", "+")


def workload_spec(
    scenario: str,
    *,
    seed: int = 0,
    rate_scale: float = 1.0,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
    topology: Optional[str] = None,
) -> RunSpec:
    """One churn scenario (see :mod:`repro.workload`) as a spec.

    ``topology`` (a :mod:`repro.topo` preset reference) joins the params
    — and so the spec's content hash — only when set, keeping every
    pre-existing Figure-8 spec hash (and its cached results) stable.
    """
    params: dict = {"scenario": scenario}
    if rate_scale != 1.0:
        params["rate_scale"] = rate_scale
    if duration is not None:
        params["duration"] = duration
    if max_sessions is not None:
        params["max_sessions"] = max_sessions
    if topology is not None:
        params["topology"] = topology
    name = f"workload-{scenario}-s{seed}"
    if topology is not None:
        name = f"workload-{scenario}-{_topo_slug(topology)}-s{seed}"
    return RunSpec(
        kind="workload",
        name=name,
        params=params,
        seed=seed,
    )


def envelope_spec(
    scenario: str,
    *,
    seed: int = 0,
    ceiling: float = 0.05,
    iterations: int = 6,
    probe_duration: float = 30.0,
    max_sessions: Optional[int] = None,
    topology: Optional[str] = None,
) -> RunSpec:
    """One capacity-envelope search as a spec."""
    params: dict = {
        "scenario": scenario,
        "ceiling": ceiling,
        "iterations": iterations,
        "probe_duration": probe_duration,
    }
    if max_sessions is not None:
        params["max_sessions"] = max_sessions
    if topology is not None:
        params["topology"] = topology
    name = f"envelope-{scenario}-s{seed}"
    if topology is not None:
        name = f"envelope-{scenario}-{_topo_slug(topology)}-s{seed}"
    return RunSpec(
        kind="envelope",
        name=name,
        params=params,
        seed=seed,
    )


def cluster_spec(
    scenario: str,
    *,
    seed: int = 0,
    shards: int = 2,
    rate_scale: float = 1.0,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
    epoch_s: float = 2.0,
    topology: Optional[str] = None,
) -> RunSpec:
    """One sharded cluster run (see :mod:`repro.cluster`) as a spec.

    ``shards`` is part of the spec (it changes wall-time telemetry and
    worker topology) but by the cluster's determinism contract it never
    changes the payload's ``checksum`` — the suite's byte-identity
    tests rely on exactly that.
    """
    params: dict = {"scenario": scenario, "shards": shards}
    if rate_scale != 1.0:
        params["rate_scale"] = rate_scale
    if duration is not None:
        params["duration"] = duration
    if max_sessions is not None:
        params["max_sessions"] = max_sessions
    if epoch_s != 2.0:
        params["epoch_s"] = epoch_s
    if topology is not None:
        params["topology"] = topology
    name = f"cluster-{scenario}-x{shards}-s{seed}"
    if topology is not None:
        name = f"cluster-{scenario}-{_topo_slug(topology)}-x{shards}-s{seed}"
    return RunSpec(
        kind="cluster",
        name=name,
        params=params,
        seed=seed,
    )


def scale_suite(*, seed: int = 0, fast: bool = False) -> list[RunSpec]:
    """The scale & capacity evaluation: every scenario + one envelope.

    ``fast`` truncates each scenario's plan and shortens the envelope
    search (fewer, shorter probes) — same structure, CI-friendly.
    """
    from repro.workload import SCENARIOS

    max_sessions = 120 if fast else None
    specs = [
        workload_spec(name, seed=seed, max_sessions=max_sessions)
        for name in sorted(SCENARIOS)
    ]
    specs.append(
        envelope_spec(
            "baseline",
            seed=seed,
            iterations=2 if fast else 6,
            probe_duration=15.0 if fast else 30.0,
            max_sessions=max_sessions,
        )
    )
    return specs


#: The topology presets (one per generator family) the topo suite and
#: CI's topo-smoke job exercise.
TOPO_SUITE_PRESETS = ("fat_tree_k4", "leaf_spine_4x8", "repetita_wan_s0")


def topo_suite(
    *,
    seed: int = 0,
    fast: bool = False,
    topologies: Optional[Sequence[str]] = None,
    traffic: Optional[Sequence[str]] = None,
) -> list[RunSpec]:
    """The generated-topology evaluation: churn + envelope per preset.

    One baseline churn run and one capacity-envelope search per
    topology reference; ``traffic`` appends ``preset:traffic`` variants
    of the *first* preset (the datacenter traffic-shift comparison).
    ``fast`` truncates plans and shortens the envelope search exactly
    like :func:`scale_suite` does.
    """
    refs = list(
        TOPO_SUITE_PRESETS if topologies is None else topologies
    )
    if traffic:
        refs += [f"{refs[0].partition(':')[0]}:{t}" for t in traffic]
    max_sessions = 120 if fast else None
    specs: list[RunSpec] = []
    for ref in refs:
        specs.append(
            workload_spec(
                "baseline",
                seed=seed,
                max_sessions=max_sessions,
                topology=ref,
            )
        )
        specs.append(
            envelope_spec(
                "baseline",
                seed=seed,
                iterations=2 if fast else 6,
                probe_duration=15.0 if fast else 30.0,
                max_sessions=max_sessions,
                topology=ref,
            )
        )
    return specs


def seed_sweep_suite(
    figure: str = "fig4",
    *,
    n_seeds: int = 4,
    base_seed: int = 7,
    fast: bool = True,
) -> list[RunSpec]:
    """``n_seeds`` replicas of one figure under derived seeds.

    Each replica's seed is mixed from ``base_seed`` and its index, so
    the workload is deterministic but every spec (hence cache key) is
    distinct — the multi-seed sweep the scaling benchmark parallelizes.
    """
    if n_seeds < 1:
        raise ConfigurationError(f"n_seeds must be >= 1, got {n_seeds}")
    params = {"figure": figure}
    if fast:
        params["fast"] = True
    return [
        RunSpec(
            kind="figure",
            name=f"{figure}-seed{i}",
            params=params,
            seed=mix_seed(str(base_seed), figure, str(i)),
        )
        for i in range(n_seeds)
    ]
