"""The run orchestrator: cache-aware parallel spec execution.

:func:`run_specs` takes a list of :class:`RunSpec` and drives them to
completion:

1. **Cache probe** — with a cache attached, every spec whose
   ``(content hash, code fingerprint)`` key hits is satisfied without
   executing anything (status ``"cached"``).
2. **Fan-out** — remaining specs run in single-use worker processes
   (at most ``workers`` alive at once), each reporting its payload back
   over a pipe.  One process per spec keeps the failure domain minimal:
   a crash or timeout kills exactly that spec's worker, never a pool.
3. **Fault handling** — a worker that dies without reporting is a
   *crash* (captured with its exit code); one that outlives
   ``timeout_s`` is terminated as a *timeout*.  Both are retried up to
   ``retries`` extra attempts.  A clean Python exception is
   deterministic and therefore **not** retried — it is reported as
   ``"failed"`` with the worker's traceback.
4. **Streaming** — progress flows through the ``repro.obs`` event bus
   (category ``runner``, virtual time = wall seconds since run start)
   and, when a manifest path is given, into a JSONL run manifest.

Determinism: tasks are pure functions of their spec (seeds are
spec-derived), so payloads — and the report bytes built from them — are
byte-identical regardless of worker count, completion order, or whether
a result came from cache.  Outcomes are returned in submission order.

``workers=0`` runs every spec inline in the calling process (no
isolation, timeouts ignored) — the debugging mode.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.runner.cache import ResultCache, payload_digest
from repro.runner.fingerprint import code_fingerprint
from repro.runner.manifest import ManifestWriter
from repro.runner.spec import RunSpec
from repro.runner.tasks import execute_spec

#: Poll interval of the orchestration loop (seconds).
_POLL_S = 0.02


@dataclass
class RunOutcome:
    """Terminal state of one spec."""

    spec: RunSpec
    #: "ok" | "cached" | "failed" | "timeout" | "crashed"
    status: str
    payload: Optional[dict[str, Any]] = None
    attempts: int = 0
    duration_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    @property
    def cached(self) -> bool:
        return self.status == "cached"

    def manifest_record(self, index: int) -> dict[str, Any]:
        record: dict[str, Any] = {
            "index": index,
            "hash": self.spec.content_hash,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "status": self.status,
            "attempts": self.attempts,
            "duration_s": round(self.duration_s, 6),
        }
        if self.payload is not None:
            record["payload_digest"] = payload_digest(self.payload)
        if self.error is not None:
            record["error"] = self.error
        return record


@dataclass
class RunReport:
    """Everything :func:`run_specs` learned about one run."""

    fingerprint: str
    workers: int
    outcomes: list[RunOutcome] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def all_ok(self) -> bool:
        return self.failed == 0

    def outcome_for(self, spec: RunSpec) -> Optional[RunOutcome]:
        target = spec.content_hash
        for outcome in self.outcomes:
            if outcome.spec.content_hash == target:
                return outcome
        return None

    def summary_record(self) -> dict[str, Any]:
        return {
            "total": len(self.outcomes),
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "wall_s": round(self.wall_s, 6),
            "workers": self.workers,
            "fingerprint": self.fingerprint,
        }


def _worker_entry(conn, spec_dict: dict[str, Any]) -> None:
    """Child-process body: execute one spec, report over the pipe."""
    try:
        spec = RunSpec.from_dict(spec_dict)
        t0 = time.perf_counter()
        payload = execute_spec(spec)
        conn.send(
            {
                "ok": True,
                "payload": payload,
                "duration_s": time.perf_counter() - t0,
            }
        )
    except BaseException as exc:  # report, never let the child re-raise
        try:
            conn.send(
                {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _mp_context():
    """Fork where available (cheap, Linux); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass
class _Job:
    index: int
    spec: RunSpec
    attempt: int  # 1-based
    proc: Any = None
    conn: Any = None
    started: float = 0.0
    deadline: Optional[float] = None


class _Orchestrator:
    """Bookkeeping shared by the fan-out loop and its completion paths."""

    def __init__(
        self,
        *,
        workers: int,
        timeout_s: Optional[float],
        retries: int,
        cache: Optional[ResultCache],
        fingerprint: str,
        obs: Observability,
        manifest: Optional[ManifestWriter],
        t0: float,
    ):
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.cache = cache
        self.fingerprint = fingerprint
        self.obs = obs
        self.manifest = manifest
        self.t0 = t0
        self.ctx = _mp_context()
        self.results: dict[int, RunOutcome] = {}

    def now(self) -> float:
        """Wall seconds since the run started (the runner's sim time)."""
        return time.perf_counter() - self.t0

    def emit(self, name: str, **fields: Any) -> None:
        self.obs.trace.emit(
            round(self.now(), 6), Category.RUNNER, name, **fields
        )

    def finish(self, job: _Job, outcome: RunOutcome) -> None:
        self.results[job.index] = outcome
        if (
            self.cache is not None
            and outcome.status == "ok"
            and outcome.payload is not None
        ):
            self.cache.put(
                outcome.spec,
                self.fingerprint,
                outcome.payload,
                outcome.duration_s,
            )
        self.emit(
            "spec_end",
            spec=outcome.spec.name,
            hash=outcome.spec.content_hash[:12],
            status=outcome.status,
            attempts=outcome.attempts,
            duration_s=round(outcome.duration_s, 6),
        )
        if self.manifest is not None:
            self.manifest.spec(outcome.manifest_record(job.index))

    def spawn(self, job: _Job) -> None:
        recv, send = self.ctx.Pipe(duplex=False)
        job.proc = self.ctx.Process(
            target=_worker_entry,
            args=(send, job.spec.to_dict()),
            daemon=True,
        )
        job.started = time.perf_counter()
        job.deadline = (
            job.started + self.timeout_s
            if self.timeout_s is not None
            else None
        )
        job.proc.start()
        send.close()  # parent keeps only the read end
        job.conn = recv
        self.emit(
            "spec_start",
            spec=job.spec.name,
            hash=job.spec.content_hash[:12],
            attempt=job.attempt,
        )

    def reap(self, job: _Job) -> None:
        """Close the pipe and join the (already finished) process."""
        try:
            job.conn.close()
        except OSError:
            pass
        job.proc.join(timeout=5.0)
        if job.proc.is_alive():  # pragma: no cover - defensive
            job.proc.kill()
            job.proc.join(timeout=5.0)

    def may_retry(self, job: _Job, status: str, error: str) -> Optional[_Job]:
        """Requeue a crashed/timed-out job if attempts remain."""
        if job.attempt <= self.retries:
            self.emit(
                "spec_retry",
                spec=job.spec.name,
                hash=job.spec.content_hash[:12],
                attempt=job.attempt,
                status=status,
                error=error,
            )
            return _Job(job.index, job.spec, job.attempt + 1)
        self.finish(
            job,
            RunOutcome(
                spec=job.spec,
                status=status,
                attempts=job.attempt,
                duration_s=time.perf_counter() - job.started,
                error=error,
            ),
        )
        return None


def _run_pool(orch: _Orchestrator, jobs: Sequence[_Job]) -> None:
    """Drive jobs to completion with at most ``orch.workers`` children."""
    pending: deque[_Job] = deque(jobs)
    running: list[_Job] = []
    while pending or running:
        while pending and len(running) < orch.workers:
            job = pending.popleft()
            orch.spawn(job)
            running.append(job)

        conns = [j.conn for j in running]
        if conns:
            connection_wait(conns, timeout=_POLL_S)

        now = time.perf_counter()
        still_running: list[_Job] = []
        for job in running:
            message = None
            done = False
            if job.conn.poll():
                try:
                    message = job.conn.recv()
                except EOFError:
                    message = None  # died before sending: a crash
                done = True
            elif not job.proc.is_alive():
                done = True  # exited without a message: a crash
            elif job.deadline is not None and now > job.deadline:
                job.proc.terminate()
                job.proc.join(timeout=5.0)
                orch.reap(job)
                retry = orch.may_retry(
                    job,
                    "timeout",
                    f"exceeded {orch.timeout_s}s timeout",
                )
                if retry is not None:
                    pending.append(retry)
                continue

            if not done:
                still_running.append(job)
                continue

            orch.reap(job)
            if message is None:
                retry = orch.may_retry(
                    job,
                    "crashed",
                    f"worker died without reporting "
                    f"(exitcode {job.proc.exitcode})",
                )
                if retry is not None:
                    pending.append(retry)
            elif message.get("ok"):
                orch.finish(
                    job,
                    RunOutcome(
                        spec=job.spec,
                        status="ok",
                        payload=message["payload"],
                        attempts=job.attempt,
                        duration_s=float(message["duration_s"]),
                    ),
                )
            else:
                # A clean exception is deterministic: no retry.
                orch.finish(
                    job,
                    RunOutcome(
                        spec=job.spec,
                        status="failed",
                        attempts=job.attempt,
                        duration_s=time.perf_counter() - job.started,
                        error=message.get("error", "unknown error"),
                    ),
                )
        running = still_running


def _run_inline(orch: _Orchestrator, jobs: Sequence[_Job]) -> None:
    """workers=0: execute specs in-process (debug mode, no isolation)."""
    for job in jobs:
        orch.emit(
            "spec_start",
            spec=job.spec.name,
            hash=job.spec.content_hash[:12],
            attempt=1,
        )
        t0 = time.perf_counter()
        try:
            payload = execute_spec(job.spec)
        except Exception as exc:
            orch.finish(
                job,
                RunOutcome(
                    spec=job.spec,
                    status="failed",
                    attempts=1,
                    duration_s=time.perf_counter() - t0,
                    error=f"{type(exc).__name__}: {exc}",
                ),
            )
        else:
            orch.finish(
                job,
                RunOutcome(
                    spec=job.spec,
                    status="ok",
                    payload=payload,
                    attempts=1,
                    duration_s=time.perf_counter() - t0,
                ),
            )


def run_specs(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    fingerprint: Optional[str] = None,
    timeout_s: Optional[float] = 600.0,
    retries: int = 1,
    refresh: bool = False,
    obs: Optional[Observability] = None,
    manifest_path: Optional[str] = None,
) -> RunReport:
    """Execute ``specs`` and return their outcomes in submission order.

    Parameters
    ----------
    workers:
        Concurrent worker processes; ``1`` is serial (still isolated),
        ``0`` runs inline in this process.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back.
    fingerprint:
        Code fingerprint for cache keying; computed from the live
        ``repro`` package when omitted.
    timeout_s:
        Per-spec wall-clock budget (``None`` disables).
    retries:
        Extra attempts after a crash or timeout (clean exceptions are
        deterministic and never retried).
    refresh:
        Ignore cache reads (results are still written back) — forces
        re-execution without discarding the cache.
    obs:
        Observability context for progress events (``runner`` category);
        disabled by default.
    manifest_path:
        When given, stream a JSONL run manifest there.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    seen: set[str] = set()
    for spec in specs:
        if spec.content_hash in seen:
            raise ConfigurationError(
                f"duplicate spec {spec.name!r} "
                f"({spec.content_hash[:12]}) in one run"
            )
        seen.add(spec.content_hash)
    if fingerprint is None:
        fingerprint = code_fingerprint()
    obs = obs if obs is not None else NULL_OBS
    t0 = time.perf_counter()

    manifest = (
        ManifestWriter(manifest_path) if manifest_path is not None else None
    )
    orch = _Orchestrator(
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        cache=cache,
        fingerprint=fingerprint,
        obs=obs,
        manifest=manifest,
        t0=t0,
    )
    try:
        if manifest is not None:
            manifest.header(
                fingerprint=fingerprint,
                workers=workers,
                n_specs=len(specs),
            )
        orch.emit(
            "run_start",
            n_specs=len(specs),
            workers=workers,
            fingerprint=fingerprint[:12],
        )

        to_execute: list[_Job] = []
        for index, spec in enumerate(specs):
            entry = None
            if cache is not None and not refresh:
                entry = cache.get(spec.content_hash, fingerprint)
            if entry is not None:
                outcome = RunOutcome(
                    spec=spec,
                    status="cached",
                    payload=entry["payload"],
                    attempts=0,
                    duration_s=0.0,
                )
                orch.results[index] = outcome
                orch.emit(
                    "cache_hit",
                    spec=spec.name,
                    hash=spec.content_hash[:12],
                )
                if manifest is not None:
                    manifest.spec(outcome.manifest_record(index))
            else:
                to_execute.append(_Job(index, spec, attempt=1))

        if to_execute:
            if workers == 0:
                _run_inline(orch, to_execute)
            else:
                _run_pool(orch, to_execute)

        report = RunReport(
            fingerprint=fingerprint,
            workers=workers,
            outcomes=[orch.results[i] for i in range(len(specs))],
            wall_s=time.perf_counter() - t0,
        )
        orch.emit("run_end", **report.summary_record())
        if manifest is not None:
            manifest.summary(report.summary_record())
        return report
    finally:
        if manifest is not None:
            manifest.close()
