"""The run orchestrator: cache-aware parallel spec execution.

:func:`run_specs` takes a list of :class:`RunSpec` and drives them to
completion:

1. **Cache probe** — with a cache attached, every spec whose
   ``(content hash, code fingerprint)`` key hits is satisfied without
   executing anything (status ``"cached"``).
2. **Fan-out** — remaining specs run in single-use worker processes
   (at most ``workers`` alive at once), each reporting its payload back
   over a pipe.  One process per spec keeps the failure domain minimal:
   a crash or timeout kills exactly that spec's worker, never a pool.
3. **Fault handling** — a worker that dies without reporting is a
   *crash* (captured with its exit code and a stderr tail); one that
   outlives ``timeout_s`` is terminated as a *timeout*; one that stops
   heartbeating for ``hang_timeout_s`` while the clock still runs is
   *hung* and goes through terminate→kill escalation (a wedged worker
   may ignore SIGTERM).  All three are retried up to ``retries`` extra
   attempts, spaced by a deterministic seeded exponential backoff.  A
   clean Python exception is deterministic and therefore **not**
   retried — it is reported as ``"failed"`` with the worker's
   traceback.
4. **Supervised resume** — with a ``checkpoint_root``, every attempt
   of a spec shares a per-spec checkpoint directory
   (``<root>/<content_hash>``); checkpoint-aware tasks (workload,
   envelope) snapshot there and a retried attempt resumes from the
   last verified snapshot instead of recomputing from scratch.
5. **Streaming** — progress flows through the ``repro.obs`` event bus
   (category ``runner``, virtual time = wall seconds since run start)
   and, when a manifest path is given, into a JSONL run manifest.

Determinism: tasks are pure functions of their spec (seeds are
spec-derived), so payloads — and the report bytes built from them — are
byte-identical regardless of worker count, completion order, crash
count, or whether a result came from cache or a checkpoint resume.
Outcomes are returned in submission order.

``workers=0`` runs every spec inline in the calling process (no
isolation, timeouts ignored) — the debugging mode.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.checkpoint.policy import InterruptFlag

from repro.errors import ConfigurationError
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.runner.cache import ResultCache, payload_digest
from repro.runner.fingerprint import code_fingerprint
from repro.runner.manifest import ManifestWriter
from repro.runner.spec import RunSpec
from repro.runner.tasks import TaskRuntime, execute_spec

#: Poll interval of the orchestration loop (seconds).
_POLL_S = 0.02

#: Minimum wall-clock spacing between heartbeat pipe messages.
_HB_THROTTLE_S = 0.2

#: Grace period after terminate() before escalating to kill().
_TERM_GRACE_S = 5.0

#: Characters of stderr preserved in manifests/errors for dead workers.
_STDERR_TAIL_CHARS = 2000


def _retry_delay(content_hash: str, attempt: int, base_s: float) -> float:
    """Deterministic exponential backoff with seeded jitter.

    ``base * 2^(attempt-1) * (1 + frac)`` where ``frac in [0, 1)`` is
    derived from the spec hash and attempt number — reproducible across
    runs (no ``random``), yet decorrelated across specs so a batch of
    crashed workers does not thundering-herd its retries.
    """
    digest = hashlib.sha256(
        f"{content_hash}:{attempt}".encode()
    ).digest()
    frac = int.from_bytes(digest[:4], "big") / 2**32
    return base_s * (2 ** (attempt - 1)) * (1.0 + frac)


def _stderr_tail(path: Optional[str]) -> Optional[str]:
    """Last ~2000 chars of a worker's captured stderr, if any."""
    if path is None:
        return None
    try:
        with open(path, "rb") as fp:
            fp.seek(0, os.SEEK_END)
            size = fp.tell()
            fp.seek(max(0, size - 2 * _STDERR_TAIL_CHARS))
            text = fp.read().decode("utf-8", errors="replace")
    except OSError:
        return None
    text = text.strip()
    if not text:
        return None
    return text[-_STDERR_TAIL_CHARS:]


@dataclass
class RunOutcome:
    """Terminal state of one spec."""

    spec: RunSpec
    #: "ok" | "cached" | "failed" | "timeout" | "crashed" | "hung"
    #: | "interrupted"
    status: str
    payload: Optional[dict[str, Any]] = None
    attempts: int = 0
    duration_s: float = 0.0
    error: Optional[str] = None
    #: Last ~2000 chars of the worker's stderr (crashed/hung/timeout).
    stderr_tail: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    @property
    def cached(self) -> bool:
        return self.status == "cached"

    def manifest_record(self, index: int) -> dict[str, Any]:
        record: dict[str, Any] = {
            "index": index,
            "hash": self.spec.content_hash,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "status": self.status,
            "attempts": self.attempts,
            "duration_s": round(self.duration_s, 6),
        }
        if self.payload is not None:
            record["payload_digest"] = payload_digest(self.payload)
        if self.error is not None:
            record["error"] = self.error
        if self.stderr_tail is not None:
            record["stderr_tail"] = self.stderr_tail
        return record


@dataclass
class RunReport:
    """Everything :func:`run_specs` learned about one run."""

    fingerprint: str
    workers: int
    outcomes: list[RunOutcome] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def failed(self) -> int:
        return sum(
            1
            for o in self.outcomes
            if not o.ok and o.status != "interrupted"
        )

    @property
    def interrupted(self) -> int:
        """Specs abandoned because the run was interrupted."""
        return sum(
            1 for o in self.outcomes if o.status == "interrupted"
        )

    @property
    def all_ok(self) -> bool:
        return self.failed == 0 and self.interrupted == 0

    def outcome_for(self, spec: RunSpec) -> Optional[RunOutcome]:
        target = spec.content_hash
        for outcome in self.outcomes:
            if outcome.spec.content_hash == target:
                return outcome
        return None

    def summary_record(self) -> dict[str, Any]:
        return {
            "total": len(self.outcomes),
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "interrupted": self.interrupted,
            "wall_s": round(self.wall_s, 6),
            "workers": self.workers,
            "fingerprint": self.fingerprint,
        }


def _worker_entry(
    conn,
    spec_dict: dict[str, Any],
    stderr_path: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
) -> None:
    """Child-process body: execute one spec, report over the pipe.

    ``stderr_path`` redirects fd 2 into a file the parent can tail
    after a crash (passed as a path, not an fd, so it works under the
    spawn start method too).  Heartbeats ride the result pipe as
    ``{"hb": ...}`` messages, throttled to one per ~200 ms.
    """
    # Under fork the child inherits the parent's signal handlers —
    # including any InterruptFlag latch, which would make the child
    # *absorb* the supervisor's SIGTERM and force every terminate()
    # through the 5 s kill-escalation grace.  Workers answer to the
    # supervisor, not to the terminal: restore default dispositions.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
    except (OSError, ValueError):  # pragma: no cover - non-main thread
        pass
    if stderr_path is not None:
        try:
            fd = os.open(
                stderr_path,
                os.O_WRONLY | os.O_CREAT | os.O_TRUNC,
                0o644,
            )
            os.dup2(fd, 2)
            os.close(fd)
        except OSError:
            pass  # stderr capture is best-effort
    last_hb = [0.0]

    def heartbeat() -> None:
        now = time.monotonic()
        if now - last_hb[0] < _HB_THROTTLE_S:
            return
        last_hb[0] = now
        try:
            conn.send({"hb": True})
        except (OSError, ValueError):
            pass

    runtime = TaskRuntime(
        checkpoint_dir=checkpoint_dir, heartbeat=heartbeat
    )
    try:
        spec = RunSpec.from_dict(spec_dict)
        t0 = time.perf_counter()
        payload = execute_spec(spec, runtime)
        conn.send(
            {
                "ok": True,
                "payload": payload,
                "duration_s": time.perf_counter() - t0,
            }
        )
    except BaseException as exc:  # report, never let the child re-raise
        try:
            conn.send(
                {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _mp_context():
    """Fork where available (cheap, Linux); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass
class _Job:
    index: int
    spec: RunSpec
    attempt: int  # 1-based
    proc: Any = None
    conn: Any = None
    started: float = 0.0
    deadline: Optional[float] = None
    #: Last heartbeat (perf_counter); equals ``started`` until one lands.
    last_hb: float = 0.0
    #: Earliest perf_counter time this (retry) job may spawn.
    not_before: float = 0.0
    stderr_path: Optional[str] = None


class _Orchestrator:
    """Bookkeeping shared by the fan-out loop and its completion paths."""

    def __init__(
        self,
        *,
        workers: int,
        timeout_s: Optional[float],
        retries: int,
        cache: Optional[ResultCache],
        fingerprint: str,
        obs: Observability,
        manifest: Optional[ManifestWriter],
        t0: float,
        hang_timeout_s: Optional[float] = None,
        checkpoint_root: Optional[str] = None,
        retry_backoff_s: float = 0.05,
        stderr_dir: Optional[str] = None,
        interrupt: Optional["InterruptFlag"] = None,
    ):
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.cache = cache
        self.fingerprint = fingerprint
        self.obs = obs
        self.manifest = manifest
        self.t0 = t0
        self.hang_timeout_s = hang_timeout_s
        self.checkpoint_root = checkpoint_root
        self.retry_backoff_s = retry_backoff_s
        self.stderr_dir = stderr_dir
        self.interrupt = interrupt
        self.ctx = _mp_context()
        self.results: dict[int, RunOutcome] = {}

    @property
    def interrupted(self) -> bool:
        return self.interrupt is not None and self.interrupt.triggered

    def abandon(self, job: _Job, *, started: bool) -> None:
        """Record a spec given up on because the run was interrupted.

        ``started`` distinguishes a worker cut down mid-attempt (the
        attempt counts) from a spec that never got to spawn.
        """
        name = (
            self.interrupt.signal_name
            if self.interrupt is not None
            else "signal"
        )
        self.finish(
            job,
            RunOutcome(
                spec=job.spec,
                status="interrupted",
                attempts=job.attempt if started else job.attempt - 1,
                error=f"run interrupted ({name})",
            ),
        )

    def checkpoint_dir_for(self, spec: RunSpec) -> Optional[str]:
        """Per-spec checkpoint directory (shared across attempts)."""
        if self.checkpoint_root is None:
            return None
        return os.path.join(self.checkpoint_root, spec.content_hash)

    def now(self) -> float:
        """Wall seconds since the run started (the runner's sim time)."""
        return time.perf_counter() - self.t0

    def emit(self, name: str, **fields: Any) -> None:
        self.obs.trace.emit(
            round(self.now(), 6), Category.RUNNER, name, **fields
        )

    def finish(self, job: _Job, outcome: RunOutcome) -> None:
        self.results[job.index] = outcome
        if (
            self.cache is not None
            and outcome.status == "ok"
            and outcome.payload is not None
        ):
            self.cache.put(
                outcome.spec,
                self.fingerprint,
                outcome.payload,
                outcome.duration_s,
            )
        self.emit(
            "spec_end",
            spec=outcome.spec.name,
            hash=outcome.spec.content_hash[:12],
            status=outcome.status,
            attempts=outcome.attempts,
            duration_s=round(outcome.duration_s, 6),
        )
        if self.manifest is not None:
            self.manifest.spec(outcome.manifest_record(job.index))

    def spawn(self, job: _Job) -> None:
        recv, send = self.ctx.Pipe(duplex=False)
        if self.stderr_dir is not None:
            job.stderr_path = os.path.join(
                self.stderr_dir, f"{job.index}-{job.attempt}.stderr"
            )
        job.proc = self.ctx.Process(
            target=_worker_entry,
            args=(
                send,
                job.spec.to_dict(),
                job.stderr_path,
                self.checkpoint_dir_for(job.spec),
            ),
            daemon=True,
        )
        job.started = time.perf_counter()
        job.last_hb = job.started
        job.deadline = (
            job.started + self.timeout_s
            if self.timeout_s is not None
            else None
        )
        job.proc.start()
        send.close()  # parent keeps only the read end
        job.conn = recv
        self.emit(
            "spec_start",
            spec=job.spec.name,
            hash=job.spec.content_hash[:12],
            attempt=job.attempt,
        )

    def terminate(self, job: _Job) -> None:
        """Stop a live worker: SIGTERM, grace period, then SIGKILL.

        A wedged worker may ignore (or have masked) SIGTERM; the
        escalation guarantees the supervisor always gets its process
        slot back.
        """
        job.proc.terminate()
        job.proc.join(timeout=_TERM_GRACE_S)
        if job.proc.is_alive():
            job.proc.kill()
            job.proc.join(timeout=_TERM_GRACE_S)

    def reap(self, job: _Job) -> None:
        """Close the pipe and join the (already finished) process."""
        try:
            job.conn.close()
        except OSError:
            pass
        job.proc.join(timeout=5.0)
        if job.proc.is_alive():  # pragma: no cover - defensive
            job.proc.kill()
            job.proc.join(timeout=5.0)

    def may_retry(self, job: _Job, status: str, error: str) -> Optional[_Job]:
        """Requeue a crashed/timed-out/hung job if attempts remain."""
        tail = _stderr_tail(job.stderr_path)
        if job.attempt <= self.retries:
            delay = _retry_delay(
                job.spec.content_hash, job.attempt, self.retry_backoff_s
            )
            self.emit(
                "spec_retry",
                spec=job.spec.name,
                hash=job.spec.content_hash[:12],
                attempt=job.attempt,
                status=status,
                error=error,
                backoff_s=round(delay, 6),
            )
            return _Job(
                job.index,
                job.spec,
                job.attempt + 1,
                not_before=time.perf_counter() + delay,
            )
        self.finish(
            job,
            RunOutcome(
                spec=job.spec,
                status=status,
                attempts=job.attempt,
                duration_s=time.perf_counter() - job.started,
                error=error,
                stderr_tail=tail,
            ),
        )
        return None


def _drain(job: _Job) -> tuple[Optional[dict], bool]:
    """Read the job's pipe: absorb heartbeats, return (final, got_final).

    Heartbeat messages update ``job.last_hb`` and are consumed; the
    first non-heartbeat message is the worker's terminal report.  A pipe
    at EOF (worker died mid-send or before sending) reports
    ``(None, True)`` — a crash for the caller to classify.
    """
    try:
        while job.conn.poll():
            message = job.conn.recv()
            if isinstance(message, dict) and message.keys() == {"hb"}:
                job.last_hb = time.perf_counter()
                continue
            return message, True
    except EOFError:
        return None, True
    return None, False


def _run_pool(orch: _Orchestrator, jobs: Sequence[_Job]) -> None:
    """Drive jobs to completion with at most ``orch.workers`` children."""
    pending: deque[_Job] = deque(jobs)
    running: list[_Job] = []
    while pending or running:
        if orch.interrupted:
            # Graceful stop: tear down live workers (their checkpoints
            # survive for the next run to resume), abandon the rest.
            for job in running:
                orch.terminate(job)
                orch.reap(job)
                orch.abandon(job, started=True)
            for job in pending:
                orch.abandon(job, started=False)
            return
        now = time.perf_counter()
        deferred: list[_Job] = []
        while pending and len(running) < orch.workers:
            job = pending.popleft()
            if job.not_before > now:
                deferred.append(job)  # backoff not elapsed yet
                continue
            orch.spawn(job)
            running.append(job)
        pending.extendleft(reversed(deferred))

        conns = [j.conn for j in running]
        if conns:
            connection_wait(conns, timeout=_POLL_S)
        else:
            time.sleep(_POLL_S)  # only backed-off retries remain

        now = time.perf_counter()
        still_running: list[_Job] = []
        for job in running:
            message, done = _drain(job)
            if not done and not job.proc.is_alive():
                # One final drain: the worker may have sent its report
                # between our read and its exit.
                message, done = _drain(job)
                done = True  # no message now means a crash
            if not done:
                if job.deadline is not None and now > job.deadline:
                    orch.terminate(job)
                    orch.reap(job)
                    retry = orch.may_retry(
                        job,
                        "timeout",
                        f"exceeded {orch.timeout_s}s timeout",
                    )
                    if retry is not None:
                        pending.append(retry)
                    continue
                if (
                    orch.hang_timeout_s is not None
                    and now - max(job.started, job.last_hb)
                    > orch.hang_timeout_s
                ):
                    silent = now - max(job.started, job.last_hb)
                    orch.terminate(job)
                    orch.reap(job)
                    retry = orch.may_retry(
                        job,
                        "hung",
                        f"no heartbeat for {silent:.1f}s "
                        f"(hang_timeout_s={orch.hang_timeout_s})",
                    )
                    if retry is not None:
                        pending.append(retry)
                    continue
                still_running.append(job)
                continue

            orch.reap(job)
            if message is None:
                retry = orch.may_retry(
                    job,
                    "crashed",
                    f"worker died without reporting "
                    f"(exitcode {job.proc.exitcode})",
                )
                if retry is not None:
                    pending.append(retry)
            elif message.get("ok"):
                orch.finish(
                    job,
                    RunOutcome(
                        spec=job.spec,
                        status="ok",
                        payload=message["payload"],
                        attempts=job.attempt,
                        duration_s=float(message["duration_s"]),
                    ),
                )
            else:
                # A clean exception is deterministic: no retry.
                orch.finish(
                    job,
                    RunOutcome(
                        spec=job.spec,
                        status="failed",
                        attempts=job.attempt,
                        duration_s=time.perf_counter() - job.started,
                        error=message.get("error", "unknown error"),
                    ),
                )
        running = still_running


def _run_inline(orch: _Orchestrator, jobs: Sequence[_Job]) -> None:
    """workers=0: execute specs in-process (debug mode, no isolation)."""
    for job in jobs:
        if orch.interrupted:
            orch.abandon(job, started=False)
            continue
        orch.emit(
            "spec_start",
            spec=job.spec.name,
            hash=job.spec.content_hash[:12],
            attempt=1,
        )
        t0 = time.perf_counter()
        runtime = TaskRuntime(
            checkpoint_dir=orch.checkpoint_dir_for(job.spec)
        )
        try:
            # Inline workers share the caller's process, so per-spec
            # spans land on the caller's profiler (pool workers are
            # separate processes and cannot).
            with orch.obs.prof.span("runner.spec"):
                payload = execute_spec(job.spec, runtime)
        except Exception as exc:
            orch.finish(
                job,
                RunOutcome(
                    spec=job.spec,
                    status="failed",
                    attempts=1,
                    duration_s=time.perf_counter() - t0,
                    error=f"{type(exc).__name__}: {exc}",
                ),
            )
        else:
            orch.finish(
                job,
                RunOutcome(
                    spec=job.spec,
                    status="ok",
                    payload=payload,
                    attempts=1,
                    duration_s=time.perf_counter() - t0,
                ),
            )


def run_specs(
    specs: Sequence[RunSpec],
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    fingerprint: Optional[str] = None,
    timeout_s: Optional[float] = 600.0,
    retries: int = 1,
    refresh: bool = False,
    obs: Optional[Observability] = None,
    manifest_path: Optional[str] = None,
    hang_timeout_s: Optional[float] = None,
    checkpoint_root: Optional[str] = None,
    retry_backoff_s: float = 0.05,
    interrupt: Optional["InterruptFlag"] = None,
) -> RunReport:
    """Execute ``specs`` and return their outcomes in submission order.

    Parameters
    ----------
    workers:
        Concurrent worker processes; ``1`` is serial (still isolated),
        ``0`` runs inline in this process.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back.
    fingerprint:
        Code fingerprint for cache keying; computed from the live
        ``repro`` package when omitted.
    timeout_s:
        Per-spec wall-clock budget (``None`` disables).
    retries:
        Extra attempts after a crash, timeout, or hang (clean
        exceptions are deterministic and never retried).
    refresh:
        Ignore cache reads (results are still written back) — forces
        re-execution without discarding the cache.
    obs:
        Observability context for progress events (``runner`` category);
        disabled by default.
    manifest_path:
        When given, stream a JSONL run manifest there.
    hang_timeout_s:
        Heartbeat watchdog: a worker silent (no heartbeat) this long is
        declared *hung* and terminate→kill escalated, then retried.
        Distinct from ``timeout_s``: a slow-but-heartbeating worker is
        never hung.  ``None`` disables the watchdog.
    checkpoint_root:
        Directory under which each spec gets a checkpoint slot keyed by
        content hash; checkpoint-aware tasks resume there across retry
        attempts.  ``None`` disables task checkpointing.
    retry_backoff_s:
        Base of the deterministic exponential retry backoff (seeded
        jitter; doubles per attempt).
    interrupt:
        Optional :class:`~repro.checkpoint.policy.InterruptFlag`.  When
        it trips, the run stops gracefully: live workers are
        terminate→kill escalated, unfinished specs report status
        ``"interrupted"``, and the manifest still gets its summary —
        checkpoints survive, so rerunning resumes the abandoned work.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if retry_backoff_s < 0:
        raise ConfigurationError(
            f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
        )
    if hang_timeout_s is not None and hang_timeout_s <= 0:
        raise ConfigurationError(
            f"hang_timeout_s must be positive, got {hang_timeout_s}"
        )
    seen: set[str] = set()
    for spec in specs:
        if spec.content_hash in seen:
            raise ConfigurationError(
                f"duplicate spec {spec.name!r} "
                f"({spec.content_hash[:12]}) in one run"
            )
        seen.add(spec.content_hash)
    if fingerprint is None:
        fingerprint = code_fingerprint()
    obs = obs if obs is not None else NULL_OBS
    t0 = time.perf_counter()

    manifest = (
        ManifestWriter(manifest_path) if manifest_path is not None else None
    )
    stderr_tmp = (
        tempfile.TemporaryDirectory(prefix="repro-runner-stderr-")
        if workers > 0
        else None
    )
    orch = _Orchestrator(
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        cache=cache,
        fingerprint=fingerprint,
        obs=obs,
        manifest=manifest,
        t0=t0,
        hang_timeout_s=hang_timeout_s,
        checkpoint_root=checkpoint_root,
        retry_backoff_s=retry_backoff_s,
        stderr_dir=stderr_tmp.name if stderr_tmp is not None else None,
        interrupt=interrupt,
    )
    try:
        if manifest is not None:
            manifest.header(
                fingerprint=fingerprint,
                workers=workers,
                n_specs=len(specs),
            )
        orch.emit(
            "run_start",
            n_specs=len(specs),
            workers=workers,
            fingerprint=fingerprint[:12],
        )

        to_execute: list[_Job] = []
        for index, spec in enumerate(specs):
            entry = None
            if cache is not None and not refresh:
                entry = cache.get(spec.content_hash, fingerprint)
            if entry is not None:
                outcome = RunOutcome(
                    spec=spec,
                    status="cached",
                    payload=entry["payload"],
                    attempts=0,
                    duration_s=0.0,
                )
                orch.results[index] = outcome
                orch.emit(
                    "cache_hit",
                    spec=spec.name,
                    hash=spec.content_hash[:12],
                )
                if manifest is not None:
                    manifest.spec(outcome.manifest_record(index))
            else:
                to_execute.append(_Job(index, spec, attempt=1))

        if to_execute:
            drive = _run_inline if workers == 0 else _run_pool
            with obs.prof.span("runner.run"):
                drive(orch, to_execute)

        report = RunReport(
            fingerprint=fingerprint,
            workers=workers,
            outcomes=[orch.results[i] for i in range(len(specs))],
            wall_s=time.perf_counter() - t0,
        )
        orch.emit("run_end", **report.summary_record())
        if manifest is not None:
            manifest.summary(report.summary_record())
        return report
    finally:
        if manifest is not None:
            manifest.close()
        if stderr_tmp is not None:
            stderr_tmp.cleanup()
