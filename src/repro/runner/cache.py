"""Content-addressed on-disk result cache.

Entries are keyed by ``sha256(spec_hash | code_fingerprint)`` and laid
out as ``<root>/<key[:2]>/<key>.json`` (a two-level fan-out so one
directory never accumulates every entry).  An entry stores the task's
JSON payload plus enough metadata to audit it: the spec that produced
it, both hash inputs, the payload digest, and the execution duration.

Invalidation is purely by key: change a param and the spec hash moves;
change any source file and the fingerprint moves; either way the lookup
misses and the spec re-executes.  Nothing is ever rewritten in place —
entries are immutable and written atomically, so concurrent runners
sharing a cache directory can only ever race to write *identical
bytes*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.fsutil import atomic_write_text
from repro.runner.spec import RunSpec, canonical_json, stable_digest

#: Bumped when the entry layout changes; mismatched entries read as
#: misses instead of being misinterpreted.
CACHE_SCHEMA = 1


def payload_digest(payload: Any) -> str:
    """Hex SHA-256 of a payload's canonical JSON (byte-identity probe)."""
    return stable_digest(canonical_json(payload))


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }


@dataclass
class ResultCache:
    """Content-addressed store of task payloads under ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(spec_hash: str, fingerprint: str) -> str:
        return stable_digest(f"{spec_hash}|{fingerprint}")

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(
        self, spec_hash: str, fingerprint: str
    ) -> Optional[dict[str, Any]]:
        """The cached entry record, or ``None`` on miss.

        A corrupt or schema-mismatched file counts as a miss (the entry
        will simply be rewritten); the cache never raises on bad data.
        """
        path = self.path_for(self.key_for(spec_hash, fingerprint))
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != CACHE_SCHEMA
            or record.get("spec_hash") != spec_hash
            or record.get("fingerprint") != fingerprint
            or record.get("payload_digest")
            != payload_digest(record.get("payload"))
        ):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(
        self,
        spec: RunSpec,
        fingerprint: str,
        payload: Any,
        duration_s: float,
    ) -> Path:
        """Store one result atomically; returns the entry path."""
        spec_hash = spec.content_hash
        key = self.key_for(spec_hash, fingerprint)
        record = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "spec": spec.to_dict(),
            "spec_hash": spec_hash,
            "fingerprint": fingerprint,
            "payload": payload,
            "payload_digest": payload_digest(payload),
            "duration_s": round(float(duration_s), 6),
        }
        path = self.path_for(key)
        atomic_write_text(
            path, json.dumps(record, sort_keys=True, indent=2) + "\n"
        )
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def purge(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
