"""IQ-Paths reproduction: predictable data streams across dynamic overlays.

This package reproduces the system described in

    Zhongtang Cai, Vibhore Kumar, Karsten Schwan.
    "IQ-Paths: Predictably High Performance Data Streams across Dynamic
    Network Overlays." HPDC 2006.

Top-level structure:

``repro.sim``
    Deterministic discrete-event simulation engine and seeded RNG streams.
``repro.traces``
    Synthetic bandwidth / cross-traffic trace generators (NLANR-like).
``repro.network``
    Overlay network substrate: links, topologies, paths, the emulated
    Figure-8 testbed.
``repro.transport``
    Packetization and per-path send services with blocking and backoff.
``repro.monitoring``
    Online bandwidth sampling, sliding-window CDFs, predictors.
``repro.core``
    The paper's contribution: statistical guarantees (Lemmas 1 and 2),
    utility specs, admission control, resource mapping, scheduling
    vectors, and the PGOS scheduler.
``repro.baselines``
    WFQ, MSFQ, OptSched, and mean-prediction schedulers.
``repro.apps``
    SmartPointer, GridFTP, and layered-video application models.
``repro.harness``
    Experiment definitions for every figure in the paper's evaluation.
"""

from repro._version import __version__
from repro.core.spec import StreamSpec, WindowConstraint
from repro.core.pgos import PGOSScheduler
from repro.core.guarantees import probabilistic_guarantee, violation_bound
from repro.monitoring.cdf import EmpiricalCDF, SlidingWindowCDF
from repro.monitoring.predictors import PercentilePredictor

__all__ = [
    "__version__",
    "StreamSpec",
    "WindowConstraint",
    "PGOSScheduler",
    "probabilistic_guarantee",
    "violation_bound",
    "EmpiricalCDF",
    "SlidingWindowCDF",
    "PercentilePredictor",
]
