"""Package version, kept separate so modules can import it cheaply."""

__version__ = "1.0.0"
