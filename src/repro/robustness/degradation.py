"""Graceful-degradation policy for a degraded or partitioned overlay.

When path failures shrink the usable overlay, the full workload may no
longer be admittable at its requested guarantees.  The paper's admission
upcall ("reduce its bandwidth requirement, e.g. from 95% to 90%")
prescribes the renegotiation direction; this module turns it into an
automatic, ordered shedding policy:

1. **Shed elastic streams first.**  While any path is quarantined, the
   best-effort/elastic streams are paused so the surviving capacity (and
   the recovery probe traffic) is isolated for the guaranteed streams.
2. **Downgrade guarantees before dropping streams.**  A guaranteed
   stream that no longer fits is re-offered at the probability the
   overlay *can* deliver (the admission controller's renegotiation
   hint); a stream that fails even that is converted to elastic
   best-effort service — it keeps flowing, it just loses its guarantee.
3. **Never drop.**  Streams stay open throughout; the plan only changes
   *how* they are served.

The policy is pure: :func:`plan_degradation` maps the open stream set
and the usable paths' bandwidth CDFs to a :class:`DegradationPlan`;
:class:`repro.middleware.service.IQPathsService` applies and reverses
plans as path health changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

from repro.core.admission import AdmissionController
from repro.core.spec import StreamSpec
from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF

#: Downgraded probabilities are clamped into this band.
MIN_PROBABILITY = 0.05
MAX_PROBABILITY = 0.995

#: Without a renegotiation hint, each downgrade multiplies P by this.
FALLBACK_DOWNGRADE = 0.8


class DegradationLevel(enum.IntEnum):
    """How far the service has stepped down from full guarantees."""

    NORMAL = 0
    SHED_ELASTIC = 1
    DOWNGRADED = 2


@dataclass(frozen=True)
class DegradationPlan:
    """The serving plan for the current overlay condition.

    Attributes
    ----------
    level:
        The rung of the degradation ladder the plan sits on.
    serve:
        The specs to keep in the scheduler, with any downgrades applied.
    shed:
        Names of elastic streams paused (not scheduled at all).
    downgraded:
        Per downgraded stream, its new probability — ``None`` means the
        guarantee was stripped and the stream rides as elastic
        best-effort.
    notes:
        Human-readable log of every decision the planner took.
    """

    level: DegradationLevel
    serve: tuple[StreamSpec, ...]
    shed: tuple[str, ...] = ()
    downgraded: Mapping[str, Optional[float]] = None
    notes: tuple[str, ...] = ()

    def __post_init__(self):
        if self.downgraded is None:
            object.__setattr__(self, "downgraded", {})

    def spec_for(self, name: str) -> Optional[StreamSpec]:
        """The (possibly downgraded) spec the plan serves, or ``None`` if shed."""
        for spec in self.serve:
            if spec.name == name:
                return spec
        return None


def _demote_to_elastic(spec: StreamSpec) -> StreamSpec:
    """Strip a stream's guarantee: serve it as elastic best-effort."""
    return replace(
        spec,
        probability=None,
        max_violation_rate=None,
        elastic=True,
        nominal_mbps=spec.nominal_mbps or spec.required_mbps,
    )


def plan_degradation(
    specs: Sequence[StreamSpec],
    cdfs: Mapping[str, EmpiricalCDF],
    tw: float,
    quarantine_active: bool = False,
    admission: Optional[AdmissionController] = None,
) -> DegradationPlan:
    """Plan how to serve ``specs`` over the paths described by ``cdfs``.

    Parameters
    ----------
    specs:
        The open streams at their *original* (requested) specifications.
    cdfs:
        Bandwidth CDFs of the currently usable (non-quarantined) paths.
    tw:
        Scheduling-window length for admission mapping.
    quarantine_active:
        Whether any path is currently quarantined.  While true, elastic
        streams are shed even if the guarantees still fit — the freed
        capacity isolates the guaranteed streams and the recovery probes.
    admission:
        Admission controller to reuse (a fresh one per call otherwise).
    """
    if not cdfs:
        raise ConfigurationError("at least one usable path CDF is required")
    admission = admission or AdmissionController(tw=tw)
    notes: list[str] = []
    guaranteed = [
        s for s in specs
        if s.guaranteed or s.max_violation_rate is not None
    ]
    elastic_only = [
        s for s in specs
        if not (s.guaranteed or s.max_violation_rate is not None)
    ]

    decision = admission.try_admit(list(specs), cdfs)
    if decision.admitted and not quarantine_active:
        return DegradationPlan(
            level=DegradationLevel.NORMAL, serve=tuple(specs)
        )

    # Rung 1: shed elastic streams (recovery isolation / infeasibility).
    shed = tuple(s.name for s in elastic_only)
    if shed:
        notes.append(f"shed elastic: {', '.join(shed)}")
    if decision.admitted:
        return DegradationPlan(
            level=DegradationLevel.SHED_ELASTIC,
            serve=tuple(guaranteed),
            shed=shed,
            notes=tuple(notes),
        )

    # Rung 2: downgrade guarantees until the set fits.  First rejection
    # lowers the stream to the overlay's renegotiation hint; a second
    # rejection strips the guarantee entirely (elastic best-effort).
    current = {s.name: s for s in guaranteed}
    downgraded: dict[str, Optional[float]] = {}
    rejections: dict[str, int] = {}
    for _ in range(2 * len(guaranteed) + 1):
        verdict = admission.try_admit(list(current.values()), cdfs)
        if verdict.admitted:
            break
        name = verdict.rejected_stream
        spec = current[name]
        rejections[name] = rejections.get(name, 0) + 1
        hint = verdict.suggested_probability
        if (
            rejections[name] > 1
            or spec.probability is None  # violation-bound: no P to lower
            or (hint is not None and hint < MIN_PROBABILITY)
        ):
            current[name] = _demote_to_elastic(spec)
            downgraded[name] = None
            notes.append(f"stripped guarantee of {name!r} (best-effort)")
        else:
            if hint is not None and hint < spec.probability:
                new_p = hint
            else:
                new_p = spec.probability * FALLBACK_DOWNGRADE
            new_p = min(max(new_p, MIN_PROBABILITY), MAX_PROBABILITY)
            current[name] = replace(spec, probability=new_p)
            downgraded[name] = new_p
            notes.append(
                f"downgraded {name!r}: P {spec.probability:.3f} -> "
                f"{new_p:.3f}"
            )
    return DegradationPlan(
        level=DegradationLevel.DOWNGRADED,
        serve=tuple(current[s.name] for s in guaranteed),
        shed=shed,
        downgraded=downgraded,
        notes=tuple(notes),
    )
