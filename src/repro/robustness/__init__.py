"""Runtime fault tolerance: path health, quarantine, graceful degradation.

The paper's key future-work direction — detecting path failures online,
isolating recovery traffic, and re-routing guaranteed streams — lives
here:

* :mod:`repro.robustness.health` — per-path health state machines
  (``HEALTHY -> DEGRADED -> SUSPECT -> FAILED -> RECOVERING``) with
  hysteresis, driven by probe timeouts, loss spikes, bandwidth collapse
  and the KS-shift trigger; re-admission of a failed path is gated on
  exponential backoff plus probe-confirmed recovery.
* :mod:`repro.robustness.degradation` — the graceful-degradation ladder:
  shed elastic streams first, downgrade guarantee probabilities before
  dropping a stream, never drop.

Dynamic fault *schedules* (flapping, correlated outages, monitor
blackouts, seeded campaigns) live in :mod:`repro.network.faults`; the
chaos-campaign runner that sweeps them and reports time-to-detect /
time-to-recover lives in :mod:`repro.harness.chaos`.
"""

from repro.robustness.health import (
    HealthThresholds,
    HealthTracker,
    HealthTransition,
    PathHealth,
    PathHealthMachine,
)
from repro.robustness.degradation import (
    DegradationLevel,
    DegradationPlan,
    plan_degradation,
)

__all__ = [
    "PathHealth",
    "PathHealthMachine",
    "HealthThresholds",
    "HealthTracker",
    "HealthTransition",
    "DegradationLevel",
    "DegradationPlan",
    "plan_degradation",
]
