"""Per-path health state machines with hysteresis and backoff-gated probing.

The paper names runtime fault tolerance — detecting path failures online
and re-routing guaranteed streams — as its key future-work direction.
This module supplies the detection half: each overlay path carries a
five-state health machine

    HEALTHY -> DEGRADED -> SUSPECT -> FAILED -> RECOVERING -> HEALTHY

driven by the signals the monitoring stack already produces every
interval: the observed available bandwidth (compared against a
slowly-adapting healthy baseline), loss-rate spikes, probe timeouts
(missing observations, e.g. during a monitor blackout), and the PGOS
KS-shift trigger.

Hysteresis keeps flapping links from thrashing the mapping: every
downward hop needs several *consecutive* bad windows, every upward hop
several consecutive good ones, and a path that reaches ``FAILED`` is
quarantined behind :class:`repro.transport.backoff.ExponentialBackoff` —
it only re-enters service after the backoff gate opens *and* a probation
period of clean probe observations (``RECOVERING``) confirms the
recovery.  A failed probe sends the path straight back to ``FAILED``
with a doubled gate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.transport.backoff import ExponentialBackoff


class PathHealth(enum.Enum):
    """The five health states of one overlay path."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    SUSPECT = "suspect"
    FAILED = "failed"
    RECOVERING = "recovering"


#: Downward escalation ladder (hysteresis applies per hop).
_DOWN = {
    PathHealth.HEALTHY: PathHealth.DEGRADED,
    PathHealth.DEGRADED: PathHealth.SUSPECT,
    PathHealth.SUSPECT: PathHealth.FAILED,
}

#: Upward recovery ladder for the non-quarantined states.
_UP = {
    PathHealth.DEGRADED: PathHealth.HEALTHY,
    PathHealth.SUSPECT: PathHealth.DEGRADED,
}


class _Signal(enum.Enum):
    OK = 0
    DEGRADE = 1
    FAIL = 2


@dataclass(frozen=True)
class HealthThresholds:
    """Tuning knobs of the health machine.

    Attributes
    ----------
    degraded_ratio:
        Observed bandwidth below this fraction of the healthy baseline is
        a *degrade* signal.
    failed_ratio:
        Bandwidth below this fraction of the baseline is a *fail* signal
        (a collapse, not mere congestion).
    loss_spike:
        Loss rate at or above this is a fail signal.
    degrade_after:
        Consecutive bad windows before ``HEALTHY`` steps down.
    fail_after:
        Consecutive fail windows per further downward hop
        (``DEGRADED -> SUSPECT -> FAILED``).
    recover_after:
        Consecutive good windows per upward hop while not quarantined.
    probe_confirm:
        Consecutive good probe windows that ``RECOVERING`` needs before
        the path is re-admitted as ``HEALTHY``.
    backoff_base, backoff_max:
        Quarantine gate: the first trip to ``FAILED`` blocks re-probing
        for ``backoff_base`` seconds, doubling per re-failure up to
        ``backoff_max``.
    baseline_alpha:
        EWMA step of the healthy-bandwidth baseline (only updated on good
        windows, so the baseline does not chase a fault downward).
    """

    degraded_ratio: float = 0.5
    failed_ratio: float = 0.1
    loss_spike: float = 0.3
    degrade_after: int = 3
    fail_after: int = 3
    recover_after: int = 5
    probe_confirm: int = 3
    backoff_base: float = 2.0
    backoff_max: float = 30.0
    baseline_alpha: float = 0.05

    def __post_init__(self):
        if not 0.0 < self.failed_ratio < self.degraded_ratio < 1.0:
            raise ConfigurationError(
                "need 0 < failed_ratio < degraded_ratio < 1, got "
                f"{self.failed_ratio}, {self.degraded_ratio}"
            )
        if not 0.0 < self.loss_spike <= 1.0:
            raise ConfigurationError(
                f"loss_spike must be in (0, 1], got {self.loss_spike}"
            )
        for name in ("degrade_after", "fail_after", "recover_after",
                     "probe_confirm"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.backoff_base <= 0 or self.backoff_max < self.backoff_base:
            raise ConfigurationError(
                f"need 0 < backoff_base <= backoff_max, got "
                f"{self.backoff_base}, {self.backoff_max}"
            )
        if not 0.0 < self.baseline_alpha <= 1.0:
            raise ConfigurationError(
                f"baseline_alpha must be in (0, 1], got {self.baseline_alpha}"
            )


@dataclass(frozen=True)
class HealthTransition:
    """One state change of one path, with its trigger."""

    time: float
    path: str
    old: PathHealth
    new: PathHealth
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"t={self.time:.1f}s {self.path}: "
            f"{self.old.value} -> {self.new.value} ({self.reason})"
        )


class PathHealthMachine:
    """The health state machine of a single overlay path.

    Feed it one observation per monitoring interval via :meth:`update`;
    it returns the transitions that fired (at most two: the backoff gate
    opening plus a probe verdict).
    """

    def __init__(
        self,
        path: str,
        thresholds: Optional[HealthThresholds] = None,
    ):
        if not path:
            raise ConfigurationError("path name must be non-empty")
        self.path = path
        self.thresholds = thresholds or HealthThresholds()
        self.state = PathHealth.HEALTHY
        self.backoff = ExponentialBackoff(
            base_delay=self.thresholds.backoff_base,
            factor=2.0,
            max_delay=self.thresholds.backoff_max,
        )
        self._baseline: Optional[float] = None
        self._bad = 0
        self._good = 0
        self._blocked_until = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def baseline_mbps(self) -> Optional[float]:
        """The healthy-bandwidth reference (``None`` before any sample)."""
        return self._baseline

    @property
    def quarantined(self) -> bool:
        """Whether guaranteed traffic must stay off this path."""
        return self.state in (PathHealth.FAILED, PathHealth.RECOVERING)

    @property
    def blocked_until(self) -> float:
        """When the current quarantine's backoff gate opens."""
        return self._blocked_until

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the machine's mutable state."""
        return {
            "state": self.state.value,
            "backoff": self.backoff.state_dict(),
            "baseline": self._baseline,
            "bad": self._bad,
            "good": self._good,
            "blocked_until": self._blocked_until,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.state = PathHealth(state["state"])
        self.backoff.load_state_dict(state["backoff"])
        baseline = state["baseline"]
        self._baseline = None if baseline is None else float(baseline)
        self._bad = int(state["bad"])
        self._good = int(state["good"])
        self._blocked_until = float(state["blocked_until"])

    # ------------------------------------------------------------------
    # the machine
    # ------------------------------------------------------------------
    def _classify(
        self, bandwidth: Optional[float], loss: float, ks_shift: bool
    ) -> tuple[_Signal, str]:
        th = self.thresholds
        if bandwidth is None:
            return _Signal.FAIL, "probe timeout"
        if loss >= th.loss_spike:
            return _Signal.FAIL, f"loss spike {loss:.2f}"
        if self._baseline is None:
            self._baseline = bandwidth
            return _Signal.OK, "first sample"
        if bandwidth <= th.failed_ratio * self._baseline:
            return _Signal.FAIL, (
                f"bandwidth collapse {bandwidth:.1f} of "
                f"{self._baseline:.1f} Mbps baseline"
            )
        if bandwidth <= th.degraded_ratio * self._baseline:
            return _Signal.DEGRADE, (
                f"bandwidth {bandwidth:.1f} below "
                f"{th.degraded_ratio:.0%} of baseline"
            )
        if ks_shift:
            return _Signal.DEGRADE, "KS distribution shift"
        return _Signal.OK, "ok"

    def _move(
        self, now: float, new: PathHealth, reason: str
    ) -> HealthTransition:
        transition = HealthTransition(
            time=now, path=self.path, old=self.state, new=new, reason=reason
        )
        self.state = new
        self._bad = 0
        self._good = 0
        return transition

    def update(
        self,
        now: float,
        bandwidth: Optional[float],
        loss: float = 0.0,
        ks_shift: bool = False,
    ) -> list[HealthTransition]:
        """Advance one monitoring interval; returns fired transitions.

        ``bandwidth=None`` means the interval produced no observation
        (probe timeout / monitor blackout) — a fail signal.
        """
        th = self.thresholds
        transitions: list[HealthTransition] = []
        if self.state is PathHealth.FAILED:
            if now < self._blocked_until:
                return transitions  # quarantined: wait out the backoff gate
            transitions.append(
                self._move(
                    now, PathHealth.RECOVERING, "backoff elapsed; probing"
                )
            )
        signal, reason = self._classify(bandwidth, loss, ks_shift)
        if signal is _Signal.OK and bandwidth is not None:
            # Track the healthy level only on good windows so the
            # baseline never chases a fault downward.
            if self._baseline is not None:
                alpha = th.baseline_alpha
                self._baseline += alpha * (bandwidth - self._baseline)

        if self.state is PathHealth.RECOVERING:
            if signal is _Signal.OK:
                self._good += 1
                if self._good >= th.probe_confirm:
                    self.backoff.reset()
                    transitions.append(
                        self._move(
                            now, PathHealth.HEALTHY, "probe confirmed recovery"
                        )
                    )
            elif signal is _Signal.FAIL:
                self._blocked_until = now + self.backoff.next_delay()
                transitions.append(
                    self._move(
                        now, PathHealth.FAILED, f"probe failed: {reason}"
                    )
                )
            else:
                # Soft evidence (e.g. a KS shift while the monitor window
                # still holds fault-era samples) stalls the probe count
                # but does not re-fail the path.
                self._good = 0
            return transitions

        if signal is _Signal.OK:
            self._bad = 0
            self._good += 1
            up = _UP.get(self.state)
            if up is not None and self._good >= th.recover_after:
                transitions.append(self._move(now, up, "sustained recovery"))
        elif signal is _Signal.FAIL:
            self._good = 0
            self._bad += 1
            needed = (
                th.degrade_after
                if self.state is PathHealth.HEALTHY
                else th.fail_after
            )
            if self._bad >= needed:
                down = _DOWN[self.state]
                if down is PathHealth.FAILED:
                    self._blocked_until = now + self.backoff.next_delay()
                transitions.append(self._move(now, down, reason))
        else:  # DEGRADE: evidence against recovery, not enough to escalate
            self._good = 0
            if self.state is PathHealth.HEALTHY:
                self._bad += 1
                if self._bad >= th.degrade_after:
                    transitions.append(
                        self._move(now, PathHealth.DEGRADED, reason)
                    )
        return transitions


class HealthTracker:
    """The health machines of a whole path set, plus the transition log.

    The middleware feeds it one batch of per-path observations per
    interval; consumers read :meth:`quarantined` to keep guaranteed
    traffic off failed/probing paths and :attr:`transitions` to compute
    detection/recovery metrics.
    """

    def __init__(
        self,
        path_names: Sequence[str],
        thresholds: Optional[HealthThresholds] = None,
        obs: Optional[Observability] = None,
    ):
        if not path_names:
            raise ConfigurationError("tracker needs at least one path")
        self.thresholds = thresholds or HealthThresholds()
        self.machines = {
            p: PathHealthMachine(p, self.thresholds) for p in path_names
        }
        self.transitions: list[HealthTransition] = []
        self._obs = obs if obs is not None else NULL_OBS

    def bind_observability(self, obs: Observability) -> None:
        """Attach a per-run observability context."""
        self._obs = obs

    def update(
        self,
        now: float,
        bandwidth: Mapping[str, Optional[float]],
        loss: Optional[Mapping[str, float]] = None,
        ks_shift: Optional[Mapping[str, bool]] = None,
    ) -> list[HealthTransition]:
        """Feed one interval's observations; returns fired transitions.

        Paths missing from ``bandwidth`` (or mapped to ``None``) count as
        probe timeouts.
        """
        fired: list[HealthTransition] = []
        for path, machine in self.machines.items():
            fired.extend(
                machine.update(
                    now,
                    bandwidth.get(path),
                    loss=(loss or {}).get(path, 0.0),
                    ks_shift=(ks_shift or {}).get(path, False),
                )
            )
        self.transitions.extend(fired)
        if fired and self._obs.enabled:
            metrics = self._obs.metrics
            for tr in fired:
                metrics.counter("health.transitions").inc()
                if tr.new is PathHealth.FAILED:
                    metrics.counter("health.failures").inc()
                elif tr.new is PathHealth.HEALTHY:
                    metrics.counter("health.recoveries").inc()
                self._obs.trace.emit(
                    tr.time,
                    Category.HEALTH,
                    "transition",
                    path=tr.path,
                    old=tr.old.value,
                    new=tr.new.value,
                    reason=tr.reason,
                )
            metrics.gauge("health.quarantined_paths").set(
                len(self.quarantined())
            )
        return fired

    def state(self, path: str) -> PathHealth:
        """Current health of one path."""
        machine = self.machines.get(path)
        if machine is None:
            raise ConfigurationError(f"unknown path {path!r}")
        return machine.state

    def states(self) -> dict[str, PathHealth]:
        """Current health of every path."""
        return {p: m.state for p, m in self.machines.items()}

    def quarantined(self) -> frozenset[str]:
        """Paths guaranteed traffic must avoid (FAILED or RECOVERING)."""
        return frozenset(
            p for p, m in self.machines.items() if m.quarantined
        )

    def usable(self) -> list[str]:
        """Paths eligible for the guarantee mapping, in tracker order."""
        return [p for p, m in self.machines.items() if not m.quarantined]

    def all_healthy(self) -> bool:
        """Whether every path is back in the ``HEALTHY`` state."""
        return all(
            m.state is PathHealth.HEALTHY for m in self.machines.values()
        )

    def transitions_for(self, paths: Iterable[str]) -> list[HealthTransition]:
        """The transition log filtered to the given paths."""
        wanted = set(paths)
        return [t for t in self.transitions if t.path in wanted]

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot: every machine plus the log."""
        return {
            "machines": {
                p: m.state_dict() for p, m in self.machines.items()
            },
            "transitions": [
                {
                    "time": t.time,
                    "path": t.path,
                    "old": t.old.value,
                    "new": t.new.value,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        machines = state["machines"]
        if set(machines) != set(self.machines):
            raise ConfigurationError(
                f"path set mismatch: have {sorted(self.machines)}, "
                f"checkpoint has {sorted(machines)}"
            )
        for path, machine_state in machines.items():
            self.machines[path].load_state_dict(machine_state)
        self.transitions = [
            HealthTransition(
                time=float(t["time"]),
                path=t["path"],
                old=PathHealth(t["old"]),
                new=PathHealth(t["new"]),
                reason=t["reason"],
            )
            for t in state["transitions"]
        ]
