"""Per-path send services.

Each overlay path has one *path service* (Figure 6): it accepts packets
from the scheduler and delivers them at the path's currently available
rate.  Within one measurement interval the service has a byte budget
(available bandwidth times interval length); offering a packet beyond the
budget *blocks*, which the scheduler observes and reacts to by switching
paths and backing off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.transport.backoff import ExponentialBackoff
from repro.transport.packet import Packet


@dataclass
class DeliveryLog:
    """Per-stream accounting of what a service delivered.

    ``bytes_by_stream`` accumulates across the service's lifetime;
    ``interval_bytes`` is reset by :meth:`PathService.begin_interval` so the
    experiment driver can read per-interval throughput.
    """

    bytes_by_stream: dict[str, float] = field(default_factory=dict)
    interval_bytes: dict[str, float] = field(default_factory=dict)
    packets_by_stream: dict[str, int] = field(default_factory=dict)
    deadline_misses: dict[str, int] = field(default_factory=dict)

    def record(self, packet: Packet) -> None:
        s = packet.stream
        self.bytes_by_stream[s] = self.bytes_by_stream.get(s, 0.0) + packet.size
        self.interval_bytes[s] = self.interval_bytes.get(s, 0.0) + packet.size
        self.packets_by_stream[s] = self.packets_by_stream.get(s, 0) + 1
        if packet.missed_deadline:
            self.deadline_misses[s] = self.deadline_misses.get(s, 0) + 1

    def reset_interval(self) -> None:
        self.interval_bytes.clear()


class PathService:
    """Delivers packets over one overlay path at its available rate.

    The experiment driver calls :meth:`begin_interval` with the interval's
    available bandwidth; the scheduler then calls :meth:`offer` per packet.
    ``offer`` returns ``False`` when the path is blocked (budget exhausted
    or still inside a backoff window), in which case the scheduler should
    try another path.
    """

    def __init__(
        self,
        name: str,
        backoff: ExponentialBackoff | None = None,
        obs: Optional[Observability] = None,
    ):
        if not name:
            raise ConfigurationError("path service needs a non-empty name")
        self.name = name
        self.backoff = backoff or ExponentialBackoff()
        self.log = DeliveryLog()
        self._budget_bytes = 0.0
        self._now = 0.0
        self._blocked_until = 0.0
        self._obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------------
    # interval lifecycle
    # ------------------------------------------------------------------
    def begin_interval(self, now: float, budget_bytes: float) -> None:
        """Start a measurement interval with the given byte budget."""
        if budget_bytes < 0:
            raise ConfigurationError(
                f"budget must be >= 0, got {budget_bytes}"
            )
        self._now = now
        self._budget_bytes = budget_bytes
        self.log.reset_interval()

    @property
    def remaining_budget(self) -> float:
        """Bytes this service can still deliver in the current interval."""
        return self._budget_bytes

    @property
    def blocked(self) -> bool:
        """True when the service cannot accept a packet right now."""
        return self._budget_bytes <= 0 or self._now < self._blocked_until

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> bool:
        """Try to send ``packet``.  Returns ``False`` if the path blocked.

        A refusal charges the backoff policy: the service will keep
        refusing until the backoff delay elapses, preventing the scheduler
        from burning its fast path on a congested link.
        """
        if self._now < self._blocked_until:
            return False
        if packet.size > self._budget_bytes:
            self._blocked_until = self._now + self.backoff.next_delay()
            if self._obs.enabled:
                self._obs.metrics.counter("transport.offers_blocked").inc()
                self._obs.trace.emit(
                    self._now,
                    Category.TRANSPORT,
                    "path_blocked",
                    path=self.name,
                    stream_id=self._obs.stream_id(packet.stream),
                    stream=packet.stream,
                    budget_bytes=self._budget_bytes,
                    packet_size=packet.size,
                    blocked_until=self._blocked_until,
                )
            return False
        self._budget_bytes -= packet.size
        self.backoff.reset()
        self._blocked_until = 0.0
        packet.delivered_at = self._now
        packet.path = self.name
        self.log.record(packet)
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("transport.packets_delivered").inc()
            metrics.counter("transport.bytes_delivered").inc(packet.size)
            if packet.missed_deadline:
                metrics.counter("transport.deadline_misses").inc()
        return True

    def deliver_bytes(self, stream: str, nbytes: float) -> float:
        """Fluid-mode delivery: send up to ``nbytes`` of ``stream``.

        Returns the bytes actually delivered (budget-limited).  Used by the
        vectorized experiment driver, which moves fractional packet volumes
        per interval instead of walking individual packets.
        """
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        sent = min(nbytes, self._budget_bytes)
        if sent > 0:
            self._budget_bytes -= sent
            self.log.bytes_by_stream[stream] = (
                self.log.bytes_by_stream.get(stream, 0.0) + sent
            )
            self.log.interval_bytes[stream] = (
                self.log.interval_bytes.get(stream, 0.0) + sent
            )
        return sent
