"""Application-level packets.

IQ-Paths manipulates arbitrary application-level messages; the scheduler
works on fixed-size packets carved out of them.  A packet carries its
stream identity, a sequence number, and the virtual deadline assigned by
the scheduling-vector machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import DEFAULT_PACKET_SIZE


@dataclass(order=True)
class Packet:
    """One schedulable unit of a stream.

    Ordering is by ``(deadline, stream, seq)`` so packet heaps pop the
    earliest deadline first, with deterministic tie-breaking.
    """

    deadline: float
    stream: str = field(compare=True)
    seq: int = field(compare=True)
    size: int = field(default=DEFAULT_PACKET_SIZE, compare=False)
    created_at: float = field(default=0.0, compare=False)
    delivered_at: float = field(default=-1.0, compare=False)
    path: str = field(default="", compare=False)

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def delivered(self) -> bool:
        """Whether the packet has been handed to a path service."""
        return self.delivered_at >= 0.0

    @property
    def missed_deadline(self) -> bool:
        """Delivered (or still pending) past its virtual deadline."""
        return self.delivered and self.delivered_at > self.deadline
