"""A packet-level IQ-Paths streaming session on the event engine.

This is the end-to-end middleware loop at packet granularity — the
"slow-motion" counterpart of the fluid experiment driver used for the
long throughput figures:

* per scheduling window, application producers enqueue their packets with
  spread virtual deadlines (CBR streams enqueue ``x_i`` packets; elastic
  producers keep their queue topped up);
* the monitoring stack observes each path's available bandwidth and the
  PGOS mapping/vector machinery recompiles when the stream set or a CDF
  changes;
* the Figure-7 fast path dispatches the window's packets to the per-path
  services, whose byte budgets come from the realized availability.

``tests/integration/test_packet_session.py`` checks this packet-level
session agrees with the fluid driver on the guarantee attainment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.pgos import PGOSScheduler, dispatch_window, make_packet_queue
from repro.core.spec import StreamSpec
from repro.network.emulab import TestbedRealization
from repro.network.faults import FaultCampaign
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.robustness.health import HealthTracker, HealthTransition
from repro.sim.engine import Simulator
from repro.sim.process import Timeout, start
from repro.sim.vectorized import resolve_sim_backend
from repro.transport.packet import Packet
from repro.transport.service import PathService
from repro.units import mbps_from_bytes


@dataclass
class SessionResult:
    """Per-window packet accounting from one packet-level session."""

    tw: float
    stream_names: list[str]
    path_names: list[str]
    #: packets sent per window: stream -> path -> list (one entry/window)
    sent: dict[str, dict[str, list[int]]]
    #: packets that missed their virtual deadline, per stream
    deadline_misses: dict[str, int] = field(default_factory=dict)
    blocked_events: int = 0
    remap_count: int = 0
    #: health transitions fired during the session (empty without health)
    health_transitions: list[HealthTransition] = field(default_factory=list)
    #: per window, whether each path was quarantined when it was dispatched
    quarantine_series: dict[str, list[bool]] = field(default_factory=dict)

    @property
    def n_windows(self) -> int:
        for per_path in self.sent.values():
            for series in per_path.values():
                return len(series)
        return 0

    def throughput_mbps(self, stream: str, packet_size: int) -> np.ndarray:
        """Per-window throughput series of one stream (all paths)."""
        per_path = self.sent.get(stream)
        if not per_path:
            raise ConfigurationError(f"unknown stream {stream!r}")
        total = np.zeros(self.n_windows)
        for series in per_path.values():
            total += np.asarray(series, dtype=float)
        return np.array(
            [mbps_from_bytes(n * packet_size, self.tw) for n in total]
        )

    def attainment(self, spec: StreamSpec) -> float:
        """Fraction of windows in which the stream met its requirement."""
        if spec.required_mbps is None:
            raise ConfigurationError(f"{spec.name!r} has no requirement")
        needed = spec.packets_in_window(self.tw)
        series = self.throughput_mbps(spec.name, spec.packet_size)
        per_window = series * self.tw * 1e6 / 8.0 / spec.packet_size
        return float(np.mean(per_window >= needed - 0.5))


def run_packet_session(
    realization: TestbedRealization,
    streams: Sequence[StreamSpec],
    scheduler: Optional[PGOSScheduler] = None,
    tw: float = 1.0,
    warmup_windows: int = 30,
    elastic_backlog_windows: int = 2,
    campaign: Optional[FaultCampaign] = None,
    health: Optional[HealthTracker] = None,
    obs: Optional[Observability] = None,
    sim_backend: Optional[str] = None,
) -> SessionResult:
    """Run a packet-accurate PGOS session over a testbed realization.

    Parameters
    ----------
    realization:
        Availability series; resampled to one sample per scheduling
        window (``tw`` must be an integer multiple of the realization's
        ``dt``).
    streams:
        Stream specifications; elastic streams keep roughly
        ``elastic_backlog_windows`` windows of their nominal rate queued.
    scheduler:
        A PGOS scheduler (fresh one by default).  Baselines are not
        supported here — this is the packet fast path, which only PGOS
        has.
    warmup_windows:
        Windows of monitoring before traffic starts.
    campaign:
        Optional mid-run fault schedule (session time ``t = 0`` at the
        first traffic window; faults are sampled at each window's
        midpoint).  Active faults scale the window's byte budgets and
        blackouts drop the affected path's monitoring observation.
    health:
        Optional :class:`HealthTracker`; auto-created when a
        ``campaign`` is given.  Quarantined paths get a zero byte budget
        for the window *and* are excluded from the PGOS mapping, so no
        guaranteed packet rides a failed path until its backoff-gated
        probe confirms recovery.
    obs:
        Optional :class:`repro.obs.Observability` context.  When enabled,
        the engine, path services, scheduler, monitors, and health layer
        all share it, and the session emits one ``transport.window``
        trace event per scheduling window (budgets, quarantine, packet
        counts, rule-2 overflow, drops).
    sim_backend:
        ``"vectorized"`` (default via ``REPRO_SIM_BACKEND``) caches the
        per-window availability once and accumulates packet counts in
        integer arrays instead of per-window list appends; ``"scalar"``
        keeps the original per-call accounting.  Both produce the same
        :class:`SessionResult` value for value (packet counts are exact
        integers and the cached availabilities are the very same floats).
    """
    obs = obs if obs is not None else NULL_OBS
    vec = resolve_sim_backend(sim_backend) == "vectorized"
    dt = realization.dt
    ratio = tw / dt
    k = int(round(ratio))
    if k < 1 or abs(ratio - k) > 1e-9:
        raise ConfigurationError(
            f"tw {tw} must be an integer multiple of dt {dt}"
        )
    scheduler = scheduler or PGOSScheduler()
    path_names = realization.path_names()
    if health is None and campaign is not None:
        health = HealthTracker(path_names)
    # Stable stream IDs (spec order) so trace events join across layers.
    obs.bind_streams({s.name: i for i, s in enumerate(streams, start=1)})
    if health is not None:
        health.bind_observability(obs)
    # Window-granularity availability: mean over each window's intervals.
    avail = {}
    for p in path_names:
        series = realization.available[p].available_mbps
        n = (len(series) // k) * k
        avail[p] = series[:n].reshape(-1, k).mean(axis=1)
    n_windows_total = len(next(iter(avail.values())))
    if warmup_windows >= n_windows_total:
        raise ConfigurationError(
            f"warmup {warmup_windows} >= total windows {n_windows_total}"
        )
    scheduler.setup(streams, path_names, dt=tw, tw=tw)
    scheduler.seed_history(
        {p: avail[p][:warmup_windows] for p in path_names}
    )

    sim = Simulator(obs=obs)
    scheduler.bind_observability(obs, clock=lambda: sim.now)
    services = {p: PathService(p, obs=obs) for p in path_names}
    guaranteed = [s for s in streams if s.guaranteed or s.max_violation_rate]
    elastic = [s for s in streams if s.elastic and s not in guaranteed]
    queues: dict[str, Deque[Packet]] = {s.name: deque() for s in guaranteed}
    unscheduled: dict[str, Deque[Packet]] = {s.name: deque() for s in elastic}
    seqs = {s.name: 0 for s in streams}

    result = SessionResult(
        tw=tw,
        stream_names=[s.name for s in streams],
        path_names=list(path_names),
        sent={
            s.name: {p: [] for p in path_names} for s in streams
        },
        deadline_misses={s.name: 0 for s in streams},
        quarantine_series={p: [] for p in path_names},
    )

    n_windows = n_windows_total - warmup_windows

    # Vectorized accounting: packet counts land in an int64 cube and
    # quarantine flags in a bool matrix (unpacked to the result's lists
    # after the run); both are exact, so the modes agree value for value.
    stream_index = {s.name: i for i, s in enumerate(streams)}
    path_index = {p: j for j, p in enumerate(path_names)}
    sent_cube = (
        np.zeros((len(streams), len(path_names), n_windows), dtype=np.int64)
        if vec
        else None
    )
    quarantine_matrix = (
        np.zeros((len(path_names), n_windows), dtype=bool) if vec else None
    )

    def window_avail(p: str, w: int) -> float:
        """Effective availability for traffic window ``w`` (session time)."""
        value = float(avail[p][warmup_windows + w])
        if campaign is not None:
            value *= campaign.availability_multiplier(p, (w + 0.5) * tw)
        return value

    def produce(window_idx: int) -> None:
        """Enqueue one window's packets for every stream."""
        now = sim.now
        for spec in guaranteed:
            count = spec.packets_in_window(tw)
            batch = make_packet_queue(
                spec.name,
                count,
                tw,
                spec.packet_size,
                start_seq=seqs[spec.name],
                created_at=now,
            )
            seqs[spec.name] += count
            queues[spec.name].extend(batch)
        for spec in elastic:
            target = (
                spec.packets_in_window(tw) * elastic_backlog_windows
                if spec.nominal_mbps or spec.required_mbps
                else 0
            )
            missing = max(target - len(unscheduled[spec.name]), 0)
            if missing:
                batch = make_packet_queue(
                    spec.name,
                    missing,
                    tw,
                    spec.packet_size,
                    start_seq=seqs[spec.name],
                    created_at=now,
                )
                seqs[spec.name] += missing
                unscheduled[spec.name].extend(batch)

    def session():
        for w in range(n_windows):
            absolute = warmup_windows + w
            produce(w)
            quarantined = (
                health.quarantined() if health is not None else frozenset()
            )
            if health is not None:
                scheduler.set_quarantine(quarantined)
            schedule = scheduler.maybe_remap()
            if vec:
                # One availability draw per (path, window); the budget,
                # observe, and health sites below reuse the same floats
                # the scalar mode recomputes (window_avail is pure).
                wa = {p: window_avail(p, w) for p in path_names}
                budgets = {p: wa[p] * 1e6 / 8.0 * tw for p in path_names}
            else:
                wa = None
                budgets = {
                    p: window_avail(p, w) * 1e6 / 8.0 * tw
                    for p in path_names
                }
            for p, service in services.items():
                # A quarantined path carries probe traffic only: zero byte
                # budget, so even work-conserving overflow avoids it.
                budget = 0.0 if p in quarantined else budgets[p]
                service.begin_interval(sim.now, budget)
                if vec:
                    quarantine_matrix[path_index[p], w] = p in quarantined
                else:
                    result.quarantine_series[p].append(p in quarantined)
            window_result = dispatch_window(
                schedule,
                services,
                queues,
                unscheduled,
                stream_precedence=scheduler.stream_precedence(),
            )
            result.blocked_events += window_result.blocked_events
            if vec:
                for name, per_path in window_result.sent.items():
                    row = sent_cube[stream_index[name]]
                    for p, count in per_path.items():
                        row[path_index[p], w] = count
            else:
                for s in streams:
                    per_path = window_result.sent.get(s.name, {})
                    for p in path_names:
                        result.sent[s.name][p].append(per_path.get(p, 0))
            # Drop packets a full window stale (bounded buffers, matching
            # the fluid driver's 2-second bound); a drop is a miss.
            drops = 0
            for name, queue in list(queues.items()) + list(
                unscheduled.items()
            ):
                while queue and queue[0].deadline < sim.now - tw:
                    queue.popleft()
                    result.deadline_misses[name] += 1
                    drops += 1
            if obs.enabled:
                metrics = obs.metrics
                metrics.counter("transport.windows").inc()
                metrics.counter("transport.rule2_overflow").inc(
                    window_result.rule2_sent
                )
                metrics.counter("transport.packets_dropped").inc(drops)
                metrics.counter("transport.blocked_events").inc(
                    window_result.blocked_events
                )
                obs.trace.emit(
                    sim.now,
                    Category.TRANSPORT,
                    "window",
                    window=w,
                    budgets_bytes={p: budgets[p] for p in path_names},
                    quarantined=sorted(quarantined),
                    sent={
                        s: dict(per_path)
                        for s, per_path in window_result.sent.items()
                    },
                    rule2_sent=window_result.rule2_sent,
                    unscheduled_sent=window_result.unscheduled_sent,
                    blocked_events=window_result.blocked_events,
                    unsent=window_result.unsent,
                    dropped=drops,
                )
                metrics.snapshot(sim.now)
            t_mid = (w + 0.5) * tw
            observed = [
                p
                for p in path_names
                if campaign is None or campaign.observed(p, t_mid)
            ]
            if observed:
                scheduler.observe(
                    absolute,
                    {
                        p: (wa[p] if vec else window_avail(p, w))
                        for p in observed
                    },
                )
            if health is not None:
                bandwidth = {
                    p: (
                        (wa[p] if vec else window_avail(p, w))
                        if p in observed
                        else None
                    )
                    for p in path_names
                }
                loss = {
                    p: (
                        campaign.extra_loss(p, t_mid)
                        if campaign is not None and p in observed
                        else 0.0
                    )
                    for p in path_names
                }
                result.health_transitions.extend(
                    health.update(w * tw, bandwidth, loss=loss)
                )
            yield Timeout(tw)

    start(sim, session(), name="pgos-session")
    sim.run()
    if vec:
        for s in streams:
            rows = sent_cube[stream_index[s.name]]
            for p in path_names:
                result.sent[s.name][p] = rows[path_index[p]].tolist()
        for p in path_names:
            result.quarantine_series[p] = quarantine_matrix[
                path_index[p]
            ].tolist()
    # Packets delivered after their virtual deadline count as misses too.
    for service in services.values():
        for name, count in service.log.deadline_misses.items():
            result.deadline_misses[name] = (
                result.deadline_misses.get(name, 0) + count
            )
    result.remap_count = scheduler.remap_count
    return result
