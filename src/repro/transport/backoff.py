"""Exponential backoff for blocked paths.

"Because of the high cost of blocking, timeouts and exponential backoff
are used to avoid sending multiple packets to a blocked path."
(Section 5.2.2.)
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class ExponentialBackoff:
    """Doubling backoff with a ceiling.

    ``next_delay()`` returns the delay to wait before retrying a blocked
    path, doubling on each consecutive failure; ``reset()`` is called when
    the path accepts traffic again.
    """

    def __init__(
        self,
        base_delay: float = 0.01,
        factor: float = 2.0,
        max_delay: float = 1.0,
    ):
        if base_delay <= 0:
            raise ConfigurationError(f"base_delay must be > 0, got {base_delay}")
        if factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {factor}")
        if max_delay < base_delay:
            raise ConfigurationError(
                f"max_delay {max_delay} must be >= base_delay {base_delay}"
            )
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay
        self._failures = 0

    @property
    def failures(self) -> int:
        """Consecutive failures since the last reset."""
        return self._failures

    def next_delay(self) -> float:
        """Record a failure and return the delay before the next retry."""
        delay = min(
            self.base_delay * (self.factor**self._failures), self.max_delay
        )
        self._failures += 1
        return delay

    def reset(self) -> None:
        """Clear the failure count after a successful send."""
        self._failures = 0

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (the failure count is the state)."""
        return {"failures": self._failures}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._failures = int(state["failures"])
