"""Transport substrate: packets, per-path send services, backoff.

This stands in for the paper's RUDP-based transport under IQ-ECho.  The
scheduler above it only needs two behaviours from a transport: packets are
delivered at the path's currently available rate, and a path that cannot
accept more data *blocks*, which the scheduler observes so it can switch
paths (with timeouts and exponential backoff to avoid hammering a blocked
path — Section 5.2.2).
"""

from repro.transport.packet import Packet
from repro.transport.backoff import ExponentialBackoff
from repro.transport.service import DeliveryLog, PathService

__all__ = ["Packet", "ExponentialBackoff", "PathService", "DeliveryLog"]
