"""Prediction-error metrics — the two y-axes of Figure 4.

* ``mean_relative_error``: the score for average predictors,
  ``|predicted - actual| / actual`` averaged over all predictions.
* ``percentile_prediction_failure_rate``: the score for the statistical
  predictor.  Following Section 4: compute the distribution of the last
  ``N`` samples, read its ``q``-th percentile ``X``, and test whether the
  next ``n`` samples all exceed ``X``; the failure rate is the fraction of
  positions where they do not.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.monitoring.predictors import Predictor


def prediction_error_series(
    predictor: Predictor, series: np.ndarray
) -> np.ndarray:
    """Relative error of one-step predictions over ``series``.

    Positions where the predictor is not ready yet, or where the actual
    value is zero (relative error undefined), are dropped.
    """
    x = np.asarray(series, dtype=float)
    predicted = predictor.predict_series(x)
    mask = ~np.isnan(predicted) & (x != 0)
    if not np.any(mask):
        raise ConfigurationError(
            "series too short for this predictor (no scored predictions)"
        )
    return np.abs(predicted[mask] - x[mask]) / np.abs(x[mask])


def mean_relative_error(predictor: Predictor, series: np.ndarray) -> float:
    """Average relative one-step prediction error of ``predictor``."""
    return float(prediction_error_series(predictor, series).mean())


def error_exceedance_fraction(
    predictor: Predictor, series: np.ndarray, threshold: float
) -> float:
    """Fraction of predictions whose relative error exceeds ``threshold``.

    Reproduces the paper's citation of [34]: "prediction errors larger than
    20% for more than 40% of the predicted values".
    """
    errors = prediction_error_series(predictor, series)
    return float(np.mean(errors > threshold))


def percentile_prediction_failure_rate(
    series: np.ndarray,
    q: float = 10.0,
    history: int = 500,
    horizon: int = 5,
    stride: int = 1,
    mode: str = "mean",
) -> float:
    """Failure rate of the percentile prediction procedure of Section 4.

    At each position ``t`` (stepping by ``stride``), take the ``history``
    samples before ``t``, read their ``q``-th percentile ``X``, and test
    the next ``horizon`` samples against ``X``.

    The prediction being scored is the one PGOS actually uses (Lemma 1):
    *"the path will sustain at least X over the near future"* — i.e. the
    aggregate bandwidth over the scheduling window, not each sub-interval
    sliver.  ``mode`` selects the test:

    * ``"mean"`` (default, the guarantee semantics): failure when the
      *average* of the next ``horizon`` samples falls below ``X``;
    * ``"min"`` (strict): failure when *any* of the next ``horizon``
      samples falls below ``X``.  For a stationary process this variant is
      floor-bounded at ``q`` % per sample, so it mainly serves as the
      pessimistic comparison.

    Parameters mirror the paper: ``history`` ∈ {500, 1000}, ``horizon``
    (the paper's *n*) ∈ [5, 10], ``q`` = 10 for a "90 % of the time"
    guarantee.
    """
    x = np.asarray(series, dtype=float)
    if history < 2:
        raise ConfigurationError(f"history must be >= 2, got {history}")
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")
    if mode not in ("mean", "min"):
        raise ConfigurationError(f"mode must be 'mean' or 'min', got {mode!r}")
    last_start = x.size - history - horizon
    if last_start < 0:
        raise ConfigurationError(
            f"series of {x.size} samples too short for history={history} "
            f"and horizon={horizon}"
        )

    starts = np.arange(0, last_start + 1, stride)
    # Percentiles of every history window, vectorized via sliding windows.
    windows = np.lib.stride_tricks.sliding_window_view(x, history)
    thresholds = np.percentile(windows[starts], q, axis=1)
    future = np.lib.stride_tricks.sliding_window_view(x, horizon)
    if mode == "mean":
        outcome = future[starts + history].mean(axis=1)
    else:
        outcome = future[starts + history].min(axis=1)
    failures = outcome < thresholds
    return float(np.mean(failures))
