"""Empirical CDFs of available bandwidth.

The paper's key data structure: ``F(b) = P{avail_bw in (0, b)}`` tracked
per path over a sliding history window.  The PGOS guarantees (Lemmas 1 and
2) are direct reads of this object: ``1 - F(b0)`` for the probabilistic
guarantee and the partial mean ``M[b0]`` for the violation bound.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError


class EmpiricalCDF:
    """Immutable empirical CDF built from a sample array.

    Evaluation uses right-continuous step convention:
    ``F(b) = (# samples <= b) / n``.
    """

    def __init__(self, samples: Iterable[float]):
        arr = np.sort(np.asarray(list(samples), dtype=float))
        if arr.size == 0:
            raise ConfigurationError("EmpiricalCDF needs at least one sample")
        if np.any(~np.isfinite(arr)):
            raise ConfigurationError("EmpiricalCDF samples must be finite")
        self._sorted = arr

    @property
    def n(self) -> int:
        """Number of samples."""
        return self._sorted.size

    @property
    def samples(self) -> np.ndarray:
        """Sorted sample array (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def evaluate(self, b: float | np.ndarray) -> float | np.ndarray:
        """``F(b)``: fraction of samples ``<= b``."""
        result = np.searchsorted(self._sorted, b, side="right") / self.n
        if np.isscalar(b):
            return float(result)
        return result

    __call__ = evaluate

    def evaluate_strict(self, b: float | np.ndarray) -> float | np.ndarray:
        """``F(b-)``: fraction of samples strictly below ``b``.

        This is the failure probability of Lemma 1 — a sample exactly equal
        to the required bandwidth still satisfies the requirement.
        """
        result = np.searchsorted(self._sorted, b, side="left") / self.n
        if np.isscalar(b):
            return float(result)
        return result

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sample distribution, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"q must be in [0, 100], got {q}")
        return float(np.percentile(self._sorted, q))

    def quantile(self, p: float) -> float:
        """Inverse CDF at probability ``p`` in [0, 1]."""
        return self.percentile(p * 100.0)

    def mean(self) -> float:
        """Sample mean."""
        return float(self._sorted.mean())

    def std(self) -> float:
        """Sample standard deviation."""
        return float(self._sorted.std())

    def partial_mean_below(self, b0: float) -> float:
        """``M[b0]``: mean of the samples ``<= b0``, weighted by ``F(b0)``.

        Specifically returns ``E[b * 1{b <= b0}]`` — the unconditional
        partial expectation — which is the quantity Lemma 2's bound uses
        (``F(b0) * E[b | b <= b0]``).  Returns 0 when no sample is below
        ``b0``.
        """
        idx = int(np.searchsorted(self._sorted, b0, side="right"))
        if idx == 0:
            return 0.0
        return float(self._sorted[:idx].sum()) / self.n

    def min(self) -> float:
        return float(self._sorted[0])

    def max(self) -> float:
        return float(self._sorted[-1])


class SlidingWindowCDF:
    """Bounded-history CDF updated online, one bandwidth sample at a time.

    This is the monitoring module's live view of a path: the last
    ``window`` samples (the paper uses 500–1000 samples of 0.1–1 s each,
    i.e. minutes of history).  ``snapshot()`` freezes the current window as
    an :class:`EmpiricalCDF` for the mapping step; the sorted array is
    cached and invalidated on update, so repeated guarantee evaluations
    within a scheduling window cost one sort at most.
    """

    def __init__(self, window: int = 500):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self.window = window
        self._buffer: deque[float] = deque(maxlen=window)
        self._cached: EmpiricalCDF | None = None

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def full(self) -> bool:
        """Whether the history window has filled up."""
        return len(self._buffer) == self.window

    def update(self, sample: float) -> None:
        """Append one bandwidth measurement (Mbps)."""
        if not np.isfinite(sample):
            raise ConfigurationError(f"sample must be finite, got {sample}")
        self._buffer.append(float(sample))
        self._cached = None

    def extend(self, samples: Iterable[float]) -> None:
        """Append many measurements."""
        for s in samples:
            self.update(s)

    def snapshot(self) -> EmpiricalCDF:
        """Freeze the current window as an immutable CDF."""
        if not self._buffer:
            raise ConfigurationError("no samples observed yet")
        if self._cached is None:
            self._cached = EmpiricalCDF(self._buffer)
        return self._cached

    def percentile(self, q: float) -> float:
        """Percentile of the current window."""
        return self.snapshot().percentile(q)

    def evaluate(self, b: float) -> float:
        """``F(b)`` over the current window."""
        return self.snapshot().evaluate(b)


def ks_distance(a: EmpiricalCDF, b: EmpiricalCDF) -> float:
    """Kolmogorov–Smirnov distance ``sup_x |F_a(x) - F_b(x)|``.

    Used as the remap trigger: the paper rebuilds scheduling vectors "when
    the CDF of some path changes dramatically"; we quantify *dramatically*
    as a KS distance above a threshold.
    """
    grid = np.union1d(a.samples, b.samples)
    return float(np.max(np.abs(a.evaluate(grid) - b.evaluate(grid))))
