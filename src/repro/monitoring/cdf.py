"""Empirical CDFs of available bandwidth.

The paper's key data structure: ``F(b) = P{avail_bw in (0, b)}`` tracked
per path over a sliding history window.  The PGOS guarantees (Lemmas 1 and
2) are direct reads of this object: ``1 - F(b0)`` for the probabilistic
guarantee and the partial mean ``M[b0]`` for the violation bound.

Two construction paths exist:

* :class:`EmpiricalCDF` — the immutable batch form, sorting its input
  once; :meth:`EmpiricalCDF.from_sorted` skips the sort when the caller
  already holds a sorted array (the residual-shift in the mapping step,
  the incremental window's snapshot).
* :class:`SlidingWindowCDF` — the online form.  Its default backend is
  :class:`repro.monitoring.incremental.IncrementalWindowCDF`, which keeps
  the window sorted under O(log W) insert/evict instead of re-sorting on
  every snapshot; the seed's re-sort behaviour survives as the
  ``"batch"`` backend for differential testing and benchmarking
  (``REPRO_CDF_BACKEND=batch`` flips the process-wide default).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Iterable, Optional, Union

import numpy as np

from repro.errors import ConfigurationError

#: Process-wide default backend for SlidingWindowCDF; the environment
#: variable lets equivalence tests flip whole experiment runs without
#: threading a parameter through every layer.
CDF_BACKENDS = ("incremental", "batch")


def default_backend() -> str:
    """The backend used when ``SlidingWindowCDF(backend=None)``."""
    backend = os.environ.get("REPRO_CDF_BACKEND", "incremental")
    if backend not in CDF_BACKENDS:
        raise ConfigurationError(
            f"REPRO_CDF_BACKEND must be one of {CDF_BACKENDS}, got {backend!r}"
        )
    return backend


class EmpiricalCDF:
    """Immutable empirical CDF built from a sample array.

    Evaluation uses right-continuous step convention:
    ``F(b) = (# samples <= b) / n``.  The underlying sorted array is
    marked non-writeable at construction, so in-place mutation through
    any reference raises instead of silently corrupting guarantees.
    """

    def __init__(self, samples: Iterable[float]):
        arr = np.sort(np.asarray(list(samples), dtype=float))
        if arr.size == 0:
            raise ConfigurationError("EmpiricalCDF needs at least one sample")
        if np.any(~np.isfinite(arr)):
            raise ConfigurationError("EmpiricalCDF samples must be finite")
        arr.flags.writeable = False
        self._sorted = arr

    @classmethod
    def from_sorted(
        cls,
        sorted_samples: np.ndarray,
        *,
        copy: bool = True,
        validate: bool = True,
    ) -> "EmpiricalCDF":
        """Build from an already-sorted array, skipping the O(n log n) sort.

        This is the fast construction path for callers that maintain
        sortedness themselves (the incremental sliding window) or apply a
        monotone transform to an existing CDF's samples (the residual
        shift in the mapping step).

        Parameters
        ----------
        sorted_samples:
            Ascending float array.
        copy:
            Copy the input (default).  Pass ``False`` only when handing
            over ownership of a freshly allocated array.
        validate:
            Check finiteness and ascending order (O(n), vectorized).
            Internal callers whose invariants already guarantee both may
            skip it.
        """
        arr = np.asarray(sorted_samples, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError(
                "from_sorted needs a non-empty 1-D sample array"
            )
        if validate:
            if np.any(~np.isfinite(arr)):
                raise ConfigurationError("EmpiricalCDF samples must be finite")
            if arr.size > 1 and np.any(arr[1:] < arr[:-1]):
                raise ConfigurationError(
                    "from_sorted requires ascending samples"
                )
        if copy:
            arr = arr.copy()
        arr.flags.writeable = False
        obj = cls.__new__(cls)
        obj._sorted = arr
        return obj

    @property
    def n(self) -> int:
        """Number of samples."""
        return self._sorted.size

    @property
    def samples(self) -> np.ndarray:
        """Sorted sample array (read-only)."""
        return self._sorted

    def evaluate(self, b: float | np.ndarray) -> float | np.ndarray:
        """``F(b)``: fraction of samples ``<= b``."""
        result = np.searchsorted(self._sorted, b, side="right") / self.n
        if np.isscalar(b):
            return float(result)
        return result

    __call__ = evaluate

    def evaluate_strict(self, b: float | np.ndarray) -> float | np.ndarray:
        """``F(b-)``: fraction of samples strictly below ``b``.

        This is the failure probability of Lemma 1 — a sample exactly equal
        to the required bandwidth still satisfies the requirement.
        """
        result = np.searchsorted(self._sorted, b, side="left") / self.n
        if np.isscalar(b):
            return float(result)
        return result

    def percentile(
        self, q: float | np.ndarray
    ) -> float | np.ndarray:
        """The ``q``-th percentile(s) of the sample distribution, ``q`` in [0, 100].

        Accepts an array of probabilities so batched callers (multicast
        rate planning, guarantee sweeps) pay one vectorized pass instead
        of one interpolation per level.
        """
        if np.isscalar(q):
            if not 0.0 <= q <= 100.0:
                raise ConfigurationError(f"q must be in [0, 100], got {q}")
            return float(np.percentile(self._sorted, q))
        q = np.asarray(q, dtype=float)
        if q.size and (q.min() < 0.0 or q.max() > 100.0):
            raise ConfigurationError(f"q must be in [0, 100], got {q}")
        return np.percentile(self._sorted, q)

    def quantile(self, p: float | np.ndarray) -> float | np.ndarray:
        """Inverse CDF at probability ``p`` in [0, 1] (scalar or array)."""
        if np.isscalar(p):
            return self.percentile(p * 100.0)
        return self.percentile(np.asarray(p, dtype=float) * 100.0)

    def mean(self) -> float:
        """Sample mean."""
        return float(self._sorted.mean())

    def std(self) -> float:
        """Sample standard deviation."""
        return float(self._sorted.std())

    def partial_mean_below(self, b0: float) -> float:
        """``M[b0]``: mean of the samples ``<= b0``, weighted by ``F(b0)``.

        Specifically returns ``E[b * 1{b <= b0}]`` — the unconditional
        partial expectation — which is the quantity Lemma 2's bound uses
        (``F(b0) * E[b | b <= b0]``).  Returns 0 when no sample is below
        ``b0``.
        """
        idx = int(np.searchsorted(self._sorted, b0, side="right"))
        if idx == 0:
            return 0.0
        return float(self._sorted[:idx].sum()) / self.n

    def partial_means_below(self, b0: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partial_mean_below` over many thresholds.

        One ``searchsorted`` locates every threshold; each *distinct*
        prefix is then reduced with the same ``ndarray.sum`` the scalar
        path uses, so every element is bit-identical to the scalar call —
        the property the batched mapping step relies on for byte-stable
        schedules.
        """
        b0 = np.asarray(b0, dtype=float)
        idx = np.searchsorted(self._sorted, b0, side="right")
        out = np.zeros(b0.shape, dtype=float)
        flat_idx = idx.ravel()
        flat_out = out.ravel()
        for i in np.unique(flat_idx):
            if i == 0:
                continue
            flat_out[flat_idx == i] = float(self._sorted[:i].sum()) / self.n
        return out

    def min(self) -> float:
        return float(self._sorted[0])

    def max(self) -> float:
        return float(self._sorted[-1])


class SlidingWindowCDF:
    """Bounded-history CDF updated online, one bandwidth sample at a time.

    This is the monitoring module's live view of a path: the last
    ``window`` samples (the paper uses 500–1000 samples of 0.1–1 s each,
    i.e. minutes of history).  ``snapshot()`` freezes the current window
    as an :class:`EmpiricalCDF` for the mapping step.

    Parameters
    ----------
    window:
        History length in samples.
    backend:
        ``"incremental"`` (default) keeps the window sorted under
        O(log W) insert/evict, so a snapshot is a copy rather than a
        sort; ``"batch"`` preserves the seed behaviour (re-sort on every
        snapshot) as the differential-testing reference.  ``None`` reads
        the process default (``REPRO_CDF_BACKEND``).
    obs:
        Optional observability context; when enabled, snapshot
        cache reuse vs rebuild is counted (``cdf.snapshot_reuses`` /
        ``cdf.snapshot_rebuilds``) alongside ``cdf.updates``.
    """

    def __init__(
        self,
        window: int = 500,
        backend: Optional[str] = None,
        obs=None,
    ):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if backend is None:
            backend = default_backend()
        if backend not in CDF_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {CDF_BACKENDS}, got {backend!r}"
            )
        from repro.obs.context import NULL_OBS

        self.window = window
        self.backend = backend
        self._obs = obs if obs is not None else NULL_OBS
        self._cached: EmpiricalCDF | None = None
        if backend == "incremental":
            from repro.monitoring.incremental import IncrementalWindowCDF

            self._inc: Optional[IncrementalWindowCDF] = IncrementalWindowCDF(
                window
            )
            self._buffer: deque[float] | None = None
        else:
            self._inc = None
            self._buffer = deque(maxlen=window)

    def bind_observability(self, obs) -> None:
        """Attach (or replace) the observability context."""
        from repro.obs.context import NULL_OBS

        self._obs = obs if obs is not None else NULL_OBS

    def __len__(self) -> int:
        if self._inc is not None:
            return len(self._inc)
        return len(self._buffer)

    @property
    def full(self) -> bool:
        """Whether the history window has filled up."""
        return len(self) == self.window

    def update(self, sample: float) -> None:
        """Append one bandwidth measurement (Mbps)."""
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("cdf.update"):
                self._update_inner(sample)
        else:
            self._update_inner(sample)

    def _update_inner(self, sample: float) -> None:
        if self._inc is not None:
            self._inc.update(sample)
        else:
            if not np.isfinite(sample):
                raise ConfigurationError(
                    f"sample must be finite, got {sample}"
                )
            self._buffer.append(float(sample))
        self._cached = None
        if self._obs.enabled:
            self._obs.metrics.counter("cdf.updates").inc()

    def extend(self, samples: Iterable[float]) -> None:
        """Append many measurements."""
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("cdf.extend"):
                self._extend_inner(samples)
        else:
            self._extend_inner(samples)

    def _extend_inner(self, samples: Iterable[float]) -> None:
        if self._inc is not None:
            count = 0
            for s in samples:
                self._inc.update(s)
                count += 1
            self._cached = None
            if count and self._obs.enabled:
                self._obs.metrics.counter("cdf.updates").inc(count)
        else:
            for s in samples:
                self._update_inner(s)

    def snapshot(self) -> EmpiricalCDF:
        """Freeze the current window as an immutable CDF.

        The snapshot is cached and invalidated on update, so repeated
        guarantee evaluations within a scheduling window reuse one
        frozen CDF; with the incremental backend even a rebuild is a
        copy of the maintained sorted buffer, never a sort.
        """
        if len(self) == 0:
            raise ConfigurationError("no samples observed yet")
        if self._cached is None:
            prof = self._obs.prof
            if prof.enabled:
                with prof.span("cdf.snapshot"):
                    self._rebuild_snapshot()
            else:
                self._rebuild_snapshot()
            if self._obs.enabled:
                self._obs.metrics.counter("cdf.snapshot_rebuilds").inc()
        elif self._obs.enabled:
            self._obs.metrics.counter("cdf.snapshot_reuses").inc()
        return self._cached

    def _rebuild_snapshot(self) -> None:
        if self._inc is not None:
            self._cached = self._inc.snapshot()
        else:
            self._cached = EmpiricalCDF(self._buffer)

    def percentile(self, q: float) -> float:
        """Percentile of the current window."""
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("cdf.query"):
                return self._percentile_inner(q)
        return self._percentile_inner(q)

    def _percentile_inner(self, q: float) -> float:
        if self._inc is not None and self._cached is None:
            # Interpolate on the maintained sorted buffer (bit-identical
            # to np.percentile, no snapshot copy, no partition pass).
            return self._inc.percentile(q)
        return self.snapshot().percentile(q)

    def evaluate(self, b: float) -> float:
        """``F(b)`` over the current window."""
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("cdf.query"):
                return self._evaluate_inner(b)
        return self._evaluate_inner(b)

    def _evaluate_inner(self, b: float) -> float:
        if self._inc is not None and self._cached is None:
            # O(log W) direct read; building/caching a snapshot is left
            # to callers that will query repeatedly.
            return self._inc.evaluate(b)
        return self.snapshot().evaluate(b)

    def evaluate_strict(self, b: float) -> float:
        """``F(b-)`` over the current window."""
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("cdf.query"):
                return self._evaluate_strict_inner(b)
        return self._evaluate_strict_inner(b)

    def _evaluate_strict_inner(self, b: float) -> float:
        if self._inc is not None and self._cached is None:
            return self._inc.evaluate_strict(b)
        return self.snapshot().evaluate_strict(b)

    def partial_mean_below(self, b0: float) -> float:
        """``M[b0]`` over the current window."""
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("cdf.query"):
                return self._partial_mean_below_inner(b0)
        return self._partial_mean_below_inner(b0)

    def _partial_mean_below_inner(self, b0: float) -> float:
        if self._inc is not None and self._cached is None:
            return self._inc.partial_mean_below(b0)
        return self.snapshot().partial_mean_below(b0)

    def mean(self) -> float:
        """Mean of the current window."""
        if self._inc is not None and self._cached is None:
            return self._inc.mean()
        return self.snapshot().mean()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def window_values(self) -> list[float]:
        """The window's samples in arrival order (oldest first)."""
        if self._inc is not None:
            return self._inc.window_values()
        return list(self._buffer)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (backend-independent).

        Arrival order fully determines both backends' state: the batch
        deque stores it directly, and replaying it into a fresh
        incremental structure reproduces the sorted buffer bit-for-bit.
        """
        return {
            "window": self.window,
            "backend": self.backend,
            "values": self.window_values(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot, replacing the window's contents.

        The snapshot restores across backends (the stored form is
        arrival order, which both understand); the cached frozen CDF is
        dropped — rebuilding it is deterministic.
        """
        if int(state["window"]) != self.window:
            raise ConfigurationError(
                f"window mismatch: have {self.window}, checkpoint has "
                f"{state['window']}"
            )
        if self._inc is not None:
            from repro.monitoring.incremental import IncrementalWindowCDF

            self._inc = IncrementalWindowCDF(self.window)
            self._inc.extend(float(v) for v in state["values"])
        else:
            self._buffer = deque(
                (float(v) for v in state["values"]), maxlen=self.window
            )
        self._cached = None


def ks_distance(
    a: Union[EmpiricalCDF, "SlidingWindowCDF"],
    b: Union[EmpiricalCDF, "SlidingWindowCDF"],
) -> float:
    """Kolmogorov–Smirnov distance ``sup_x |F_a(x) - F_b(x)|``.

    Used as the remap trigger: the paper rebuilds scheduling vectors "when
    the CDF of some path changes dramatically"; we quantify *dramatically*
    as a KS distance above a threshold.

    The supremum over the union of both sample sets equals the supremum
    over their concatenation (duplicate grid points cannot change a max),
    so the grid is never sorted or deduplicated — the seed's ``union1d``
    sort was the last O(n log n) step in the remap-trigger path.
    """
    if isinstance(a, SlidingWindowCDF):
        a = a.snapshot()
    if isinstance(b, SlidingWindowCDF):
        b = b.snapshot()
    grid = np.concatenate([a.samples, b.samples])
    return float(np.max(np.abs(a.evaluate(grid) - b.evaluate(grid))))
