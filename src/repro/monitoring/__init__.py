"""Online network monitoring and statistical analysis.

The paper's Statistical Monitoring component tracks the *distribution* of
each overlay path's available bandwidth (not just its average) and feeds it
to the PGOS routing/scheduling component.  This package provides:

* :mod:`repro.monitoring.sampler` — turning byte deliveries into
  per-interval bandwidth samples;
* :mod:`repro.monitoring.cdf` — empirical CDFs and the sliding-window CDF
  the scheduler consults;
* :mod:`repro.monitoring.incremental` — the sorted-window fast path behind
  :class:`~repro.monitoring.cdf.SlidingWindowCDF`: O(log W) insert/evict,
  no re-sorts, queries bit-identical to the batch CDF;
* :mod:`repro.monitoring.predictors` — the average-bandwidth predictors the
  paper compares against (MA, SMA, EWMA, AR(1)) and the percentile
  predictor it proposes;
* :mod:`repro.monitoring.errors` — the two error metrics of Figure 4;
* :mod:`repro.monitoring.monitor` — the per-path monitor combining all of
  the above with CDF-change detection.
"""

from repro.monitoring.cdf import EmpiricalCDF, SlidingWindowCDF, ks_distance
from repro.monitoring.incremental import IncrementalWindowCDF
from repro.monitoring.errors import (
    mean_relative_error,
    percentile_prediction_failure_rate,
    prediction_error_series,
)
from repro.monitoring.monitor import PathMonitor
from repro.monitoring.predictors import (
    AR1Predictor,
    EWMAPredictor,
    MovingAveragePredictor,
    PercentilePredictor,
    Predictor,
    SlidingMedianPredictor,
)
from repro.monitoring.sampler import ThroughputSampler

__all__ = [
    "EmpiricalCDF",
    "IncrementalWindowCDF",
    "SlidingWindowCDF",
    "ks_distance",
    "Predictor",
    "MovingAveragePredictor",
    "EWMAPredictor",
    "SlidingMedianPredictor",
    "AR1Predictor",
    "PercentilePredictor",
    "mean_relative_error",
    "percentile_prediction_failure_rate",
    "prediction_error_series",
    "PathMonitor",
    "ThroughputSampler",
]
