"""Per-path monitor: the live state PGOS consults every window.

Combines a sliding-window bandwidth CDF with RTT/loss tracking and
CDF-change detection.  The paper rebuilds its scheduling vectors "when a
new stream joins or the CDF changes dramatically" (Figure 7, line 2);
:meth:`PathMonitor.cdf_changed_significantly` quantifies *dramatically* as
a Kolmogorov–Smirnov distance between the current window's CDF and the CDF
snapshot taken at the last remap.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF, SlidingWindowCDF, ks_distance
from repro.monitoring.predictors import EWMAPredictor


class PathMonitor:
    """Online statistics for one overlay path.

    Parameters
    ----------
    name:
        Path label (``"A"``, ``"B"``, ...).
    window:
        Bandwidth-history window in samples.
    ks_threshold:
        KS distance above which the path's distribution is considered to
        have changed dramatically (triggering a PGOS remap).
    """

    def __init__(
        self, name: str, window: int = 500, ks_threshold: float = 0.2
    ):
        if not 0.0 < ks_threshold <= 1.0:
            raise ConfigurationError(
                f"ks_threshold must be in (0, 1], got {ks_threshold}"
            )
        self.name = name
        self.ks_threshold = ks_threshold
        self.bandwidth = SlidingWindowCDF(window=window)
        self.rtt_ms = EWMAPredictor(alpha=0.2)
        self.loss_rate = EWMAPredictor(alpha=0.2)
        self._reference_cdf: Optional[EmpiricalCDF] = None

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def observe_bandwidth(self, mbps: float) -> None:
        """Record one available-bandwidth sample."""
        self.bandwidth.update(mbps)

    def observe_bandwidth_many(self, samples: Iterable[float]) -> None:
        """Record a batch of bandwidth samples."""
        self.bandwidth.extend(samples)

    def observe_rtt(self, rtt_ms: float) -> None:
        """Record one RTT measurement (ms)."""
        if rtt_ms < 0:
            raise ConfigurationError(f"rtt must be >= 0, got {rtt_ms}")
        self.rtt_ms.update(rtt_ms)

    def observe_loss(self, loss_rate: float) -> None:
        """Record one loss-rate measurement in [0, 1]."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1], got {loss_rate}"
            )
        self.loss_rate.update(loss_rate)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether any bandwidth history exists yet."""
        return len(self.bandwidth) > 0

    def cdf(self) -> EmpiricalCDF:
        """Current bandwidth CDF snapshot."""
        return self.bandwidth.snapshot()

    def guaranteed_bandwidth(self, probability: float) -> float:
        """Bandwidth the path sustains with the given probability.

        ``guaranteed_bandwidth(0.95)`` is the level exceeded 95 % of the
        time — the 5th percentile of the observed distribution.
        """
        if not 0.0 < probability < 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1), got {probability}"
            )
        return self.cdf().percentile((1.0 - probability) * 100.0)

    # ------------------------------------------------------------------
    # remap trigger
    # ------------------------------------------------------------------
    def mark_remapped(self) -> None:
        """Snapshot the current CDF as the reference for change detection."""
        self._reference_cdf = self.cdf()

    def cdf_changed_significantly(self) -> bool:
        """Whether the distribution drifted beyond ``ks_threshold``."""
        if self._reference_cdf is None:
            return True  # never mapped against this path yet
        return ks_distance(self.cdf(), self._reference_cdf) > self.ks_threshold
