"""Per-path monitor: the live state PGOS consults every window.

Combines a sliding-window bandwidth CDF with RTT/loss tracking and
CDF-change detection.  The paper rebuilds its scheduling vectors "when a
new stream joins or the CDF changes dramatically" (Figure 7, line 2);
:meth:`PathMonitor.cdf_changed_significantly` quantifies *dramatically* as
a Kolmogorov–Smirnov distance between the current window's CDF and the CDF
snapshot taken at the last remap.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF, SlidingWindowCDF, ks_distance
from repro.monitoring.predictors import EWMAPredictor
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category

#: Relative-error buckets of the bandwidth-prediction histogram.
_PREDICTION_ERROR_BOUNDS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


class PathMonitor:
    """Online statistics for one overlay path.

    Parameters
    ----------
    name:
        Path label (``"A"``, ``"B"``, ...).
    window:
        Bandwidth-history window in samples.
    ks_threshold:
        KS distance above which the path's distribution is considered to
        have changed dramatically (triggering a PGOS remap).
    cdf_backend:
        Backend of the sliding-window CDF (``"incremental"`` default /
        ``"batch"`` reference); ``None`` reads the process default.
    """

    def __init__(
        self,
        name: str,
        window: int = 500,
        ks_threshold: float = 0.2,
        obs: Optional[Observability] = None,
        clock: Optional[Callable[[], float]] = None,
        cdf_backend: Optional[str] = None,
    ):
        if not 0.0 < ks_threshold <= 1.0:
            raise ConfigurationError(
                f"ks_threshold must be in (0, 1], got {ks_threshold}"
            )
        self.name = name
        self.ks_threshold = ks_threshold
        self.bandwidth = SlidingWindowCDF(
            window=window, backend=cdf_backend, obs=obs
        )
        self.rtt_ms = EWMAPredictor(alpha=0.2)
        self.loss_rate = EWMAPredictor(alpha=0.2)
        self._reference_cdf: Optional[EmpiricalCDF] = None
        self._obs = obs if obs is not None else NULL_OBS
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        # One-step-ahead bandwidth forecast, kept only for the
        # prediction-error metric (EWMA, same alpha as rtt/loss).
        self._bw_forecast: Optional[float] = None

    def bind_observability(
        self,
        obs: Observability,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Attach (or replace) this monitor's observability context."""
        self._obs = obs
        self.bandwidth.bind_observability(obs)
        if clock is not None:
            self._clock = clock

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def observe_bandwidth(self, mbps: float) -> None:
        """Record one available-bandwidth sample."""
        if self._obs.enabled:
            if self._bw_forecast is not None:
                # Relative error with a 1 Mbps floor so a path collapsing
                # to ~0 does not register unbounded ratios.
                error = abs(mbps - self._bw_forecast) / max(
                    self._bw_forecast, 1.0
                )
                self._obs.metrics.histogram(
                    "monitor.prediction_error", _PREDICTION_ERROR_BOUNDS
                ).observe(error)
            self._bw_forecast = (
                mbps
                if self._bw_forecast is None
                else self._bw_forecast + 0.2 * (mbps - self._bw_forecast)
            )
        self.bandwidth.update(mbps)

    def observe_bandwidth_many(self, samples: Iterable[float]) -> None:
        """Record a batch of bandwidth samples."""
        self.bandwidth.extend(samples)

    def observe_rtt(self, rtt_ms: float) -> None:
        """Record one RTT measurement (ms)."""
        if rtt_ms < 0:
            raise ConfigurationError(f"rtt must be >= 0, got {rtt_ms}")
        self.rtt_ms.update(rtt_ms)

    def observe_loss(self, loss_rate: float) -> None:
        """Record one loss-rate measurement in [0, 1]."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1], got {loss_rate}"
            )
        self.loss_rate.update(loss_rate)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether any bandwidth history exists yet."""
        return len(self.bandwidth) > 0

    def cdf(self) -> EmpiricalCDF:
        """Current bandwidth CDF snapshot."""
        return self.bandwidth.snapshot()

    def guaranteed_bandwidth(self, probability: float) -> float:
        """Bandwidth the path sustains with the given probability.

        ``guaranteed_bandwidth(0.95)`` is the level exceeded 95 % of the
        time — the 5th percentile of the observed distribution.
        """
        if not 0.0 < probability < 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1), got {probability}"
            )
        return self.cdf().percentile((1.0 - probability) * 100.0)

    # ------------------------------------------------------------------
    # remap trigger
    # ------------------------------------------------------------------
    def mark_remapped(self) -> None:
        """Snapshot the current CDF as the reference for change detection."""
        old = self._reference_cdf
        self._reference_cdf = self.cdf()
        if self._obs.enabled:
            self._obs.metrics.counter("monitor.cdf_refreshes").inc()
            self._obs.trace.emit(
                self._clock(),
                Category.MONITOR,
                "cdf_refresh",
                path=self.name,
                samples=len(self.bandwidth),
                ks_from_previous=(
                    ks_distance(self._reference_cdf, old)
                    if old is not None
                    else None
                ),
            )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the monitor's mutable state.

        Covers the bandwidth window (arrival order), the RTT/loss EWMAs,
        the reference CDF pinned at the last remap (sorted samples), and
        the forecast the prediction-error metric tracks.  Configuration
        (name, window, thresholds) is not serialized — the restoring
        monitor is constructed from the same config.
        """
        reference = (
            None
            if self._reference_cdf is None
            else [float(v) for v in self._reference_cdf.samples]
        )
        return {
            "bandwidth": self.bandwidth.state_dict(),
            "rtt_ms": self.rtt_ms.state_dict(),
            "loss_rate": self.loss_rate.state_dict(),
            "reference_cdf": reference,
            "bw_forecast": self._bw_forecast,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        import numpy as np

        self.bandwidth.load_state_dict(state["bandwidth"])
        self.rtt_ms.load_state_dict(state["rtt_ms"])
        self.loss_rate.load_state_dict(state["loss_rate"])
        reference = state["reference_cdf"]
        self._reference_cdf = (
            None
            if reference is None
            else EmpiricalCDF.from_sorted(
                np.asarray(reference, dtype=float), copy=True, validate=False
            )
        )
        forecast = state["bw_forecast"]
        self._bw_forecast = None if forecast is None else float(forecast)

    def cdf_changed_significantly(self) -> bool:
        """Whether the distribution drifted beyond ``ks_threshold``."""
        if self._reference_cdf is None:
            return True  # never mapped against this path yet
        ks = ks_distance(self.cdf(), self._reference_cdf)
        shifted = ks > self.ks_threshold
        if shifted and self._obs.enabled:
            self._obs.metrics.counter("monitor.cdf_shifts").inc()
            self._obs.trace.emit(
                self._clock(),
                Category.MONITOR,
                "cdf_shift",
                path=self.name,
                ks_distance=ks,
                threshold=self.ks_threshold,
            )
        return shifted
