"""Throughput sampling: bytes delivered -> bandwidth samples.

The monitoring module measures each path's achieved/available bandwidth in
fixed intervals (0.1–1 s in the paper).  :class:`ThroughputSampler`
accumulates byte deliveries stamped with virtual time and emits one Mbps
sample per elapsed interval, inserting zero samples for idle intervals so
the CDF sees the path's silence too.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.units import mbps_from_bytes


class ThroughputSampler:
    """Aggregates deliveries into fixed-interval bandwidth samples."""

    def __init__(self, dt: float = 0.1, start_time: float = 0.0):
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        self.dt = dt
        self._interval_start = start_time
        self._bytes = 0.0
        self._samples: list[float] = []

    @property
    def samples(self) -> list[float]:
        """Completed interval samples (Mbps), oldest first."""
        return list(self._samples)

    def record(self, now: float, nbytes: float) -> list[float]:
        """Record ``nbytes`` delivered at virtual time ``now``.

        Returns the list of interval samples *completed* by this record
        (possibly empty), so a caller can forward them to a CDF as they
        close.
        """
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if now < self._interval_start:
            raise ConfigurationError(
                f"time went backwards: {now} < {self._interval_start}"
            )
        closed: list[float] = []
        # Close any intervals that fully elapsed before `now`.
        while now >= self._interval_start + self.dt:
            closed.append(mbps_from_bytes(self._bytes, self.dt))
            self._bytes = 0.0
            self._interval_start += self.dt
        self._bytes += nbytes
        self._samples.extend(closed)
        return closed

    def flush(self, now: float) -> list[float]:
        """Close intervals up to ``now`` without recording new bytes."""
        if math.isclose(now, self._interval_start):
            return []
        return self.record(now, 0.0)
