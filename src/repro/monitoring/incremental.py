"""Incremental sliding-window CDF: the monitoring hot path without re-sorts.

The seed implementation of :class:`repro.monitoring.cdf.SlidingWindowCDF`
re-sorted the whole window (O(W log W) plus deque→list→ndarray
conversion) on every update→query cycle — and that cycle drives every
PGOS guarantee read, every KS remap-trigger check, and every
``residual_cdf`` evaluation in the mapping step.  This module maintains
the window *sorted at all times*:

* **insert/evict** — one ``searchsorted`` (O(log W)) locates the slot,
  one C-level slice move shifts the tail; arrival order is tracked in a
  FIFO so the evicted sample is found by value in O(log W) too;
* **queries** — ``evaluate``/``evaluate_strict`` are a single
  ``searchsorted``; ``quantile``/``percentile`` index the sorted buffer
  directly; ``mean``/``std``/``partial_mean_below`` are C-level prefix
  reductions over the already-sorted buffer.

Equivalence is a design invariant, not an aspiration: every query runs
the *same numpy operation on the same sorted array* the batch
:class:`~repro.monitoring.cdf.EmpiricalCDF` would build, so results are
bit-identical (``quantile`` re-implements numpy's linear interpolation
and agrees to the last ulp; the differential property suite in
``tests/property/test_cdf_incremental.py`` pins all of this down).  A
Fenwick-tree variant with incrementally maintained prefix sums was
considered and rejected: sequential partial sums differ from numpy's
pairwise ``ndarray.sum`` in the last ulp, which would break the
byte-identity guarantee the golden regression suite enforces.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Union

import numpy as np

from repro.errors import ConfigurationError


class IncrementalWindowCDF:
    """Sorted-window order statistics under O(log W) + memmove updates.

    Maintains the last ``window`` samples both in arrival order (a FIFO,
    for eviction) and in sorted order (a preallocated ndarray, for
    queries).  All query methods mirror
    :class:`repro.monitoring.cdf.EmpiricalCDF` exactly.
    """

    __slots__ = ("window", "_fifo", "_arr", "_size", "updates", "evictions")

    def __init__(self, window: int = 500):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self.window = window
        self._fifo: deque[float] = deque()
        self._arr = np.empty(window, dtype=float)
        self._size = 0
        #: Lifetime operation counts.  Diagnostic only — excluded from
        #: checkpoints so a resumed run's results stay byte-identical
        #: while its op counters restart from the resume point.
        self.updates = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # window maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        """Whether the history window has filled up."""
        return self._size == self.window

    def update(self, sample: float) -> None:
        """Insert one sample, evicting the oldest when the window is full."""
        if not np.isfinite(sample):
            raise ConfigurationError(f"sample must be finite, got {sample}")
        v = float(sample)
        if v == 0.0:
            v = 0.0  # normalize -0.0 so eviction-by-value is unambiguous
        arr = self._arr
        size = self._size
        if size == self.window:
            old = self._fifo.popleft()
            idx = int(np.searchsorted(arr[:size], old, side="left"))
            arr[idx : size - 1] = arr[idx + 1 : size]
            size -= 1
            self.evictions += 1
        idx = int(np.searchsorted(arr[:size], v, side="right"))
        arr[idx + 1 : size + 1] = arr[idx:size]
        arr[idx] = v
        self._size = size + 1
        self._fifo.append(v)
        self.updates += 1

    def extend(self, samples: Iterable[float]) -> None:
        """Insert many samples in order."""
        for s in samples:
            self.update(s)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def sorted_view(self) -> np.ndarray:
        """Read-only view of the current sorted window."""
        view = self._arr[: self._size].view()
        view.flags.writeable = False
        return view

    def window_values(self) -> list[float]:
        """The window's samples in arrival order (oldest first)."""
        return list(self._fifo)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot: the window in arrival order.

        Arrival order is the complete state — replaying it into a fresh
        instance performs at most ``window`` inserts and no evictions,
        reproducing the sorted buffer bit-identically (same values, same
        insertion ties).
        """
        return {"window": self.window, "values": self.window_values()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replacing all samples)."""
        from repro.errors import CheckpointError

        if int(state["window"]) != self.window:
            raise CheckpointError(
                f"window mismatch: have {self.window}, checkpoint has "
                f"{state['window']}"
            )
        self._fifo.clear()
        self._size = 0
        self.extend(float(v) for v in state["values"])

    def snapshot(self):
        """Freeze the current window as an immutable ``EmpiricalCDF``.

        The sorted buffer is copied (the incremental structure keeps
        mutating) but never re-sorted — construction is O(W) with a
        memcpy constant.
        """
        from repro.monitoring.cdf import EmpiricalCDF

        if self._size == 0:
            raise ConfigurationError("no samples observed yet")
        return EmpiricalCDF.from_sorted(
            self._arr[: self._size], copy=True, validate=False
        )

    # ------------------------------------------------------------------
    # queries (mirroring EmpiricalCDF bit-for-bit)
    # ------------------------------------------------------------------
    def _require_samples(self) -> int:
        if self._size == 0:
            raise ConfigurationError("no samples observed yet")
        return self._size

    @property
    def n(self) -> int:
        """Number of samples currently in the window."""
        return self._size

    def evaluate(self, b: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """``F(b)``: fraction of samples ``<= b``."""
        n = self._require_samples()
        result = np.searchsorted(self._arr[:n], b, side="right") / n
        if np.isscalar(b):
            return float(result)
        return result

    __call__ = evaluate

    def evaluate_strict(
        self, b: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """``F(b-)``: fraction of samples strictly below ``b``."""
        n = self._require_samples()
        result = np.searchsorted(self._arr[:n], b, side="left") / n
        if np.isscalar(b):
            return float(result)
        return result

    def quantile(self, p: float) -> float:
        """Inverse CDF at probability ``p`` in [0, 1].

        Linear interpolation between order statistics, matching
        ``np.percentile``'s default method on the same sorted array.
        """
        n = self._require_samples()
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        arr = self._arr
        pos = p * (n - 1)
        lo = int(pos)
        if lo + 1 >= n:
            return float(arr[n - 1])
        frac = pos - lo
        lo_v = arr[lo]
        diff = arr[lo + 1] - lo_v
        # numpy's _lerp switches to the upper-anchored form at t >= 0.5
        # for precision; mirror it or ~1% of quantiles differ in the
        # last ulp from np.percentile.
        if frac >= 0.5:
            return float(arr[lo + 1] - diff * (1.0 - frac))
        return float(lo_v + diff * frac)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"q must be in [0, 100], got {q}")
        return self.quantile(q / 100.0)

    def mean(self) -> float:
        """Sample mean (identical reduction to ``EmpiricalCDF.mean``)."""
        n = self._require_samples()
        return float(self._arr[:n].mean())

    def std(self) -> float:
        """Sample standard deviation."""
        n = self._require_samples()
        return float(self._arr[:n].std())

    def min(self) -> float:
        self._require_samples()
        return float(self._arr[0])

    def max(self) -> float:
        n = self._require_samples()
        return float(self._arr[n - 1])

    def partial_mean_below(self, b0: float) -> float:
        """``M[b0]``: unconditional partial expectation ``E[b * 1{b <= b0}]``."""
        n = self._require_samples()
        idx = int(np.searchsorted(self._arr[:n], b0, side="right"))
        if idx == 0:
            return 0.0
        return float(self._arr[:idx].sum()) / n

    def ks_distance(self, other) -> float:
        """KS distance to another window/CDF without sorting a grid.

        ``other`` may be another :class:`IncrementalWindowCDF` or an
        ``EmpiricalCDF``.  The supremum of ``|F_a - F_b|`` over the union
        of sample points equals the supremum over the *concatenation*
        (duplicates cannot change a max), so no sort or dedup is needed.
        """
        n = self._require_samples()
        mine = self._arr[:n]
        theirs = other.sorted_view() if hasattr(other, "sorted_view") else (
            other.samples
        )
        grid = np.concatenate([mine, theirs])
        fa = np.searchsorted(mine, grid, side="right") / n
        fb = np.searchsorted(theirs, grid, side="right") / theirs.size
        return float(np.max(np.abs(fa - fb)))
