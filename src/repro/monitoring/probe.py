"""Active-probing measurement model.

The paper's monitoring measures available bandwidth with the
pathload-family techniques of Jain & Dovrolis [19, 20]; measurements are
*estimates*, not truth.  The fluid experiments feed schedulers the true
per-interval availability (a perfect probe); this module supplies the
imperfect version so the sensitivity of PGOS's guarantees to measurement
quality can be studied:

* multiplicative noise with coefficient of variation ``noise_cv``
  (probing error scales with the rate being measured);
* a systematic ``bias`` factor (probing tends to underestimate under
  bursty cross traffic);
* quantization to the probe's rate resolution (pathload reports a rate
  *range*; we model its grid).

``benchmarks/bench_ablations.py`` and the measurement-noise sweep show
the attainment degrading gracefully as probes get worse — and that the
percentile predictor tolerates far more measurement noise than the mean
predictor before its placements go wrong.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams


class ProbingEstimator:
    """Turns true availability series into probe-estimated ones.

    Parameters
    ----------
    noise_cv:
        Coefficient of variation of the multiplicative estimation noise
        (0 = perfect probe; Jain & Dovrolis report ~0.05-0.15 in
        practice).
    bias:
        Multiplicative systematic error (0.9 = 10 % underestimation).
    resolution_mbps:
        Estimates are quantized to this grid (0 disables quantization).
    smoothing_intervals:
        Probes integrate over this many measurement intervals (moving
        average).  This is the error mode that actually misleads
        percentile-based placement: smoothing smears short bandwidth dips
        away, *overestimating the lower quantiles of noisy paths* while
        barely touching steady ones — multiplicative noise and bias, by
        contrast, preserve the relative ordering of path distributions.
    """

    def __init__(
        self,
        noise_cv: float = 0.1,
        bias: float = 1.0,
        resolution_mbps: float = 0.0,
        smoothing_intervals: int = 1,
    ):
        if noise_cv < 0:
            raise ConfigurationError(f"noise_cv must be >= 0, got {noise_cv}")
        if bias <= 0:
            raise ConfigurationError(f"bias must be > 0, got {bias}")
        if resolution_mbps < 0:
            raise ConfigurationError(
                f"resolution must be >= 0, got {resolution_mbps}"
            )
        if smoothing_intervals < 1:
            raise ConfigurationError(
                f"smoothing_intervals must be >= 1, got {smoothing_intervals}"
            )
        self.noise_cv = noise_cv
        self.bias = bias
        self.resolution_mbps = resolution_mbps
        self.smoothing_intervals = smoothing_intervals

    def estimate_series(
        self, true_mbps: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Probe estimates for a whole availability series."""
        x = np.asarray(true_mbps, dtype=float)
        if self.smoothing_intervals > 1 and x.size >= self.smoothing_intervals:
            kernel = np.ones(self.smoothing_intervals) / self.smoothing_intervals
            # Causal moving average with edge padding: the probe reports
            # the mean of the last few intervals.
            padded = np.concatenate(
                [np.full(self.smoothing_intervals - 1, x[0]), x]
            )
            x = np.convolve(padded, kernel, mode="valid")
        estimates = x * self.bias
        if self.noise_cv > 0:
            estimates = estimates * (
                1.0 + self.noise_cv * rng.standard_normal(x.size)
            )
        estimates = np.clip(estimates, 0.0, None)
        if self.resolution_mbps > 0:
            estimates = (
                np.round(estimates / self.resolution_mbps)
                * self.resolution_mbps
            )
        return estimates

    def perturb_realization(
        self, available: dict[str, np.ndarray], seed: int
    ) -> dict[str, np.ndarray]:
        """Probe-estimate every path of a realization (deterministic)."""
        streams = RandomStreams(seed)
        return {
            path: self.estimate_series(
                series, streams.fresh(f"probe/{path}")
            )
            for path, series in available.items()
        }
