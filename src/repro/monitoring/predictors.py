"""Bandwidth predictors.

The paper contrasts two prediction philosophies:

* **average predictors** (MA / SMA / EWMA, and AR-family models) predict
  the *value* of bandwidth in the next interval — and err by ~20 % because
  short-timescale available bandwidth is mostly IID noise;
* the **percentile predictor** predicts a *level the bandwidth will exceed
  with given probability* — a question the near-IID structure answers well
  (< 4 % failure in Figure 4).

All predictors share a tiny online API (``update`` / ``predict``) plus a
vectorized ``predict_series`` used by the Figure-4 experiment to score
thousands of predictions at once.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError


class Predictor:
    """Online one-step-ahead predictor interface."""

    #: Human-readable name used in reports.
    name: str = "predictor"

    def update(self, sample: float) -> None:
        """Observe one bandwidth sample."""
        raise NotImplementedError

    def predict(self) -> float:
        """Predict the next sample (or guarantee level, for percentile)."""
        raise NotImplementedError

    @property
    def ready(self) -> bool:
        """Whether enough history has been observed to predict."""
        raise NotImplementedError

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        """One-step-ahead predictions for ``series``.

        ``result[i]`` is the prediction for ``series[i]`` using samples
        ``series[:i]``; entries before the predictor is ready are NaN.
        Subclasses override this with vectorized implementations.
        """
        x = np.asarray(series, dtype=float)
        out = np.full(x.size, np.nan)
        for i in range(x.size):
            if self.ready:
                out[i] = self.predict()
            self.update(x[i])
        return out


class MovingAveragePredictor(Predictor):
    """MA(w): mean of the last ``window`` samples."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.name = f"MA({window})"
        self._buffer: deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def update(self, sample: float) -> None:
        if len(self._buffer) == self.window:
            self._sum -= self._buffer[0]
        self._buffer.append(float(sample))
        self._sum += float(sample)

    @property
    def ready(self) -> bool:
        return len(self._buffer) == self.window

    def predict(self) -> float:
        if not self._buffer:
            raise ConfigurationError("no samples observed yet")
        return self._sum / len(self._buffer)

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        x = np.asarray(series, dtype=float)
        out = np.full(x.size, np.nan)
        if x.size > self.window:
            csum = np.concatenate([[0.0], np.cumsum(x)])
            means = (csum[self.window :] - csum[: -self.window]) / self.window
            out[self.window :] = means[:-1]
        for v in x:
            self.update(v)
        return out


class EWMAPredictor(Predictor):
    """Exponentially weighted moving average with smoothing ``alpha``."""

    def __init__(self, alpha: float = 0.25):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.name = f"EWMA({alpha})"
        self._value: float | None = None

    def update(self, sample: float) -> None:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * float(sample) + (1 - self.alpha) * self._value

    @property
    def ready(self) -> bool:
        return self._value is not None

    def predict(self) -> float:
        if self._value is None:
            raise ConfigurationError("no samples observed yet")
        return self._value

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        x = np.asarray(series, dtype=float)
        out = np.full(x.size, np.nan)
        value = self._value
        for i in range(x.size):
            if value is not None:
                out[i] = value
            value = x[i] if value is None else self.alpha * x[i] + (1 - self.alpha) * value
        self._value = value
        return out

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (the EWMA value is the only state)."""
        return {"value": self._value}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        value = state["value"]
        self._value = None if value is None else float(value)


class SlidingMedianPredictor(Predictor):
    """SMA-style robust predictor: median of the last ``window`` samples.

    The paper's "SMA" — a smoothed/robust average variant; the median makes
    it resistant to heavy-tail bursts but it still predicts a *central*
    value and therefore shares the ~20 % relative error of mean predictors.
    """

    def __init__(self, window: int = 10):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.name = f"SMA({window})"
        self._buffer: deque[float] = deque(maxlen=window)

    def update(self, sample: float) -> None:
        self._buffer.append(float(sample))

    @property
    def ready(self) -> bool:
        return len(self._buffer) == self.window

    def predict(self) -> float:
        if not self._buffer:
            raise ConfigurationError("no samples observed yet")
        return float(np.median(self._buffer))

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        x = np.asarray(series, dtype=float)
        out = np.full(x.size, np.nan)
        if x.size > self.window:
            windows = np.lib.stride_tricks.sliding_window_view(x, self.window)
            medians = np.median(windows, axis=1)
            out[self.window :] = medians[:-1]
        for v in x:
            self.update(v)
        return out


class AR1Predictor(Predictor):
    """First-order autoregressive predictor fitted over a sliding window.

    Predicts ``x_{t+1} = mean + phi * (x_t - mean)`` with ``phi`` the lag-1
    autocorrelation of the window.  Representative of the AR/ARMA family
    the paper cites ([34]): when the signal is mostly IID, ``phi`` is close
    to 0 and AR(1) degenerates to the window mean.
    """

    def __init__(self, window: int = 50):
        if window < 4:
            raise ConfigurationError(f"window must be >= 4, got {window}")
        self.window = window
        self.name = f"AR1({window})"
        self._buffer: deque[float] = deque(maxlen=window)

    def update(self, sample: float) -> None:
        self._buffer.append(float(sample))

    @property
    def ready(self) -> bool:
        return len(self._buffer) == self.window

    def predict(self) -> float:
        if len(self._buffer) < 2:
            raise ConfigurationError("need >= 2 samples")
        x = np.asarray(self._buffer)
        mean = x.mean()
        centered = x - mean
        denom = float(np.dot(centered, centered))
        phi = 0.0 if denom == 0 else float(
            np.dot(centered[:-1], centered[1:]) / denom
        )
        phi = float(np.clip(phi, -0.99, 0.99))
        return float(mean + phi * (x[-1] - mean))


class PercentilePredictor(Predictor):
    """The paper's statistical predictor.

    Maintains the last ``window`` samples and predicts the ``q``-th
    percentile of their distribution — a bandwidth level the path will
    exceed with probability roughly ``1 - q/100`` in the near future.  The
    *claim* being made is different in kind from the average predictors':
    "bandwidth will be at least X" rather than "bandwidth will be X".
    """

    def __init__(self, q: float = 10.0, window: int = 500):
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"q must be in [0, 100], got {q}")
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self.q = q
        self.window = window
        self.name = f"P{q:g}({window})"
        self._buffer: deque[float] = deque(maxlen=window)

    def update(self, sample: float) -> None:
        self._buffer.append(float(sample))

    @property
    def ready(self) -> bool:
        return len(self._buffer) == self.window

    def predict(self) -> float:
        if not self._buffer:
            raise ConfigurationError("no samples observed yet")
        return float(np.percentile(self._buffer, self.q))

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        x = np.asarray(series, dtype=float)
        out = np.full(x.size, np.nan)
        if x.size > self.window:
            windows = np.lib.stride_tricks.sliding_window_view(x, self.window)
            percentiles = np.percentile(windows, self.q, axis=1)
            out[self.window :] = percentiles[:-1]
        for v in x:
            self.update(v)
        return out


def default_average_predictors() -> list[Predictor]:
    """The average-predictor lineup of Figure 4: MA, EWMA, and SMA."""
    return [
        MovingAveragePredictor(window=10),
        EWMAPredictor(alpha=0.25),
        SlidingMedianPredictor(window=10),
    ]
