"""Struct-of-arrays state for the vectorized delivery backend.

:class:`BatchState` holds every active stream's hot-loop state as
columnar numpy arrays — backlog bytes, precomputed arrival/limit
constants, guarantee thresholds, delivered-byte and shortfall counters,
and the full per-interval delivered-throughput history — so one
delivery step touches a handful of array operations instead of O(N)
Python objects.

Design constraints (they are what make the backend provable):

* **Stable indirection.**  A stream name maps to one *row*; rows are
  recycled through a LIFO free list when streams close, and growing
  capacity never moves live rows.  Monotone ``stream_id`` allocation,
  trace join keys, and checkpoint round trips therefore survive
  unchanged: the row number is an internal detail no output depends on.
* **Scalar-faithful ordering.**  ``names()`` iterates streams in the
  exact insertion order the scalar backend's ``_backlog_bytes`` dict
  would have (insert on open, delete on close, reopened streams move to
  the end).  Checkpoint payloads serialize dicts *without* sorting —
  iteration order is part of the simulation's state — so this ordering
  is load-bearing, not cosmetic.
* **Precomputed constants.**  Per-stream constants that the scalar loop
  recomputes every interval (``bytes_in_interval(demand, dt)``, the
  buffer cap, ``required * 0.999``) are evaluated once at open time
  with the *same expression order*, so every per-step comparison sees
  bit-identical floats.

The history matrix is allocated once at full column width (one column
per post-warmup interval of the realization): a delivery step writes
one column for the open rows, a close slices the stream's lifetime out
of its row, and unwritten columns are the zeros an idle interval would
have recorded anyway.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.core.spec import StreamSpec
from repro.errors import ConfigurationError
from repro.units import bytes_in_interval

__all__ = ["BatchState"]

#: Initial row capacity; grows by doubling.
_INITIAL_CAPACITY = 64


class BatchState:
    """Columnar per-stream state with free-list row recycling.

    Parameters
    ----------
    n_columns:
        Width of the delivered-history matrix: one column per delivery
        interval the realization can still run (``n_intervals -
        start_k`` for a service).
    dt:
        Delivery interval length in seconds (fixes the arrival-bytes
        column).
    buffer_seconds:
        Sender-buffer bound (fixes the backlog-limit column).
    """

    def __init__(
        self,
        n_columns: int,
        dt: float,
        buffer_seconds: float,
        capacity: int = _INITIAL_CAPACITY,
    ):
        if n_columns < 0:
            raise ConfigurationError(
                f"n_columns must be >= 0, got {n_columns}"
            )
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.n_columns = n_columns
        self.dt = dt
        self.buffer_seconds = buffer_seconds
        self._capacity = capacity
        self._alloc(capacity)
        #: name -> row, in scalar ``_backlog_bytes`` insertion order.
        self._rows: dict[str, int] = {}
        #: Recycled rows, popped LIFO (deterministic reuse).
        self._free: list[int] = []
        #: Next never-used row when the free list is empty.
        self._high = 0
        #: Lifetime history of *closed* streams (frozen at close).
        self._frozen: dict[str, np.ndarray] = {}
        #: Memoized ``rows_in_order()`` result (membership-keyed).
        self._order_cache: Optional[np.ndarray] = None

    def _alloc(self, capacity: int) -> None:
        self.demand_mbps = np.full(capacity, np.nan)
        self.arrival_bytes = np.zeros(capacity)
        self.limit_bytes = np.zeros(capacity)
        self.required_mbps = np.full(capacity, np.nan)
        #: ``required_mbps * 0.999`` (NaN when no requirement): the
        #: per-window shortfall threshold, precomputed once.
        self.threshold_mbps = np.full(capacity, np.nan)
        self.backlog_bytes = np.zeros(capacity)
        #: Cumulative bytes delivered to each stream (telemetry).
        self.delivered_bytes = np.zeros(capacity)
        #: Windows in which the stream missed its guarantee (telemetry).
        self.shortfall_windows = np.zeros(capacity, dtype=np.int64)
        self.stream_id = np.zeros(capacity, dtype=np.int64)
        #: History column at which the stream opened.
        self.opened_col = np.zeros(capacity, dtype=np.int64)
        self.history = np.zeros((capacity, self.n_columns))

    def _grow(self) -> None:
        old = self._capacity
        new = old * 2
        for field in (
            "demand_mbps",
            "arrival_bytes",
            "limit_bytes",
            "required_mbps",
            "threshold_mbps",
            "backlog_bytes",
            "delivered_bytes",
            "shortfall_windows",
            "stream_id",
            "opened_col",
        ):
            column = getattr(self, field)
            grown = np.empty(new, dtype=column.dtype)
            if column.dtype == np.float64 and field in (
                "demand_mbps",
                "required_mbps",
                "threshold_mbps",
            ):
                grown[old:] = np.nan
            else:
                grown[old:] = 0
            grown[:old] = column
            setattr(self, field, grown)
        history = np.zeros((new, self.n_columns))
        history[:old] = self.history
        self.history = history
        self._capacity = new

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def n_open(self) -> int:
        return len(self._rows)

    @property
    def capacity(self) -> int:
        return self._capacity

    def row(self, name: str) -> int:
        """Row index of one open stream."""
        return self._rows[name]

    def names(self) -> Iterator[str]:
        """Open stream names in scalar backlog-dict insertion order."""
        return iter(self._rows)

    def rows_in_order(self) -> np.ndarray:
        """Row indices of all open streams, insertion-ordered."""
        if self._order_cache is None:
            self._order_cache = np.fromiter(
                self._rows.values(), dtype=np.int64, count=len(self._rows)
            )
        return self._order_cache

    def open(self, spec: StreamSpec, stream_id: int, opened_col: int) -> int:
        """Allocate (or recycle) a row for a newly opened stream."""
        if spec.name in self._rows:
            raise ConfigurationError(
                f"stream {spec.name!r} already has a row"
            )
        if self._free:
            row = self._free.pop()
        else:
            if self._high >= self._capacity:
                self._grow()
            row = self._high
            self._high += 1
        demand = spec.demand_mbps
        if demand is None:
            self.demand_mbps[row] = np.nan
            self.arrival_bytes[row] = 0.0
            self.limit_bytes[row] = 0.0
        else:
            self.demand_mbps[row] = demand
            # Same call order as the scalar loop's per-step recompute.
            self.arrival_bytes[row] = bytes_in_interval(demand, self.dt)
            self.limit_bytes[row] = bytes_in_interval(
                demand, self.buffer_seconds
            )
        required = spec.required_mbps
        if required is None:
            self.required_mbps[row] = np.nan
            self.threshold_mbps[row] = np.nan
        else:
            self.required_mbps[row] = required
            self.threshold_mbps[row] = required * 0.999
        self.backlog_bytes[row] = 0.0
        self.delivered_bytes[row] = 0.0
        self.shortfall_windows[row] = 0
        self.stream_id[row] = stream_id
        self.opened_col[row] = opened_col
        self._rows[spec.name] = row
        self._order_cache = None
        # A reopened name starts a fresh history, as the scalar backend
        # resets its ``_delivered`` list.
        self._frozen.pop(spec.name, None)
        return row

    def close(self, name: str, cur_col: int) -> int:
        """Free a stream's row; its lifetime history is frozen for reports."""
        row = self._rows.pop(name, None)
        if row is None:
            raise ConfigurationError(f"stream {name!r} has no row")
        start = int(self.opened_col[row])
        self._frozen[name] = self.history[row, start:cur_col].copy()
        self.backlog_bytes[row] = 0.0
        self._free.append(row)
        self._order_cache = None
        return row

    # ------------------------------------------------------------------
    # scalar-faithful views (reports / checkpoints)
    # ------------------------------------------------------------------
    def history_array(self, name: str, cur_col: int) -> np.ndarray:
        """Delivered-mbps series for one open or closed stream."""
        row = self._rows.get(name)
        if row is not None:
            start = int(self.opened_col[row])
            return self.history[row, start:cur_col].copy()
        frozen = self._frozen.get(name)
        if frozen is not None:
            return frozen
        # Stream closed before a checkpoint restore: the scalar backend
        # restores those with an empty record too.
        return np.zeros(0)

    def backlog_items(self) -> Iterator[tuple[str, float]]:
        """(name, backlog_bytes) pairs in scalar dict order."""
        for name, row in self._rows.items():
            yield name, float(self.backlog_bytes[row])

    def set_backlog(self, name: str, value: float) -> None:
        self.backlog_bytes[self._rows[name]] = value

    def load_history(self, name: str, series: np.ndarray) -> None:
        """Restore one open stream's delivered history (checkpoint load)."""
        row = self._rows[name]
        start = int(self.opened_col[row])
        stop = start + len(series)
        if stop > self.n_columns:
            raise ConfigurationError(
                f"history for {name!r} overruns the realization: "
                f"{len(series)} samples from column {start} "
                f"(width {self.n_columns})"
            )
        self.history[row, start:stop] = series

    def freeze_empty(self, name: str) -> None:
        """Record an empty lifetime for a closed stream (restore path)."""
        self._frozen[name] = np.zeros(0)

    def delivered_bytes_of(self, name: str) -> float:
        """Cumulative delivered bytes of one open stream (telemetry)."""
        return float(self.delivered_bytes[self._rows[name]])

    def shortfall_windows_of(self, name: str) -> int:
        """Guarantee-miss window count of one open stream (telemetry)."""
        return int(self.shortfall_windows[self._rows[name]])

    def reset(self, n_columns: Optional[int] = None) -> None:
        """Drop every row and history (checkpoint restore onto fresh state)."""
        if n_columns is not None:
            self.n_columns = n_columns
        self._capacity = max(_INITIAL_CAPACITY, self._capacity)
        self._alloc(self._capacity)
        self._rows = {}
        self._free = []
        self._high = 0
        self._frozen = {}
        self._order_cache = None
