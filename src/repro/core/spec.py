"""Stream utility specifications.

Applications specify stream utility either as a minimum bandwidth or as a
Window-Constraint (Section 5.1, following DWCS [31]): ``y`` consecutive
packet arrivals per fixed window of which at least ``x`` must be serviced.
Both forms are augmented with the paper's probabilistic requirement: the
constraint must hold with some large probability ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import DEFAULT_PACKET_SIZE, packets_per_window, rate_of_packets


@dataclass(frozen=True)
class WindowConstraint:
    """DWCS-style constraint: serve >= ``x`` of every ``y`` packets."""

    x: int
    y: int

    def __post_init__(self):
        if self.y < 1:
            raise ConfigurationError(f"y must be >= 1, got {self.y}")
        if not 0 <= self.x <= self.y:
            raise ConfigurationError(
                f"x must be in [0, y={self.y}], got {self.x}"
            )

    @property
    def fraction(self) -> float:
        """Minimum fraction of packets that must be serviced, ``x / y``."""
        return self.x / self.y


@dataclass(frozen=True)
class StreamSpec:
    """Utility specification for one application stream.

    Attributes
    ----------
    name:
        Stream identity (unique within an experiment).
    required_mbps:
        Minimum bandwidth the stream needs.  ``None`` for purely
        best-effort/elastic streams.
    probability:
        The paper's ``P``: the minimum bandwidth must be received at least
        ``100 * P`` % of the time.  ``None`` means best-effort.
    elastic:
        Elastic streams absorb any leftover bandwidth beyond
        ``required_mbps`` (GridFTP's DT3, SmartPointer's Bond2).
    nominal_mbps:
        For elastic streams, the nominal demand used as a fair-queuing
        weight by the baselines (an elastic source can always fill this
        much).  Defaults to ``required_mbps`` when unset.
    packet_size:
        Packet size in bytes used to carve the stream into schedulable
        units.
    window_constraint:
        Optional DWCS-style (x, y) constraint; ``x`` packets per window is
        derived from ``required_mbps`` when absent.
    max_violation_rate:
        Optional violation-bound requirement: maximum acceptable expected
        fraction of packets missing their deadline per window (Lemma 2
        guarantees).  ``None`` selects purely probabilistic guarantees.
    max_rtt_ms:
        Optional RTT ceiling: the stream may only be mapped to paths whose
        monitored RTT stays below this (at the stream's probability, or
        95 % for best-effort streams).  Control/steering traffic uses
        this (Section 1's "stronger guarantees for control traffic").
    max_loss_rate:
        Optional loss-rate ceiling, analogous (the paper's future-work
        "message loss rate service guarantees").
    """

    name: str
    required_mbps: Optional[float] = None
    probability: Optional[float] = None
    elastic: bool = False
    nominal_mbps: Optional[float] = None
    packet_size: int = DEFAULT_PACKET_SIZE
    window_constraint: Optional[WindowConstraint] = None
    max_violation_rate: Optional[float] = None
    max_rtt_ms: Optional[float] = None
    max_loss_rate: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("stream name must be non-empty")
        if self.required_mbps is not None and self.required_mbps <= 0:
            raise ConfigurationError(
                f"required_mbps must be positive, got {self.required_mbps}"
            )
        if self.probability is not None and not 0.0 < self.probability < 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1), got {self.probability}"
            )
        if self.probability is not None and self.required_mbps is None:
            raise ConfigurationError(
                f"stream {self.name!r}: a probability requires required_mbps"
            )
        if self.packet_size <= 0:
            raise ConfigurationError(
                f"packet_size must be positive, got {self.packet_size}"
            )
        if self.nominal_mbps is not None and self.nominal_mbps <= 0:
            raise ConfigurationError(
                f"nominal_mbps must be positive, got {self.nominal_mbps}"
            )
        if self.max_violation_rate is not None and not (
            0.0 <= self.max_violation_rate < 1.0
        ):
            raise ConfigurationError(
                f"max_violation_rate must be in [0, 1), got "
                f"{self.max_violation_rate}"
            )
        if not self.elastic and self.required_mbps is None:
            raise ConfigurationError(
                f"stream {self.name!r}: non-elastic streams need required_mbps"
            )
        if self.max_rtt_ms is not None and self.max_rtt_ms <= 0:
            raise ConfigurationError(
                f"max_rtt_ms must be positive, got {self.max_rtt_ms}"
            )
        if self.max_loss_rate is not None and not (
            0.0 <= self.max_loss_rate <= 1.0
        ):
            raise ConfigurationError(
                f"max_loss_rate must be in [0, 1], got {self.max_loss_rate}"
            )

    # ------------------------------------------------------------------
    # serialization (checkpointing / spec transport)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON form of the spec (exact field round trip)."""
        wc = self.window_constraint
        return {
            "name": self.name,
            "required_mbps": self.required_mbps,
            "probability": self.probability,
            "elastic": self.elastic,
            "nominal_mbps": self.nominal_mbps,
            "packet_size": self.packet_size,
            "window_constraint": None if wc is None else [wc.x, wc.y],
            "max_violation_rate": self.max_violation_rate,
            "max_rtt_ms": self.max_rtt_ms,
            "max_loss_rate": self.max_loss_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamSpec":
        """Inverse of :meth:`to_dict`."""
        wc = data.get("window_constraint")
        return cls(
            name=data["name"],
            required_mbps=data.get("required_mbps"),
            probability=data.get("probability"),
            elastic=bool(data.get("elastic", False)),
            nominal_mbps=data.get("nominal_mbps"),
            packet_size=int(data.get("packet_size", DEFAULT_PACKET_SIZE)),
            window_constraint=(
                None if wc is None else WindowConstraint(int(wc[0]), int(wc[1]))
            ),
            max_violation_rate=data.get("max_violation_rate"),
            max_rtt_ms=data.get("max_rtt_ms"),
            max_loss_rate=data.get("max_loss_rate"),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def guaranteed(self) -> bool:
        """Whether this stream carries a probabilistic guarantee."""
        return self.probability is not None

    @property
    def weight(self) -> float:
        """Fair-queuing weight: target rate (or nominal rate if elastic)."""
        if self.required_mbps is not None and not self.elastic:
            return self.required_mbps
        if self.nominal_mbps is not None:
            return self.nominal_mbps
        if self.required_mbps is not None:
            return self.required_mbps
        raise ConfigurationError(
            f"stream {self.name!r}: elastic stream needs nominal_mbps for a "
            "fair-queuing weight"
        )

    @property
    def demand_mbps(self) -> Optional[float]:
        """Arrival rate: the stream's offered load per second.

        ``None`` means unbounded (an elastic source that always has data).
        """
        if self.elastic:
            return None
        return self.required_mbps

    def packets_in_window(self, tw: float) -> int:
        """The paper's ``x_i``: packets to service per scheduling window.

        For guaranteed streams this derives from ``required_mbps`` (or the
        explicit window constraint); for purely elastic streams it falls
        back to ``nominal_mbps`` — the pacing quantum their producers use.
        """
        if self.window_constraint is not None and self.required_mbps is None:
            return self.window_constraint.x
        rate = self.required_mbps
        if rate is None:
            rate = self.nominal_mbps
        if rate is None:
            raise ConfigurationError(
                f"stream {self.name!r} has no bandwidth requirement"
            )
        return packets_per_window(rate, self.packet_size, tw)

    def rate_from_packets(self, packets: float, tw: float) -> float:
        """Mbps corresponding to ``packets`` packets per window."""
        return rate_of_packets(packets, self.packet_size, tw)
