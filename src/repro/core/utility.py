"""Utility-based stream selection under overload.

The paper motivates IQ-Paths partly with enterprise applications that
"couple data transport and manipulation with application-level
expressions of utility or cost".  When the full stream set is not
admittable, *something* must give; this module chooses what: it selects
the subset of guaranteed streams that maximizes total utility subject to
the overlay's statistical capacity, leaving the rest to run best-effort
(or be renegotiated via the admission upcall).

The selection is a greedy utility-density heuristic (utility per Mbps of
guaranteed demand, admitted in decreasing order, skipping streams that no
longer fit).  For the small stream counts of the paper's workloads the
greedy answer matches the optimal knapsack one; the exact solver is a
deliberate non-goal (the paper itself rejects the MILP formulation of
split selection as impractical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import AdmissionError, ConfigurationError
from repro.core.mapping import PathQoSEstimate, ResourceMapping, compute_mapping
from repro.core.spec import StreamSpec
from repro.monitoring.cdf import EmpiricalCDF


@dataclass(frozen=True)
class UtilitySelection:
    """Outcome of utility-based selection.

    ``admitted`` streams carry guarantees under ``mapping``; ``demoted``
    streams did not fit and should run best-effort or renegotiate.
    """

    admitted: tuple[str, ...]
    demoted: tuple[str, ...]
    total_utility: float
    mapping: ResourceMapping | None = None
    utilities: dict[str, float] = field(default_factory=dict)


def select_streams_by_utility(
    specs: Sequence[StreamSpec],
    utilities: Mapping[str, float],
    cdfs: Mapping[str, EmpiricalCDF],
    tw: float = 1.0,
    qos: Mapping[str, PathQoSEstimate] | None = None,
) -> UtilitySelection:
    """Admit the utility-maximizing subset of guaranteed streams.

    Parameters
    ----------
    specs:
        All streams.  Elastic/best-effort streams are always carried (they
        consume no guaranteed capacity) and excluded from selection.
    utilities:
        Application-level utility per guaranteed stream (higher = more
        valuable).  Every guaranteed stream must have an entry.
    cdfs, tw, qos:
        As for :func:`repro.core.mapping.compute_mapping`.
    """
    guaranteed = [
        s for s in specs if s.guaranteed or s.max_violation_rate is not None
    ]
    elastic = [s for s in specs if s not in guaranteed]
    missing = [s.name for s in guaranteed if s.name not in utilities]
    if missing:
        raise ConfigurationError(
            f"missing utilities for guaranteed streams: {missing}"
        )
    for name, value in utilities.items():
        if value < 0:
            raise ConfigurationError(
                f"utility must be >= 0, got {value} for {name!r}"
            )

    def density(spec: StreamSpec) -> float:
        demand = spec.required_mbps or spec.weight
        return utilities[spec.name] / max(demand, 1e-9)

    ordered = sorted(guaranteed, key=density, reverse=True)
    admitted: list[StreamSpec] = []
    demoted: list[str] = []
    for spec in ordered:
        trial = admitted + [spec]
        try:
            compute_mapping(trial + elastic, cdfs, tw, qos=qos)
        except AdmissionError:
            demoted.append(spec.name)
            continue
        admitted.append(spec)

    mapping = None
    if admitted or elastic:
        mapping = compute_mapping(admitted + elastic, cdfs, tw, qos=qos)
    return UtilitySelection(
        admitted=tuple(s.name for s in admitted),
        demoted=tuple(demoted),
        total_utility=sum(utilities[name] for name in (s.name for s in admitted)),
        mapping=mapping,
        utilities=dict(utilities),
    )
