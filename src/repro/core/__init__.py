"""The paper's primary contribution.

* :mod:`repro.core.spec` — stream utility specifications (required
  bandwidth with probability P, window constraints).
* :mod:`repro.core.guarantees` — the statistical guarantees of Section 5.1
  (Lemma 1: probabilistic; Lemma 2: violation bound).
* :mod:`repro.core.admission` — admission control with the paper's upcall
  semantics.
* :mod:`repro.core.mapping` — utility-based resource mapping of streams to
  overlay paths (Section 5.2.2).
* :mod:`repro.core.vectors` — virtual deadlines and the V_P / V_S
  scheduling vectors (the worked example of Section 5.2.2 is reproduced
  exactly in the tests).
* :mod:`repro.core.pgos` — the PGOS scheduler: Figure 7's loop with the
  Table 1 precedence rules.
* :mod:`repro.core.scheduler` — the scheduler interface shared with the
  baselines and the per-path bandwidth-sharing model.
"""

from repro.core.spec import StreamSpec, WindowConstraint
from repro.core.guarantees import (
    feasible_with_probability,
    probabilistic_guarantee,
    violation_bound,
)
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.mapping import (
    PathQoSEstimate,
    ResourceMapping,
    best_effort_mapping,
    compute_mapping,
    even_split_mapping,
)
from repro.core.utility import UtilitySelection, select_streams_by_utility
from repro.core.vectors import Schedule, build_schedule, path_lookup_vector, stream_schedule_vector
from repro.core.pgos import PGOSScheduler
from repro.core.scheduler import PathShareRequest, SchedulerBase, water_fill

__all__ = [
    "StreamSpec",
    "WindowConstraint",
    "probabilistic_guarantee",
    "violation_bound",
    "feasible_with_probability",
    "AdmissionController",
    "AdmissionDecision",
    "ResourceMapping",
    "PathQoSEstimate",
    "compute_mapping",
    "best_effort_mapping",
    "even_split_mapping",
    "UtilitySelection",
    "select_streams_by_utility",
    "Schedule",
    "build_schedule",
    "path_lookup_vector",
    "stream_schedule_vector",
    "PGOSScheduler",
    "SchedulerBase",
    "PathShareRequest",
    "water_fill",
]
