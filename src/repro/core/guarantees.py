"""The statistical guarantees of Section 5.1.

Given a path's available-bandwidth distribution ``F`` (an empirical CDF
maintained by monitoring), PGOS makes two kinds of promises about a stream
that must service ``x`` packets of size ``s`` per scheduling window ``tw``
(equivalently: sustain ``b0 = x*s/tw``):

**Lemma 1 (probabilistic guarantee).**  With probability
``P = 1 - F(b0)`` the ``x`` packets are served within the window — i.e.
the probability of insufficient throughput is bounded by ``F(b0)``.

**Lemma 2 (violation bound).**  The expected number of packets missing
their deadline in one window is bounded by::

    E[Z] <= x * F(b0) - (tw / s) * M[b0]

where ``M[b0] = E[b * 1{b <= b0}]`` is the partial mean of available
bandwidth below the requirement.  (Intuitively: when bandwidth falls short,
the shortfall in packets is ``x - b*tw/s``; averaging over the shortfall
region gives the bound.)

All bandwidths are Mbps at the API; conversions to byte rates happen here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF
from repro.units import mbps_to_bytes_per_s


def required_bandwidth_mbps(x_packets: int, packet_size: int, tw: float) -> float:
    """The ``b0`` of the lemmas: rate needed to serve ``x`` packets per window."""
    if x_packets < 0:
        raise ConfigurationError(f"x_packets must be >= 0, got {x_packets}")
    if packet_size <= 0 or tw <= 0:
        raise ConfigurationError(
            f"packet_size and tw must be positive, got {packet_size}, {tw}"
        )
    return x_packets * packet_size * 8.0 / (tw * 1e6)


def probabilistic_guarantee(cdf: EmpiricalCDF, required_mbps: float) -> float:
    """Lemma 1: probability the path sustains ``required_mbps``.

    Returns ``P = 1 - F(b0)`` — the fraction of time the path's available
    bandwidth is at least the requirement.
    """
    if required_mbps < 0:
        raise ConfigurationError(
            f"required_mbps must be >= 0, got {required_mbps}"
        )
    # Strictly below b0 counts as failure; a sample exactly equal to b0
    # still satisfies the requirement, so use F(b0-) = P{b < b0}.
    return float(1.0 - cdf.evaluate_strict(required_mbps))


def probabilistic_guarantee_batch(
    cdf: EmpiricalCDF, required_mbps: np.ndarray
) -> np.ndarray:
    """Lemma 1 over many candidate rates at once.

    One vectorized ``searchsorted`` replaces one scalar call per rate;
    every element is bit-identical to
    :func:`probabilistic_guarantee` at the same rate.
    """
    rates = np.asarray(required_mbps, dtype=float)
    if rates.size and float(rates.min()) < 0:
        raise ConfigurationError(
            f"required_mbps must be >= 0, got {float(rates.min())}"
        )
    return 1.0 - np.asarray(cdf.evaluate_strict(rates))


def violation_bounds_batch(
    cdf: EmpiricalCDF,
    x_packets: np.ndarray,
    packet_size: int,
    tw: float,
) -> np.ndarray:
    """Lemma 2 over many candidate packet counts at once.

    The candidate rates ``b0`` and their CDF heights are computed with
    one vectorized pass (a single ``searchsorted`` over all candidate
    rates); the clip epilogue runs per element with the exact scalar
    operations of :func:`violation_bound`, so the batch is bit-identical
    to the scalar path — the property that keeps the greedy
    violation-bound split's decisions byte-stable.
    """
    x = np.asarray(x_packets)
    if x.size and int(x.min()) < 0:
        raise ConfigurationError(f"x_packets must be >= 0, got {int(x.min())}")
    if packet_size <= 0 or tw <= 0:
        raise ConfigurationError(
            f"packet_size and tw must be positive, got {packet_size}, {tw}"
        )
    b0 = x * packet_size * 8.0 / (tw * 1e6)
    f_b0 = np.asarray(cdf.evaluate(b0))
    partial_mean_packets = (
        mbps_to_bytes_per_s(cdf.partial_means_below(b0)) * tw / packet_size
    )
    raw = x * f_b0 - partial_mean_packets
    out = np.empty(x.shape, dtype=float)
    flat_x, flat_raw, flat_out = x.ravel(), raw.ravel(), out.ravel()
    for i in range(flat_x.size):
        xi = int(flat_x[i])
        if xi == 0:
            flat_out[i] = 0.0
        else:
            flat_out[i] = float(min(max(float(flat_raw[i]), 0.0), xi))
    return out


def expected_violation_rates_batch(
    cdf: EmpiricalCDF,
    x_packets: np.ndarray,
    packet_size: int,
    tw: float,
) -> np.ndarray:
    """Lemma 2 normalized, batched: violation-fraction bounds per count."""
    x = np.asarray(x_packets)
    bounds = violation_bounds_batch(cdf, x, packet_size, tw)
    out = np.zeros(x.shape, dtype=float)
    nz = x != 0
    out[nz] = bounds[nz] / x[nz]
    return out


def packet_guarantee(
    cdf: EmpiricalCDF, x_packets: int, packet_size: int, tw: float
) -> float:
    """Lemma 1 stated in packets: P that ``x`` packets are served in ``tw``."""
    b0 = required_bandwidth_mbps(x_packets, packet_size, tw)
    return probabilistic_guarantee(cdf, b0)


def violation_bound(
    cdf: EmpiricalCDF, x_packets: int, packet_size: int, tw: float
) -> float:
    """Lemma 2: bound on E[Z], expected deadline misses per window.

    ``E[Z] <= x * F(b0) - (tw / s) * M[b0]`` with the partial mean
    ``M[b0]`` computed from the same empirical distribution.  The bound is
    clipped at 0 (it cannot be negative) and at ``x`` (cannot miss more
    packets than exist).
    """
    if x_packets == 0:
        return 0.0
    b0 = required_bandwidth_mbps(x_packets, packet_size, tw)
    f_b0 = cdf.evaluate(b0)
    partial_mean_mbps = cdf.partial_mean_below(b0)
    # Convert the partial mean to packets per window: (bytes/s) * tw / s.
    partial_mean_packets = (
        mbps_to_bytes_per_s(partial_mean_mbps) * tw / packet_size
    )
    bound = x_packets * f_b0 - partial_mean_packets
    return float(min(max(bound, 0.0), x_packets))


def expected_violation_rate(
    cdf: EmpiricalCDF, x_packets: int, packet_size: int, tw: float
) -> float:
    """Lemma 2 normalized: bound on the *fraction* of packets missing."""
    if x_packets == 0:
        return 0.0
    return violation_bound(cdf, x_packets, packet_size, tw) / x_packets


def feasible_with_probability(
    cdf: EmpiricalCDF, required_mbps: float, probability: float
) -> bool:
    """Whether the path guarantees ``required_mbps`` with at least ``probability``."""
    if not 0.0 < probability < 1.0:
        raise ConfigurationError(
            f"probability must be in (0, 1), got {probability}"
        )
    return probabilistic_guarantee(cdf, required_mbps) >= probability


def guaranteed_rate_at(cdf: EmpiricalCDF, probability: float) -> float:
    """Largest rate the path sustains with the given probability.

    The inverse of Lemma 1: the ``(1 - P)``-quantile of the bandwidth
    distribution.  A stream requiring no more than this rate at probability
    ``P`` fits on the path by itself.
    """
    if not 0.0 < probability < 1.0:
        raise ConfigurationError(
            f"probability must be in (0, 1), got {probability}"
        )
    return cdf.percentile((1.0 - probability) * 100.0)
