"""Runtime admission control.

The paper: "If this still fails due to limited bandwidth, an upcall is made
to inform the application that it is not possible to schedule this
particular stream.  The application can reduce its bandwidth requirement
(e.g., from 95% to 90%) or try to adjust its behavior."

:class:`AdmissionController` packages this protocol: it attempts the full
resource mapping, and on failure reports *which* stream did not fit
together with the best probability the overlay could actually offer it —
the hint the application needs to renegotiate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.errors import AdmissionError
from repro.core.guarantees import probabilistic_guarantee
from repro.core.mapping import ResourceMapping, compute_mapping, shifted_cdf
from repro.core.spec import StreamSpec
from repro.monitoring.cdf import EmpiricalCDF


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission attempt.

    ``admitted`` streams carry a ``mapping``; a rejection names the
    ``rejected_stream`` and, when possible, the ``suggested_probability``
    the overlay *can* guarantee for its bandwidth (the renegotiation hint).
    """

    admitted: bool
    mapping: Optional[ResourceMapping] = None
    rejected_stream: Optional[str] = None
    reason: str = ""
    suggested_probability: Optional[float] = None
    admitted_streams: tuple[str, ...] = field(default_factory=tuple)


class AdmissionController:
    """Admits stream sets against the current path distributions."""

    def __init__(self, tw: float = 1.0):
        if tw <= 0:
            raise ValueError(f"tw must be positive, got {tw}")
        self.tw = tw

    def try_admit(
        self,
        specs: Sequence[StreamSpec],
        cdfs: Mapping[str, EmpiricalCDF],
    ) -> AdmissionDecision:
        """Attempt to admit all ``specs``; never raises on rejection."""
        try:
            mapping = compute_mapping(specs, cdfs, self.tw)
        except AdmissionError as exc:
            return self._reject(specs, cdfs, exc)
        return AdmissionDecision(
            admitted=True,
            mapping=mapping,
            admitted_streams=tuple(s.name for s in specs),
        )

    def _reject(
        self,
        specs: Sequence[StreamSpec],
        cdfs: Mapping[str, EmpiricalCDF],
        exc: AdmissionError,
    ) -> AdmissionDecision:
        rejected = exc.stream_name
        others = [s for s in specs if s.name != rejected]
        rejected_spec = next(s for s in specs if s.name == rejected)
        suggestion = None
        admitted_names: tuple[str, ...] = ()
        try:
            partial = compute_mapping(others, cdfs, self.tw)
            admitted_names = tuple(s.name for s in others)
            suggestion = self._best_offer(rejected_spec, cdfs, partial)
        except AdmissionError:
            # Even the remaining set does not fit; no hint available.
            partial = None
        return AdmissionDecision(
            admitted=False,
            mapping=partial,
            rejected_stream=rejected,
            reason=str(exc),
            suggested_probability=suggestion,
            admitted_streams=admitted_names,
        )

    def _best_offer(
        self,
        spec: StreamSpec,
        cdfs: Mapping[str, EmpiricalCDF],
        partial: ResourceMapping,
    ) -> Optional[float]:
        """Best single-path probability for ``spec`` given prior promises."""
        if spec.required_mbps is None:
            return None
        best = 0.0
        for path, cdf in cdfs.items():
            allocated = sum(
                partial.rate(stream, path)
                for stream in partial.rates_mbps
            )
            residual = shifted_cdf(cdf, allocated)
            best = max(
                best, probabilistic_guarantee(residual, spec.required_mbps)
            )
        return best if best > 0 else None
