"""The Predictive Guarantee Overlay Scheduling (PGOS) algorithm.

Two faces of the same algorithm live here:

* :meth:`PGOSScheduler.allocate` — the window/interval-level interface used
  by the experiment driver: consults the per-path monitors, remaps when the
  stream set or a path CDF changed (Figure 7, lines 1–11), and emits
  priority-levelled bandwidth requests implementing the Table 1 precedence
  (scheduled-on-this-path first, scheduled-on-other-path second,
  unscheduled last).

* :func:`dispatch_window` — the packet-accurate fast path (Figure 7, lines
  12–17): walks the path lookup vector V_P, selects streams via the
  per-path scheduling vectors V_S, falls back through the precedence rules
  when a queue is empty, and switches paths immediately on blocking.

The interval-level requests are the *fluid* rendering of exactly what the
packet fast path does; ``tests/integration/test_pgos_consistency.py``
checks the two agree to within a packet quantum.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Mapping, Optional, Sequence

from repro.errors import AdmissionError, ConfigurationError
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.core.mapping import (
    PathQoSEstimate,
    ResourceMapping,
    best_effort_mapping,
    compute_mapping,
    even_split_mapping,
)
from repro.core.scheduler import PathShareRequest, SchedulerBase
from repro.core.spec import StreamSpec
from repro.core.vectors import Schedule
from repro.monitoring.monitor import PathMonitor
from repro.transport.packet import Packet
from repro.transport.service import PathService

#: Table 1 precedence levels used in interval-mode requests.
LEVEL_SCHEDULED_HERE = 0
LEVEL_SCHEDULED_ELSEWHERE = 1
LEVEL_UNSCHEDULED = 2


class PGOSScheduler(SchedulerBase):
    """Self-regulating overlay packet scheduler with statistical guarantees.

    Parameters
    ----------
    history_window:
        Bandwidth samples of history per path monitor (the paper uses
        500–1000).
    ks_threshold:
        Kolmogorov–Smirnov distance that counts as "the CDF changed
        dramatically" and triggers a remap.
    min_history:
        Minimum samples per path before the statistical mapping is
        trusted; with less history PGOS falls back to an even weighted
        split (it has nothing better to go on).
    split_strategy:
        ``"single-first"`` (the paper's policy: one path per guaranteed
        stream whenever possible) or ``"even"`` (ablation: split every
        stream evenly across paths).
    cdf_backend:
        Sliding-window CDF backend of the per-path monitors
        (``"incremental"`` fast path / ``"batch"`` reference);
        ``None`` reads the process default (``REPRO_CDF_BACKEND``).
    """

    name = "PGOS"

    def __init__(
        self,
        history_window: int = 500,
        ks_threshold: float = 0.2,
        min_history: int = 30,
        split_strategy: str = "single-first",
        cdf_backend: Optional[str] = None,
    ):
        if min_history < 2:
            raise ConfigurationError(
                f"min_history must be >= 2, got {min_history}"
            )
        if split_strategy not in ("single-first", "even"):
            raise ConfigurationError(
                f"split_strategy must be 'single-first' or 'even', got "
                f"{split_strategy!r}"
            )
        self.history_window = history_window
        self.ks_threshold = ks_threshold
        self.min_history = min_history
        self.split_strategy = split_strategy
        self.cdf_backend = cdf_backend
        self._obs = NULL_OBS
        self._clock: Callable[[], float] = lambda: 0.0
        self.monitors: dict[str, PathMonitor] = {}
        self.mapping: Optional[ResourceMapping] = None
        self.schedule: Optional[Schedule] = None
        self.remap_count = 0
        #: True while serving with a stale or best-effort mapping because
        #: the workload is not admittable at its requested guarantees.
        self.degraded = False
        #: Paths the health layer has quarantined: excluded from the
        #: mapping and from every emitted request until re-admitted.
        self.quarantined: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    # SchedulerBase lifecycle
    # ------------------------------------------------------------------
    def setup(
        self,
        streams: Sequence[StreamSpec],
        path_names: Sequence[str],
        dt: float,
        tw: float,
    ) -> None:
        super().setup(streams, path_names, dt, tw)
        self.monitors = {
            p: PathMonitor(
                p,
                window=self.history_window,
                ks_threshold=self.ks_threshold,
                obs=self._obs,
                clock=self._clock,
                cdf_backend=self.cdf_backend,
            )
            for p in self.path_names
        }
        self.mapping = None
        self.schedule = None
        self.remap_count = 0
        self.quarantined = frozenset()

    def bind_observability(
        self,
        obs: Observability,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Attach a per-run observability context (and virtual clock).

        Safe to call before or after :meth:`setup`; existing monitors are
        re-bound so every layer shares one trace.  The ``clock`` callable
        supplies the ``sim_time`` stamped on events the scheduler emits
        outside an ``observe``/``allocate`` call (remaps, quarantines).
        """
        self._obs = obs
        if clock is not None:
            self._clock = clock
        for monitor in self.monitors.values():
            monitor.bind_observability(self._obs, self._clock)

    def observe(
        self,
        interval: int,
        available_mbps: Mapping[str, float],
        rtt_ms: Optional[Mapping[str, float]] = None,
        loss_rate: Optional[Mapping[str, float]] = None,
    ) -> None:
        for path, mbps in available_mbps.items():
            monitor = self.monitors.get(path)
            if monitor is not None:
                monitor.observe_bandwidth(mbps)
        for series, method in ((rtt_ms, "observe_rtt"), (loss_rate, "observe_loss")):
            if series is None:
                continue
            for path, value in series.items():
                monitor = self.monitors.get(path)
                if monitor is not None:
                    getattr(monitor, method)(value)

    def seed_history(self, samples: Mapping[str, Sequence[float]]) -> None:
        """Pre-load monitors with probe-phase bandwidth samples."""
        for path, series in samples.items():
            self.monitors[path].observe_bandwidth_many(series)

    # ------------------------------------------------------------------
    # dynamic stream membership
    # ------------------------------------------------------------------
    def add_stream(self, spec: StreamSpec) -> None:
        """Admit a new stream mid-run (forces a remap, Figure 7 line 2)."""
        if any(s.name == spec.name for s in self.streams):
            raise ConfigurationError(
                f"stream {spec.name!r} already scheduled"
            )
        self.streams.append(spec)
        self.mapping = None  # "previous scheduling vectors" are void

    def remove_stream(self, name: str) -> StreamSpec:
        """Terminate a stream mid-run (forces a remap)."""
        for i, spec in enumerate(self.streams):
            if spec.name == name:
                del self.streams[i]
                self.mapping = None
                return spec
        raise ConfigurationError(f"unknown stream {name!r}")

    # ------------------------------------------------------------------
    # path quarantine (runtime fault tolerance)
    # ------------------------------------------------------------------
    def set_quarantine(self, paths) -> None:
        """Exclude ``paths`` from the mapping until lifted (forces a remap).

        The health layer (:class:`repro.robustness.health.HealthTracker`)
        calls this when paths fail or recover.  Quarantined paths receive
        no requests at all — neither guaranteed reservations, nor rule-2
        overflow, nor elastic best-effort — so recovery probing traffic
        is isolated from application traffic.  Quarantining *every* path
        falls back to mapping over the full set (there is nothing left to
        route around).
        """
        q = frozenset(paths) & set(self.path_names)
        if q != self.quarantined:
            self.quarantined = q
            self.mapping = None  # "previous scheduling vectors" are void
            if self._obs.enabled:
                self._obs.metrics.counter("scheduler.quarantine_changes").inc()
                self._obs.metrics.gauge("scheduler.quarantined_paths").set(
                    len(q)
                )
                self._obs.trace.emit(
                    self._clock(),
                    Category.SCHEDULER,
                    "quarantine",
                    paths=sorted(q),
                    usable=self.usable_paths,
                )

    @property
    def usable_paths(self) -> list[str]:
        """Paths the mapping may use (all of them when all are quarantined)."""
        usable = [p for p in self.path_names if p not in self.quarantined]
        return usable or list(self.path_names)

    # ------------------------------------------------------------------
    # mapping maintenance (Figure 7, lines 1-11)
    # ------------------------------------------------------------------
    @property
    def has_history(self) -> bool:
        """Whether every path has enough samples for statistical mapping."""
        return all(
            len(m.bandwidth) >= self.min_history for m in self.monitors.values()
        )

    def _needs_remap(self) -> bool:
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("pgos.remap_check"):
                return self._needs_remap_inner()
        return self._needs_remap_inner()

    def _needs_remap_inner(self) -> bool:
        if self._obs.enabled:
            self._obs.metrics.counter("scheduler.remap_checks").inc()
        if self.mapping is None:
            return True
        return any(m.cdf_changed_significantly() for m in self.monitors.values())

    def maybe_remap(self) -> Schedule:
        """Remap if the trigger fires; return the current schedule.

        The packet-level session calls this at each window boundary
        (Figure 7, lines 1-11).
        """
        if self._needs_remap():
            self.remap()
        if self.schedule is None:
            raise ConfigurationError(
                "no schedule available (mapping kept a stale state?)"
            )
        return self.schedule

    def remap(self) -> ResourceMapping:
        """Recompute the resource mapping from current CDFs.

        Raises :class:`AdmissionError` if no feasible mapping exists *and*
        no previous mapping can be kept.
        """
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("pgos.remap"):
                return self._remap_inner()
        return self._remap_inner()

    def _remap_inner(self) -> ResourceMapping:
        usable = self.usable_paths
        cdfs = {p: self.monitors[p].cdf() for p in usable}
        qos = {}
        for p in usable:
            monitor = self.monitors[p]
            qos[p] = PathQoSEstimate(
                rtt_ms=monitor.rtt_ms.predict() if monitor.rtt_ms.ready else None,
                loss_rate=(
                    monitor.loss_rate.predict()
                    if monitor.loss_rate.ready
                    else None
                ),
            )
        self.degraded = False
        try:
            if self.split_strategy == "even":
                mapping = even_split_mapping(self.streams, cdfs, self.tw)
            else:
                mapping = compute_mapping(self.streams, cdfs, self.tw, qos=qos)
        except AdmissionError:
            if self.mapping is not None:
                # Keep serving with the stale mapping rather than dropping
                # streams mid-flight; the upcall semantics apply at
                # admission time (see AdmissionController).
                self.degraded = True
                return self.mapping
            # No prior mapping to fall back on: serve best-effort — every
            # guaranteed stream gets the strongest placement available,
            # and `mapping.achieved_probability` reports the shortfall
            # (what the admission upcall would hand the application).
            self.degraded = True
            mapping = best_effort_mapping(self.streams, cdfs, self.tw, qos=qos)
        self.mapping = mapping
        self.schedule = mapping.compile(
            stream_order=self.stream_precedence(), path_order=usable
        )
        for monitor in self.monitors.values():
            monitor.mark_remapped()
        self.remap_count += 1
        if self._obs.enabled:
            metrics = self._obs.metrics
            metrics.counter("scheduler.remaps").inc()
            metrics.gauge("scheduler.degraded").set(1.0 if self.degraded else 0.0)
            obs = self._obs
            self._obs.trace.emit(
                self._clock(),
                Category.SCHEDULER,
                "remap",
                # remap_count is monotone per scheduler: the stable ID
                # other layers join remap-scoped events on.
                remap_id=self.remap_count,
                degraded=self.degraded,
                strategy=self.split_strategy,
                paths=list(usable),
                quarantined=sorted(self.quarantined),
                rates_mbps={
                    s: dict(rates)
                    for s, rates in mapping.rates_mbps.items()
                },
                stream_ids={
                    s: obs.stream_id(s) for s in mapping.rates_mbps
                },
            )
        return mapping

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the scheduler's mutable state.

        Dict insertion order is preserved deliberately: the mapping's
        per-stream rate dicts are summed in iteration order on the hot
        path, so a restored mapping must iterate identically for float
        sums to stay bit-identical.  The compiled :class:`Schedule` is
        not serialized — it is a pure function of the mapping, the stream
        precedence, and the usable path order, and is recompiled on load.
        """
        mapping = self.mapping
        mapping_state = None
        if mapping is not None:
            mapping_state = {
                "packets": {
                    s: {p: int(c) for p, c in d.items()}
                    for s, d in mapping.packets.items()
                },
                "rates_mbps": {
                    s: {p: float(v) for p, v in d.items()}
                    for s, d in mapping.rates_mbps.items()
                },
                "achieved_probability": {
                    s: float(v)
                    for s, v in mapping.achieved_probability.items()
                },
                "achieved_violation_rate": {
                    s: float(v)
                    for s, v in mapping.achieved_violation_rate.items()
                },
                "tw": float(mapping.tw),
            }
        return {
            "streams": [s.to_dict() for s in self.streams],
            "monitors": {
                p: self.monitors[p].state_dict() for p in self.path_names
            },
            "mapping": mapping_state,
            "remap_count": self.remap_count,
            "degraded": self.degraded,
            "quarantined": sorted(self.quarantined),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        :meth:`setup` must already have been called with the same path
        set and window configuration (the snapshot holds only mutable
        state).
        """
        self.streams = [StreamSpec.from_dict(d) for d in state["streams"]]
        for path, monitor_state in state["monitors"].items():
            monitor = self.monitors.get(path)
            if monitor is None:
                raise ConfigurationError(
                    f"checkpoint references unknown path {path!r}"
                )
            monitor.load_state_dict(monitor_state)
        self.quarantined = frozenset(state["quarantined"])
        self.remap_count = int(state["remap_count"])
        self.degraded = bool(state["degraded"])
        mapping_state = state["mapping"]
        if mapping_state is None:
            self.mapping = None
            self.schedule = None
        else:
            self.mapping = ResourceMapping(
                packets={
                    s: {p: int(c) for p, c in d.items()}
                    for s, d in mapping_state["packets"].items()
                },
                rates_mbps={
                    s: {p: float(v) for p, v in d.items()}
                    for s, d in mapping_state["rates_mbps"].items()
                },
                achieved_probability={
                    s: float(v)
                    for s, v in mapping_state["achieved_probability"].items()
                },
                achieved_violation_rate={
                    s: float(v)
                    for s, v in mapping_state[
                        "achieved_violation_rate"
                    ].items()
                },
                tw=float(mapping_state["tw"]),
            )
            # Quarantine and stream set cannot have drifted since the
            # last remap (any change voids the mapping), so recompiling
            # against the *current* precedence and usable paths rebuilds
            # the live schedule exactly.
            self.schedule = self.mapping.compile(
                stream_order=self.stream_precedence(),
                path_order=self.usable_paths,
            )

    def stream_precedence(self) -> list[str]:
        """Streams ordered most-important-first (for deadline tie-breaks)."""
        def key(s: StreamSpec):
            p = s.probability if s.probability is not None else -1.0
            return (-p, -(s.required_mbps or 0.0), s.name)

        return [s.name for s in sorted(self.streams, key=key)]

    # ------------------------------------------------------------------
    # interval-mode allocation (fluid rendering of the fast path)
    # ------------------------------------------------------------------
    def allocate(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        prof = self._obs.prof
        if prof.enabled:
            with prof.span("pgos.allocate"):
                return self._allocate_inner(interval, backlog_mbps)
        return self._allocate_inner(interval, backlog_mbps)

    def _allocate_inner(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        if not self.has_history:
            return self._fallback_requests(backlog_mbps)
        if self._needs_remap():
            self.remap()
        mapping = self.mapping
        usable = self.usable_paths
        requests: dict[str, list[PathShareRequest]] = {
            p: [] for p in self.path_names
        }
        for spec in self.streams:
            rates = mapping.rates_mbps.get(spec.name, {})
            mapped_total = sum(rates.values())
            backlog = backlog_mbps.get(spec.name)
            guaranteed = spec.guaranteed or spec.max_violation_rate is not None
            for path in usable:
                mapped_here = rates.get(path, 0.0)
                if guaranteed and mapped_here > 0:
                    # Rule 1: packets scheduled on this path.
                    demand = (
                        None
                        if backlog is None
                        else min(backlog, mapped_here)
                    )
                    requests[path].append(
                        PathShareRequest(
                            stream=spec.name,
                            demand_mbps=demand,
                            weight=mapped_here,
                            level=LEVEL_SCHEDULED_HERE,
                        )
                    )
                elif guaranteed and mapped_total > 0:
                    # Rule 2: overflow of a stream scheduled elsewhere —
                    # only the excess beyond its reservation spills here.
                    excess = (
                        None
                        if backlog is None
                        else max(backlog - mapped_total, 0.0)
                    )
                    if excess is None or excess > 1e-9:
                        requests[path].append(
                            PathShareRequest(
                                stream=spec.name,
                                demand_mbps=excess,
                                weight=max(mapped_total, 1e-6),
                                level=LEVEL_SCHEDULED_ELSEWHERE,
                            )
                        )
            if spec.elastic:
                # Rule 3: unscheduled (best-effort) packets fill leftovers.
                for path in usable:
                    weight = max(rates.get(path, 0.0), 0.0)
                    if weight <= 0:
                        weight = spec.weight / len(usable)
                    requests[path].append(
                        PathShareRequest(
                            stream=spec.name,
                            demand_mbps=backlog_mbps.get(spec.name),
                            weight=weight,
                            level=LEVEL_UNSCHEDULED,
                        )
                    )
        return requests

    def _fallback_requests(
        self, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        """Even weighted split before monitoring history exists."""
        requests: dict[str, list[PathShareRequest]] = {
            p: [] for p in self.path_names
        }
        usable = self.usable_paths
        n = len(usable)
        for spec in self.streams:
            for path in usable:
                backlog = backlog_mbps.get(spec.name)
                requests[path].append(
                    PathShareRequest(
                        stream=spec.name,
                        demand_mbps=None if backlog is None else backlog / n,
                        weight=spec.weight,
                        level=LEVEL_UNSCHEDULED if spec.elastic else 0,
                    )
                )
        return requests


# ----------------------------------------------------------------------
# packet-accurate fast path (Figure 7, lines 12-17)
# ----------------------------------------------------------------------
class _VSCursor:
    """Round-robin cursor over one path's stream scheduling vector."""

    __slots__ = ("vector", "pos")

    def __init__(self, vector: Sequence[str]):
        self.vector = list(vector)
        self.pos = 0

    def next_stream(self) -> Optional[str]:
        if not self.vector:
            return None
        stream = self.vector[self.pos]
        self.pos = (self.pos + 1) % len(self.vector)
        return stream


class DispatchResult:
    """Statistics from one window of packet dispatch."""

    def __init__(self) -> None:
        self.sent: dict[str, dict[str, int]] = {}
        self.blocked_events = 0
        self.unsent = 0
        #: Packets sent through Table 1 rule 2 (scheduled on another path
        #: but carried here as overflow).
        self.rule2_sent = 0
        #: Best-effort packets sent through rule 3.
        self.unscheduled_sent = 0

    def record(self, stream: str, path: str) -> None:
        per_path = self.sent.setdefault(stream, {})
        per_path[path] = per_path.get(path, 0) + 1

    def sent_total(self, stream: str) -> int:
        return sum(self.sent.get(stream, {}).values())


def dispatch_window(
    schedule: Schedule,
    services: Mapping[str, PathService],
    scheduled_queues: Mapping[str, Deque[Packet]],
    unscheduled_queues: Mapping[str, Deque[Packet]] | None = None,
    stream_precedence: Sequence[str] | None = None,
) -> DispatchResult:
    """Dispatch one scheduling window of packets per Figure 7 and Table 1.

    Parameters
    ----------
    schedule:
        Compiled V_P / V_S vectors with per-(stream, path) quotas.
    services:
        Path services keyed by path name; their interval budgets must have
        been set by the caller (``begin_interval``).
    scheduled_queues:
        FIFO queues of the streams appearing in the schedule (packets in
        deadline order).
    unscheduled_queues:
        Queues of best-effort streams outside the mapping (Table 1 rule 3).
    stream_precedence:
        Tie-break order among equal deadlines (highest window-constraint
        first); defaults to schedule order.

    Returns
    -------
    DispatchResult
        Per-(stream, path) packet counts plus blocking statistics.
    """
    unscheduled_queues = unscheduled_queues or {}
    precedence = list(
        stream_precedence
        if stream_precedence is not None
        else schedule.stream_path_packets
    )
    rank = {s: i for i, s in enumerate(precedence)}
    for s in list(scheduled_queues) + list(unscheduled_queues):
        if s not in rank:
            rank[s] = len(rank)

    result = DispatchResult()
    cursors = {p: _VSCursor(vs) for p, vs in schedule.vs.items()}
    # Remaining per-window quota of each (stream, path) sub-stream.
    quota = {
        s: dict(paths) for s, paths in schedule.stream_path_packets.items()
    }
    blocked: set[str] = set()
    # Fast-path bookkeeping: once every scheduled queue is drained, rules
    # 1 and 2 can be skipped outright (otherwise each best-effort packet
    # would rescan the whole V_S vector).
    scheduled_pending = sum(len(q) for q in scheduled_queues.values())
    quota_pending = schedule.total_packets

    def pop_next(path: str):
        """Next packet for ``path`` per Table 1; returns provenance too.

        Returns ``(packet, quota_path, from_unscheduled)`` where
        ``quota_path`` names the sub-stream quota that was decremented
        (``None`` for unscheduled packets), so a blocked requeue can undo
        the bookkeeping exactly.
        """
        nonlocal scheduled_pending, quota_pending
        if scheduled_pending > 0 and quota_pending > 0:
            # Rule 1: packets scheduled on the current path, via V_S.
            cursor = cursors.get(path)
            if cursor is not None:
                for _ in range(len(cursor.vector)):
                    stream = cursor.next_stream()
                    q = scheduled_queues.get(stream)
                    if q and quota.get(stream, {}).get(path, 0) > 0:
                        quota[stream][path] -= 1
                        scheduled_pending -= 1
                        quota_pending -= 1
                        return q.popleft(), path, False
            # Rule 2: earliest-deadline packet scheduled on some other
            # path (ties: highest window constraint first, via `rank`).
            best_stream, best_other, best_key = None, None, None
            for stream, paths in quota.items():
                q = scheduled_queues.get(stream)
                if not q:
                    continue
                for other, remaining in paths.items():
                    if other == path or remaining <= 0:
                        continue
                    key = (q[0].deadline, rank.get(stream, 1 << 30))
                    if best_key is None or key < best_key:
                        best_key, best_stream, best_other = key, stream, other
                    break
            if best_stream is not None:
                quota[best_stream][best_other] -= 1
                scheduled_pending -= 1
                quota_pending -= 1
                return (
                    scheduled_queues[best_stream].popleft(),
                    best_other,
                    False,
                )
        # Rule 3: earliest-deadline unscheduled (best-effort) packet.
        best_stream, best_key = None, None
        for stream, q in unscheduled_queues.items():
            if not q:
                continue
            key = (q[0].deadline, rank.get(stream, 1 << 30))
            if best_key is None or key < best_key:
                best_key, best_stream = key, stream
        if best_stream is not None:
            return unscheduled_queues[best_stream].popleft(), None, True
        return None, None, False

    def requeue(packet: Packet, quota_path, from_unscheduled: bool) -> None:
        """Undo a pop after the target path refused the packet."""
        nonlocal scheduled_pending, quota_pending
        if from_unscheduled:
            unscheduled_queues[packet.stream].appendleft(packet)
        else:
            scheduled_queues[packet.stream].appendleft(packet)
            scheduled_pending += 1
            if quota_path is not None:
                quota[packet.stream][quota_path] += 1
                quota_pending += 1

    def try_send(path: str, service: PathService) -> bool:
        """One dispatch attempt on ``path``; False when nothing sendable."""
        packet, quota_path, from_unscheduled = pop_next(path)
        if packet is None:
            return False
        if service.offer(packet):
            result.record(packet.stream, path)
            if from_unscheduled:
                result.unscheduled_sent += 1
            elif quota_path is not None and quota_path != path:
                result.rule2_sent += 1
            return True
        # Blocked path: requeue at the head and switch immediately
        # (Figure 7's GetNextFreePath; backoff lives in the service).
        result.blocked_events += 1
        blocked.add(path)
        requeue(packet, quota_path, from_unscheduled)
        return False

    for path in schedule.vp:
        if path in blocked:
            continue
        service = services.get(path)
        if service is None or service.blocked:
            blocked.add(path)
            continue
        try_send(path, service)

    # After walking V_P, use any still-unblocked capacity for leftovers
    # (work conservation: rules 2/3 continue while free paths exist).
    progress = True
    while progress:
        progress = False
        for path, service in services.items():
            if path in blocked or service.blocked:
                continue
            if try_send(path, service):
                progress = True

    result.unsent = sum(len(q) for q in scheduled_queues.values()) + sum(
        len(q) for q in unscheduled_queues.values()
    )
    return result


def make_packet_queue(
    stream: str,
    count: int,
    tw: float,
    packet_size: int,
    start_seq: int = 0,
    created_at: float = 0.0,
) -> Deque[Packet]:
    """Build one window's FIFO packet queue with spread virtual deadlines."""
    from repro.core.vectors import virtual_deadlines

    deadlines = virtual_deadlines(count, tw)
    return deque(
        Packet(
            deadline=created_at + float(d),
            stream=stream,
            seq=start_seq + i,
            size=packet_size,
            created_at=created_at,
        )
        for i, d in enumerate(deadlines)
    )
