"""Utility-based resource mapping (Section 5.2.2).

Finds ``Tp_i^j`` — how many packets of stream *i* to deliver via path *j*
per scheduling window — such that each stream's guarantee is met:

1. Guaranteed streams are mapped in precedence order (highest required
   probability first).  Each first tries a *single* path (streams with
   tight requirements suffer from reordering when split); only when no
   single path suffices is the stream divided across paths.
2. Splitting uses a union bound: a stream split into *k* parts, each met
   with probability ``P_part = 1 - (1 - P) / k``, is met overall with
   probability at least ``P``.
3. Violation-bound streams (``max_violation_rate``) are mapped by Lemma 2:
   single path if its expected violation rate is within bound, otherwise a
   greedy packet-chunk split minimizing the combined expected violations.
4. Elastic streams divide the *remaining* mean bandwidth of all paths
   proportionally to their weights (they ride at lower dispatch priority,
   so they never endanger the guarantees above).
5. If a guaranteed stream fits nowhere, :class:`repro.errors.AdmissionError`
   is raised — the paper's upcall to the application.

Path capacity already promised to earlier (more important) streams is
accounted for by *shifting* the path's bandwidth distribution: if ``r``
Mbps are already allocated, the residual distribution is
``max(b - r, 0)`` sample-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import AdmissionError, ConfigurationError
from repro.core.guarantees import (
    expected_violation_rates_batch,
    guaranteed_rate_at,
    probabilistic_guarantee,
    probabilistic_guarantee_batch,
)
from repro.core.spec import StreamSpec
from repro.core.vectors import Schedule, build_schedule
from repro.monitoring.cdf import EmpiricalCDF
from repro.units import packets_per_window


@dataclass(frozen=True)
class PathQoSEstimate:
    """Monitored RTT / loss levels used for path eligibility.

    The values are the levels the path stays *under* with the monitoring
    probability (e.g. the 95th percentile of observed RTT), matching the
    paper's per-metric probabilistic guarantees.  ``None`` means the
    metric is not being monitored on this path and does not constrain
    placement.
    """

    rtt_ms: float | None = None
    loss_rate: float | None = None


def eligible_paths(
    spec: StreamSpec,
    path_order: Sequence[str],
    qos: Mapping[str, PathQoSEstimate] | None,
) -> list[str]:
    """Paths whose monitored RTT/loss satisfy the stream's ceilings."""
    if qos is None or (spec.max_rtt_ms is None and spec.max_loss_rate is None):
        return list(path_order)
    out = []
    for p in path_order:
        estimate = qos.get(p)
        if estimate is None:
            out.append(p)
            continue
        if (
            spec.max_rtt_ms is not None
            and estimate.rtt_ms is not None
            and estimate.rtt_ms > spec.max_rtt_ms
        ):
            continue
        if (
            spec.max_loss_rate is not None
            and estimate.loss_rate is not None
            and estimate.loss_rate > spec.max_loss_rate
        ):
            continue
        out.append(p)
    return out


def shifted_cdf(cdf: EmpiricalCDF, allocated_mbps: float) -> EmpiricalCDF:
    """Residual bandwidth distribution after ``allocated_mbps`` is promised."""
    if allocated_mbps < 0:
        raise ConfigurationError(
            f"allocated must be >= 0, got {allocated_mbps}"
        )
    if allocated_mbps == 0:
        return cdf
    # Subtracting a constant and clipping at zero preserve sortedness, so
    # the residual CDF is built without re-sorting (the mapping step calls
    # this once per (stream, path) and used to pay O(W log W) each time).
    return EmpiricalCDF.from_sorted(
        np.clip(cdf.samples - allocated_mbps, 0.0, None),
        copy=False,
        validate=False,
    )


def largest_remainder_split(total: int, fractions: Sequence[float]) -> list[int]:
    """Split ``total`` items into integer parts proportional to ``fractions``.

    Largest-remainder (Hamilton) apportionment: parts sum exactly to
    ``total`` and differ from exact proportionality by < 1.
    """
    if total < 0:
        raise ConfigurationError(f"total must be >= 0, got {total}")
    weights = np.asarray(fractions, dtype=float)
    if weights.size == 0:
        raise ConfigurationError("fractions must be non-empty")
    if np.any(weights < 0):
        raise ConfigurationError(f"fractions must be >= 0: {fractions}")
    s = weights.sum()
    if s == 0:
        # Degenerate: all weight on the first part.
        parts = [0] * weights.size
        parts[0] = total
        return parts
    exact = weights / s * total
    floors = np.floor(exact).astype(int)
    shortfall = total - int(floors.sum())
    remainders = exact - floors
    order = np.argsort(-remainders, kind="stable")
    for i in order[:shortfall]:
        floors[i] += 1
    return floors.tolist()


@dataclass(frozen=True)
class ResourceMapping:
    """The output of the mapping step.

    Attributes
    ----------
    packets:
        ``Tp_i^j``: stream name -> path name -> packets per window.
    rates_mbps:
        The same shares expressed as rates.
    achieved_probability:
        Per guaranteed stream, the probability with which the mapping
        meets its requirement (Lemma 1, union-bounded when split).
    achieved_violation_rate:
        Per violation-bound stream, the bound on the expected fraction of
        packets missing deadlines (Lemma 2).
    tw:
        Scheduling-window length used for packet conversion.
    """

    packets: dict[str, dict[str, int]]
    rates_mbps: dict[str, dict[str, float]]
    achieved_probability: dict[str, float] = field(default_factory=dict)
    achieved_violation_rate: dict[str, float] = field(default_factory=dict)
    tw: float = 1.0

    def paths_of(self, stream: str) -> list[str]:
        """Paths carrying a non-null sub-stream of ``stream``."""
        return [p for p, c in self.packets.get(stream, {}).items() if c > 0]

    def is_split(self, stream: str) -> bool:
        """Whether the stream was divided across multiple paths."""
        return len(self.paths_of(stream)) > 1

    def rate(self, stream: str, path: str) -> float:
        """Mbps of ``stream`` mapped onto ``path``."""
        return self.rates_mbps.get(stream, {}).get(path, 0.0)

    def total_rate(self, stream: str) -> float:
        """Total mapped rate of ``stream`` across all paths."""
        return sum(self.rates_mbps.get(stream, {}).values())

    @property
    def guaranteed_streams(self) -> set[str]:
        """Streams carrying a probabilistic or violation-bound guarantee."""
        return set(self.achieved_probability) | set(self.achieved_violation_rate)

    def compile(
        self,
        stream_order: Sequence[str] | None = None,
        path_order: Sequence[str] | None = None,
        include_best_effort: bool = False,
    ) -> Schedule:
        """Compile into V_P / V_S scheduling vectors.

        By default only *guaranteed* streams become scheduled packets —
        best-effort (purely elastic) traffic is Table 1's "pkts not
        scheduled" and is dispatched by rule 3, so it never appears in
        V_S.  Pass ``include_best_effort=True`` to compile everything
        (used by analyses that want the full fluid plan as vectors).
        """
        packets = self.packets
        if not include_best_effort:
            keep = self.guaranteed_streams
            packets = {s: p for s, p in packets.items() if s in keep}
        return build_schedule(
            packets, self.tw, stream_order=stream_order, path_order=path_order
        )


class _ResidualMemo:
    """Per-mapping-run cache of residual CDFs and Lemma-1 evaluations.

    Within one mapping run, ``allocated[p]`` changes only when a stream
    is placed on ``p``: every stream mapped in between re-derives the
    *identical* residual CDF and frequently re-evaluates the very same
    required rate (catalog workloads draw from a handful of stream
    templates).  Caching keyed on the exact allocation float returns the
    same arrays and floats the uncached path would compute — pure
    memoization, so placements cannot drift by a bit.
    """

    __slots__ = ("_cdfs", "_entries")

    def __init__(self, cdfs: Mapping[str, EmpiricalCDF]):
        self._cdfs = cdfs
        #: path -> [allocated, residual CDF, {required: achieved P}]
        self._entries: dict[str, list] = {}

    def _entry(self, path: str, allocated: float) -> list:
        entry = self._entries.get(path)
        if entry is None or entry[0] != allocated:
            entry = [
                allocated,
                shifted_cdf(self._cdfs[path], allocated),
                {},
            ]
            self._entries[path] = entry
        return entry

    def residual(self, path: str, allocated: float) -> EmpiricalCDF:
        return self._entry(path, allocated)[1]

    def guarantee(
        self, path: str, allocated: float, required: float
    ) -> float:
        entry = self._entry(path, allocated)
        achieved = entry[2].get(required)
        if achieved is None:
            achieved = probabilistic_guarantee(entry[1], required)
            entry[2][required] = achieved
        return achieved


def _map_probabilistic(
    spec: StreamSpec,
    cdfs: Mapping[str, EmpiricalCDF],
    allocated: dict[str, float],
    path_order: Sequence[str],
    memo: Optional[_ResidualMemo] = None,
) -> tuple[dict[str, float], float]:
    """Map one guaranteed stream; returns (rate per path, achieved P)."""
    required = spec.required_mbps
    target_p = spec.probability
    if memo is None:
        memo = _ResidualMemo(cdfs)
    # --- single-path attempt -------------------------------------------
    feasible: list[tuple[float, str]] = []
    for p in path_order:
        achieved = memo.guarantee(p, allocated[p], required)
        if achieved >= target_p:
            feasible.append((achieved, p))
    if feasible:
        # Strongest guarantee wins; path_order breaks exact ties.
        best_achieved, best_path = max(
            feasible, key=lambda t: (t[0], -path_order.index(t[1]))
        )
        return {best_path: required}, best_achieved
    # --- split across k paths (union bound) ----------------------------
    residuals = {
        p: memo.residual(p, allocated[p]) for p in path_order
    }
    k = len(path_order)
    if k > 1:
        p_part = 1.0 - (1.0 - target_p) / k
        capacities = {
            p: max(guaranteed_rate_at(residuals[p], p_part), 0.0)
            for p in path_order
        }
        if sum(capacities.values()) >= required:
            shares: dict[str, float] = {}
            remaining = required
            # Greedy: drain the strongest residual first so the number of
            # non-null sub-streams stays minimal (less reordering).
            for p in sorted(
                path_order, key=lambda p: capacities[p], reverse=True
            ):
                if remaining <= 1e-12:
                    break
                take = min(capacities[p], remaining)
                if take > 1e-12:
                    shares[p] = take
                    remaining -= take
            misses = 0.0
            for p, share in shares.items():
                misses += 1.0 - probabilistic_guarantee(residuals[p], share)
            achieved = max(0.0, 1.0 - misses)
            if achieved >= target_p:
                return shares, achieved
    raise AdmissionError(
        spec.name,
        f"no single path or split meets {required:.3f} Mbps at "
        f"P={target_p:.2f}",
    )


def _map_violation_bound(
    spec: StreamSpec,
    cdfs: Mapping[str, EmpiricalCDF],
    allocated: dict[str, float],
    path_order: Sequence[str],
    tw: float,
    chunks: int = 10,
    memo: Optional[_ResidualMemo] = None,
) -> tuple[dict[str, float], float]:
    """Map one violation-bound stream; returns (rate per path, achieved bound)."""
    x_total = spec.packets_in_window(tw)
    bound = spec.max_violation_rate
    if memo is None:
        memo = _ResidualMemo(cdfs)
    residuals = {
        p: memo.residual(p, allocated[p]) for p in path_order
    }

    def rate_of(pkts: int) -> float:
        return spec.rate_from_packets(pkts, tw)

    # Every cumulative packet count the greedy walk below can reach: the
    # chunk grid plus the grid offset by the final partial take.  One
    # vectorized Lemma-2 pass per path (a single searchsorted over all
    # candidate rates) replaces the 2 * paths * chunks scalar calls the
    # walk would otherwise make; each ladder entry is bit-identical to
    # the scalar expected_violation_rate, so placements cannot drift.
    chunk = max(1, x_total // chunks)
    k_max = x_total // chunk
    leftover = x_total - k_max * chunk
    count_set = {k * chunk for k in range(k_max + 1)}
    if leftover:
        count_set |= {k * chunk + leftover for k in range(k_max + 1)}
    counts = np.array(
        sorted(c for c in count_set if c <= x_total), dtype=np.int64
    )
    evr = {
        p: dict(
            zip(
                counts.tolist(),
                expected_violation_rates_batch(
                    residuals[p], counts, spec.packet_size, tw
                ).tolist(),
            )
        )
        for p in path_order
    }

    # Single-path attempt: lowest expected violation rate wins if in bound.
    singles = [(evr[p][x_total], p) for p in path_order]
    best_rate, best_path = min(singles, key=lambda t: (t[0], path_order.index(t[1])))
    if best_rate <= bound:
        return {best_path: rate_of(x_total)}, best_rate

    # Greedy chunk split: place each chunk of packets on the path whose
    # expected violations grow least.
    placed = {p: 0 for p in path_order}
    remaining = x_total
    while remaining > 0:
        take = min(chunk, remaining)
        best_p, best_cost = None, None
        for p in path_order:
            new_x = placed[p] + take
            cost = (
                evr[p][new_x] * new_x - evr[p][placed[p]] * placed[p]
            )
            if best_cost is None or cost < best_cost:
                best_p, best_cost = p, cost
        placed[best_p] += take
        remaining -= take
    total_violations = sum(
        evr[p][placed[p]] * placed[p]
        for p in path_order
        if placed[p] > 0
    )
    achieved = total_violations / x_total
    if achieved > bound:
        raise AdmissionError(
            spec.name,
            f"expected violation rate {achieved:.4f} exceeds bound "
            f"{bound:.4f} on every split",
        )
    return {p: rate_of(c) for p, c in placed.items() if c > 0}, achieved


def even_split_mapping(
    specs: Sequence[StreamSpec],
    cdfs: Mapping[str, EmpiricalCDF],
    tw: float,
) -> ResourceMapping:
    """Ablation mapping: split every stream evenly across all paths.

    Ignores the single-path-first preference and the CDF-driven placement;
    used to quantify what those decisions contribute (guaranteed streams
    get exposed to every path's noise).  Guarantees are reported via the
    union bound over the even shares.
    """
    if tw <= 0:
        raise ConfigurationError(f"tw must be positive, got {tw}")
    path_order = list(cdfs)
    n = len(path_order)
    rates: dict[str, dict[str, float]] = {}
    achieved_p: dict[str, float] = {}
    packets: dict[str, dict[str, int]] = {}
    guaranteed = [s for s in specs if s.guaranteed]
    for spec in specs:
        if spec.elastic and spec.required_mbps is None:
            total = spec.weight
        else:
            total = spec.required_mbps or spec.weight
        shares = {p: total / n for p in path_order}
        rates[spec.name] = shares
        x_total = packets_per_window(total, spec.packet_size, tw)
        counts = largest_remainder_split(x_total, [1.0] * n)
        packets[spec.name] = {
            p: c for p, c in zip(path_order, counts) if c > 0
        }
    if guaranteed:
        # One vectorized Lemma-1 pass per path covering every guaranteed
        # stream's even share (a single searchsorted per path instead of
        # one scalar call per (stream, path) pair).  Misses are still
        # summed per stream in path_order, so the result is bit-identical
        # to the scalar loop.
        share_rates = np.array(
            [rates[s.name][path_order[0]] for s in guaranteed], dtype=float
        )
        guarantees = {
            p: probabilistic_guarantee_batch(cdfs[p], share_rates)
            for p in path_order
        }
        for i, spec in enumerate(guaranteed):
            misses = sum(
                1.0 - float(guarantees[p][i]) for p in path_order
            )
            achieved_p[spec.name] = max(0.0, 1.0 - misses)
    return ResourceMapping(
        packets=packets,
        rates_mbps=rates,
        achieved_probability=achieved_p,
        tw=tw,
    )


def best_effort_mapping(
    specs: Sequence[StreamSpec],
    cdfs: Mapping[str, EmpiricalCDF],
    tw: float,
    qos: Mapping[str, PathQoSEstimate] | None = None,
) -> ResourceMapping:
    """Degraded mapping for workloads that failed admission.

    Every guaranteed stream is placed on the single eligible path that
    offers it the *highest achievable* probability — its target is
    ignored, so ``achieved_probability`` reports what the overlay can
    actually deliver (the number the admission upcall hands back to the
    application).  Elastic streams split the leftover as usual.  Never
    raises :class:`AdmissionError`.
    """
    if tw <= 0:
        raise ConfigurationError(f"tw must be positive, got {tw}")
    if not cdfs:
        raise ConfigurationError("at least one path CDF is required")
    path_order = list(cdfs)
    allocated = {p: 0.0 for p in path_order}
    rates: dict[str, dict[str, float]] = {}
    achieved_p: dict[str, float] = {}
    ordered = sorted(
        (s for s in specs if s.guaranteed or s.max_violation_rate is not None),
        key=lambda s: (-(s.probability or 1.0), -(s.required_mbps or 0.0)),
    )
    memo = _ResidualMemo(cdfs)
    for spec in ordered:
        candidates = eligible_paths(spec, path_order, qos) or list(path_order)
        best_path, best_achieved = None, -1.0
        for p in candidates:
            achieved = memo.guarantee(
                p, allocated[p], spec.required_mbps
            )
            if achieved > best_achieved:
                best_path, best_achieved = p, achieved
        rates[spec.name] = {best_path: spec.required_mbps}
        achieved_p[spec.name] = best_achieved
        allocated[best_path] += spec.required_mbps
    # Elastic leftover, as in compute_mapping.
    elastic = [s for s in specs if s.elastic]
    leftover = {
        p: max(shifted_cdf(cdfs[p], allocated[p]).mean(), 0.0)
        for p in path_order
    }
    total_leftover = sum(leftover.values())
    total_weight = sum(s.weight for s in elastic) if elastic else 0.0
    for spec in elastic:
        share_total = (
            total_leftover * spec.weight / total_weight if total_weight else 0.0
        )
        shares = {}
        for p in path_order:
            frac = leftover[p] / total_leftover if total_leftover else 0.0
            if share_total * frac > 1e-9:
                shares[p] = share_total * frac
        prior = rates.get(spec.name, {})
        for p, r in shares.items():
            prior[p] = prior.get(p, 0.0) + r
        rates[spec.name] = prior
    packets: dict[str, dict[str, int]] = {}
    by_name = {s.name: s for s in specs}
    for name, shares in rates.items():
        spec = by_name[name]
        total_rate = sum(shares.values())
        if total_rate <= 0:
            packets[name] = {}
            continue
        x_total = packets_per_window(total_rate, spec.packet_size, tw)
        paths = list(shares)
        counts = largest_remainder_split(x_total, [shares[p] for p in paths])
        packets[name] = {p: c for p, c in zip(paths, counts) if c > 0}
    return ResourceMapping(
        packets=packets,
        rates_mbps=rates,
        achieved_probability=achieved_p,
        tw=tw,
    )


def compute_mapping(
    specs: Sequence[StreamSpec],
    cdfs: Mapping[str, EmpiricalCDF],
    tw: float,
    qos: Mapping[str, PathQoSEstimate] | None = None,
) -> ResourceMapping:
    """Run the full utility-based resource-mapping step.

    Parameters
    ----------
    specs:
        All streams to map (guaranteed, violation-bound, and elastic).
    cdfs:
        Per-path available-bandwidth CDFs from monitoring.
    tw:
        Scheduling-window length in seconds.
    qos:
        Optional monitored RTT/loss levels per path; streams with
        ``max_rtt_ms`` / ``max_loss_rate`` ceilings are only placed on
        paths meeting them.

    Raises
    ------
    AdmissionError
        When some guaranteed stream fits neither on a single path nor split
        across all of them (or no path meets its RTT/loss ceilings).
    """
    if tw <= 0:
        raise ConfigurationError(f"tw must be positive, got {tw}")
    if not cdfs:
        raise ConfigurationError("at least one path CDF is required")
    path_order = list(cdfs)
    allocated = {p: 0.0 for p in path_order}
    rates: dict[str, dict[str, float]] = {}
    achieved_p: dict[str, float] = {}
    achieved_v: dict[str, float] = {}

    # Precedence: probabilistic guarantees by P descending, then
    # violation-bound streams by tightest bound first; required rate breaks
    # ties (bigger first, it is harder to place).  One pre-keyed pass over
    # the spec list replaces two filtered sorts with per-element lambda
    # keys — the sort order (and tie stability) is unchanged.
    prob_keyed: list[tuple[tuple, int, StreamSpec]] = []
    viol_keyed: list[tuple[tuple, int, StreamSpec]] = []
    for i, s in enumerate(specs):
        if s.max_violation_rate is not None:
            viol_keyed.append(
                ((s.max_violation_rate, -(s.required_mbps or 0.0)), i, s)
            )
        elif s.probability is not None:
            prob_keyed.append(
                ((-s.probability, -(s.required_mbps or 0.0)), i, s)
            )
    prob_keyed.sort()
    viol_keyed.sort()
    prob_streams = [s for _, _, s in prob_keyed]
    viol_streams = [s for _, _, s in viol_keyed]
    def _candidates(spec: StreamSpec) -> list[str]:
        candidates = eligible_paths(spec, path_order, qos)
        if not candidates:
            raise AdmissionError(
                spec.name, "no path meets its RTT/loss ceilings"
            )
        return candidates

    memo = _ResidualMemo(cdfs)
    for spec in prob_streams:
        shares, achieved = _map_probabilistic(
            spec, cdfs, allocated, _candidates(spec), memo=memo
        )
        rates[spec.name] = shares
        achieved_p[spec.name] = achieved
        for p, r in shares.items():
            allocated[p] += r
    for spec in viol_streams:
        shares, achieved = _map_violation_bound(
            spec, cdfs, allocated, _candidates(spec), tw, memo=memo
        )
        rates[spec.name] = shares
        achieved_v[spec.name] = achieved
        for p, r in shares.items():
            allocated[p] += r

    # Elastic streams: divide leftover mean bandwidth by weight.  A stream
    # may be both guaranteed and elastic (video base + fill); its elastic
    # share is added on top of the guaranteed mapping above.
    elastic = [s for s in specs if s.elastic]
    leftover = {
        p: max(shifted_cdf(cdfs[p], allocated[p]).mean(), 0.0)
        for p in path_order
    }
    total_leftover = sum(leftover.values())
    total_weight = sum(s.weight for s in elastic) if elastic else 0.0
    for spec in elastic:
        share_total = (
            total_leftover * spec.weight / total_weight if total_weight else 0.0
        )
        candidates = eligible_paths(spec, path_order, qos)
        eligible_leftover = sum(leftover[p] for p in candidates)
        shares = {}
        for p in candidates:
            frac = leftover[p] / eligible_leftover if eligible_leftover else 0.0
            r = share_total * frac
            if r > 1e-9:
                shares[p] = r
        prior = rates.get(spec.name, {})
        for p, r in shares.items():
            prior[p] = prior.get(p, 0.0) + r
        rates[spec.name] = prior

    # Convert rates to integer packets per window (largest remainder).
    packets: dict[str, dict[str, int]] = {}
    by_name = {s.name: s for s in specs}
    for name, shares in rates.items():
        spec = by_name[name]
        total_rate = sum(shares.values())
        if total_rate <= 0:
            packets[name] = {}
            continue
        x_total = packets_per_window(total_rate, spec.packet_size, tw)
        paths = list(shares)
        counts = largest_remainder_split(
            x_total, [shares[p] for p in paths]
        )
        packets[name] = {
            p: c for p, c in zip(paths, counts) if c > 0
        }

    return ResourceMapping(
        packets=packets,
        rates_mbps=rates,
        achieved_probability=achieved_p,
        achieved_violation_rate=achieved_v,
        tw=tw,
    )
