"""Scheduler interface and the per-path bandwidth-sharing model.

Every algorithm in the evaluation — PGOS, WFQ, MSFQ, OptSched — implements
:class:`SchedulerBase`: per measurement interval it emits, for each overlay
path, a list of :class:`PathShareRequest` entries (stream, demand, weight,
priority level).  The experiment driver then resolves contention on each
path with :func:`water_fill`:

* strict priority across levels (level 0 served before level 1, ...);
* within a level, weighted max-min fairness (share proportional to weight,
  capped at demand, surplus redistributed).

This models the two service disciplines that matter in the paper: fair
queuing (weights, one level) and PGOS's deadline-ordered dispatch, whose
scheduling vectors serve guaranteed packets ahead of unscheduled
best-effort packets (Table 1 precedence ⇒ strict priority between the
guaranteed and the elastic portions of the schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.core.spec import StreamSpec
from repro.obs.context import NULL_OBS, Observability


@dataclass(frozen=True)
class PathShareRequest:
    """One stream's claim on one path for the next interval.

    Attributes
    ----------
    stream:
        Stream name.
    demand_mbps:
        Rate the stream wants on this path this interval (``None`` =
        unbounded, for elastic sources).
    weight:
        Fair-share weight within the priority level.
    level:
        Strict priority level; lower is served first.
    """

    stream: str
    demand_mbps: Optional[float]
    weight: float
    level: int = 0

    def __post_init__(self):
        if self.demand_mbps is not None and self.demand_mbps < 0:
            raise ConfigurationError(
                f"demand must be >= 0, got {self.demand_mbps}"
            )
        if self.weight <= 0:
            raise ConfigurationError(f"weight must be > 0, got {self.weight}")
        if self.level < 0:
            raise ConfigurationError(f"level must be >= 0, got {self.level}")


def water_fill(
    requests: Sequence[PathShareRequest], capacity_mbps: float
) -> dict[str, float]:
    """Resolve one path's contention: priority levels, then weighted max-min.

    Returns Mbps granted per stream.  Work-conserving: all capacity is
    handed out as long as unbounded or unmet demand remains.
    """
    if capacity_mbps < 0:
        raise ConfigurationError(
            f"capacity must be >= 0, got {capacity_mbps}"
        )
    granted: dict[str, float] = {}
    for request in requests:
        if request.stream in granted:
            raise ConfigurationError(
                f"duplicate request for stream {request.stream!r} on one path"
            )
        granted[request.stream] = 0.0

    remaining = capacity_mbps
    for level in sorted({r.level for r in requests}):
        if remaining <= 1e-12:
            break
        active = [r for r in requests if r.level == level]
        # Iterative weighted max-min: satisfy capped streams, redistribute.
        pending = {r.stream: r for r in active}
        while pending and remaining > 1e-12:
            total_weight = sum(r.weight for r in pending.values())
            # Find streams whose demand is met at the current fair share.
            capped = []
            for r in pending.values():
                fair = remaining * r.weight / total_weight
                if r.demand_mbps is not None and r.demand_mbps <= fair + 1e-12:
                    capped.append(r)
            if not capped:
                # No one capped: hand out proportional shares and finish.
                for r in pending.values():
                    granted[r.stream] += remaining * r.weight / total_weight
                remaining = 0.0
                break
            for r in capped:
                granted[r.stream] += r.demand_mbps
                remaining -= r.demand_mbps
                del pending[r.stream]
            remaining = max(remaining, 0.0)
    return granted


class SchedulerBase:
    """Interface implemented by PGOS and every baseline.

    Lifecycle::

        scheduler.setup(streams, path_names, dt, tw)
        for k in range(n_intervals):
            requests = scheduler.allocate(k)         # uses past info only
            ... driver water-fills each path and delivers ...
            scheduler.observe(k, measured_available) # feedback
    """

    #: Display name used in figures/reports.
    name: str = "scheduler"

    #: Per-run observability context; the disabled default costs one
    #: attribute lookup at each instrumentation site.
    _obs: Observability = NULL_OBS
    _clock: Callable[[], float] = staticmethod(lambda: 0.0)

    def bind_observability(
        self,
        obs: Observability,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Attach a per-run observability context and virtual clock.

        The base implementation just stores them; schedulers with
        internal state (PGOS's per-path monitors) override to propagate.
        """
        self._obs = obs
        if clock is not None:
            self._clock = clock

    def setup(
        self,
        streams: Sequence[StreamSpec],
        path_names: Sequence[str],
        dt: float,
        tw: float,
    ) -> None:
        """Bind the scheduler to an experiment's streams and paths."""
        if not streams:
            raise ConfigurationError("at least one stream is required")
        if not path_names:
            raise ConfigurationError("at least one path is required")
        if dt <= 0 or tw <= 0:
            raise ConfigurationError(
                f"dt and tw must be positive, got {dt}, {tw}"
            )
        names = [s.name for s in streams]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate stream names: {names}")
        self.streams: list[StreamSpec] = list(streams)
        self.path_names: list[str] = list(path_names)
        self.dt = dt
        self.tw = tw

    def allocate(
        self, interval: int, backlog_mbps: Mapping[str, Optional[float]]
    ) -> dict[str, list[PathShareRequest]]:
        """Requests per path for the coming interval (past info only).

        ``backlog_mbps[stream]`` is the rate that would fully drain the
        stream's queued bytes (arrivals included) within this interval;
        ``None`` means the stream is an unbounded (elastic) source.
        """
        raise NotImplementedError

    def observe(
        self,
        interval: int,
        available_mbps: Mapping[str, float],
        rtt_ms: Optional[Mapping[str, float]] = None,
        loss_rate: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Feedback: measured path metrics for ``interval``.

        ``available_mbps`` is always supplied; RTT and loss-rate maps are
        optional (monitoring may not cover them on every deployment).
        """
        # Default: stateless scheduler, nothing to learn.

    def stream(self, name: str) -> StreamSpec:
        """Look up one of the configured streams."""
        for s in self.streams:
            if s.name == name:
                return s
        raise ConfigurationError(f"unknown stream {name!r}")
