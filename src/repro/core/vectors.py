"""Scheduling vectors: virtual deadlines, V_P, and V_S (Section 5.2.2).

The resource-mapping step assigns ``Tp_i^j`` packets of stream *i* to path
*j* per scheduling window.  The fast path then needs two lookup structures:

* ``V_P`` — the *path lookup vector*: the order in which the scheduler
  visits paths, built by merging each path's virtual deadlines
  ``D_p[k] = tw / x_j * (k - 1)`` (path *j* carries ``x_j`` packets per
  window).  Visiting paths in merged-deadline order maintains the mapped
  proportions: a path with 9 of 15 packets is visited 3/5 of the time.

* ``V_S[j]`` — the per-path *stream scheduling vector*: for each visit to
  path *j*, which stream's packet to send, built the same way from the
  per-stream deadlines of the packets mapped to that path.

The paper's worked example — stream S1 with 5 packets on path 1, stream S2
with 4 packets on path 1 and 6 on path 2 — yields exactly
``V_P = [1,2,1,2,1,1,2,1,2,1,1,2,1,2,1]`` and
``V_S^1 = [1,2,1,2,1,2,1,2,1]``; the tests lock this in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError


def virtual_deadlines(count: int, tw: float) -> np.ndarray:
    """Deadlines ``tw / count * (k - 1)`` for ``k = 1..count``.

    The *k*-th packet's virtual deadline spreads the ``count`` packets
    evenly over the window, which is what keeps dispatch smooth rather
    than bursty.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if tw <= 0:
        raise ConfigurationError(f"tw must be positive, got {tw}")
    if count == 0:
        return np.empty(0)
    return tw / count * np.arange(count, dtype=float)


def _merge_by_deadline(
    counts: Mapping[Hashable, int], tw: float, order: Sequence[Hashable]
) -> list[Hashable]:
    """Merge per-key virtual deadlines into one visiting sequence.

    Ties are broken by the position of the key in ``order`` (the paper
    breaks equal deadlines by window constraint, then arbitrarily; callers
    pass keys ordered by precedence).
    """
    entries: list[tuple[float, int, Hashable]] = []
    rank = {key: i for i, key in enumerate(order)}
    for key, count in counts.items():
        if count < 0:
            raise ConfigurationError(
                f"negative packet count {count} for {key!r}"
            )
        if key not in rank:
            raise ConfigurationError(f"key {key!r} missing from order")
        for deadline in virtual_deadlines(count, tw):
            entries.append((float(deadline), rank[key], key))
    entries.sort(key=lambda e: (e[0], e[1]))
    return [key for _, _, key in entries]


def path_lookup_vector(
    path_packets: Mapping[Hashable, int],
    tw: float,
    order: Sequence[Hashable] | None = None,
) -> list[Hashable]:
    """Build ``V_P`` from per-path packet counts.

    ``order`` fixes the tie-break among equal deadlines; defaults to the
    mapping's iteration order.
    """
    order = list(order) if order is not None else list(path_packets)
    return _merge_by_deadline(path_packets, tw, order)


def stream_schedule_vector(
    stream_packets: Mapping[str, int],
    tw: float,
    order: Sequence[str] | None = None,
) -> list[str]:
    """Build one path's ``V_S`` from per-stream packet counts.

    Equal deadlines are broken by ``order`` — highest window-constraint
    (x/y) first per Table 1; callers pass streams pre-sorted accordingly.
    """
    order = list(order) if order is not None else list(stream_packets)
    return _merge_by_deadline(stream_packets, tw, order)


@dataclass(frozen=True)
class Schedule:
    """The compiled fast-path lookup state for one resource mapping.

    Attributes
    ----------
    vp:
        Path visiting order for one scheduling window.
    vs:
        Per-path stream visiting order.
    path_packets:
        ``x_j``: packets per window assigned to each path.
    stream_path_packets:
        ``Tp_i^j``: packets of stream *i* on path *j*.
    tw:
        Scheduling-window length (seconds).
    """

    vp: tuple[Hashable, ...]
    vs: dict[Hashable, tuple[str, ...]]
    path_packets: dict[Hashable, int]
    stream_path_packets: dict[str, dict[Hashable, int]]
    tw: float

    @property
    def total_packets(self) -> int:
        return sum(self.path_packets.values())

    def packets_for(self, stream: str) -> int:
        """Total packets per window scheduled for ``stream``."""
        shares = self.stream_path_packets.get(stream)
        return sum(shares.values()) if shares else 0


def build_schedule(
    stream_path_packets: Mapping[str, Mapping[Hashable, int]],
    tw: float,
    stream_order: Sequence[str] | None = None,
    path_order: Sequence[Hashable] | None = None,
) -> Schedule:
    """Compile a resource mapping into V_P and per-path V_S vectors.

    Parameters
    ----------
    stream_path_packets:
        ``Tp_i^j`` — packets of stream ``i`` to send on path ``j`` per
        window.  Zero entries are allowed (null sub-streams).
    tw:
        Scheduling-window length.
    stream_order:
        Tie-break precedence among streams (most important first); defaults
        to mapping order.
    path_order:
        Tie-break precedence among paths; defaults to first-seen order.
    """
    if tw <= 0:
        raise ConfigurationError(f"tw must be positive, got {tw}")
    streams = list(stream_order) if stream_order else list(stream_path_packets)

    path_packets: dict[Hashable, int] = {}
    per_path_streams: dict[Hashable, dict[str, int]] = {}
    for stream in streams:
        shares = stream_path_packets.get(stream, {})
        for path, count in shares.items():
            if count < 0:
                raise ConfigurationError(
                    f"negative packet count for {stream!r} on {path!r}"
                )
            if count == 0:
                continue
            path_packets[path] = path_packets.get(path, 0) + count
            per_path_streams.setdefault(path, {})[stream] = count

    paths = list(path_order) if path_order else list(path_packets)
    for path in path_packets:
        if path not in paths:
            raise ConfigurationError(f"path {path!r} missing from path_order")

    vp = tuple(path_lookup_vector(path_packets, tw, order=paths))
    vs = {
        path: tuple(
            stream_schedule_vector(per_path_streams[path], tw, order=streams)
        )
        for path in path_packets
    }
    return Schedule(
        vp=vp,
        vs=vs,
        path_packets=dict(path_packets),
        stream_path_packets={
            s: {p: c for p, c in shares.items() if c > 0}
            for s, shares in stream_path_packets.items()
        },
        tw=tw,
    )
