"""Virtual-time observability: structured tracing, metrics, introspection.

Every run of the reproduction can explain itself: the layers that make
scheduling decisions (engine, transport, PGOS, monitoring, health,
middleware) emit typed :class:`~repro.obs.events.TraceEvent` records onto
a ring-buffered :class:`~repro.obs.trace.TraceBus` and update a
:class:`~repro.obs.metrics.MetricsRegistry`, both keyed to *simulation*
time.  ``tools/trace_report.py`` turns the exported JSONL trace back into
causal chains ("why did stream X miss its guarantee in window k").

Observability is opt-in per run.  The default is
:data:`~repro.obs.context.NULL_OBS`, whose trace bus and registry are
inert; hot paths guard every emission with ``if obs.enabled:``, so a
disabled run pays one attribute lookup per instrumentation site.

Typical use::

    from repro.obs import Observability

    obs = Observability()                       # enabled
    result = run_packet_session(..., obs=obs)
    obs.trace.export_jsonl("trace.jsonl")
    obs.metrics.export_json("metrics.json")
"""

from repro.obs.events import (
    CATEGORIES,
    Category,
    EVENT_NAMES,
    TraceEvent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.ledger import PerfLedger
from repro.obs.prof import (
    NULL_PROFILER,
    NullSpanProfiler,
    ProfileReport,
    SpanProfiler,
)
from repro.obs.prom import export_prometheus, render_prometheus
from repro.obs.trace import NullTraceBus, TraceBus
from repro.obs.context import NULL_OBS, Observability

__all__ = [
    "CATEGORIES",
    "Category",
    "Counter",
    "EVENT_NAMES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_PROFILER",
    "NullMetricsRegistry",
    "NullSpanProfiler",
    "NullTraceBus",
    "Observability",
    "PerfLedger",
    "ProfileReport",
    "SpanProfiler",
    "TraceBus",
    "TraceEvent",
    "export_prometheus",
    "render_prometheus",
]
