"""Hierarchical wall-clock span profiler fused with virtual time.

The trace bus answers *what happened* in virtual time; this module
answers *where the wall clock went*.  A :class:`SpanProfiler` keeps a
stack of named spans (``obs.prof.span("engine.step")`` as a context
manager or decorator) and aggregates, per unique (parent, name) tree
node: call count, cumulative wall-nanoseconds, self time (cumulative
minus time attributed to child spans), and the virtual seconds that
advanced while the span was open.  The virtual/wall ratio per subsystem
is the "simulation speed" signal: how many simulated seconds each layer
buys per wall second spent in it.

Span names are dotted, ``subsystem.operation`` (``service.step``,
``cdf.update``); the component before the first dot is the subsystem
rows are grouped under in :class:`ProfileReport`.

Determinism contract: the span *tree* — node names, nesting, creation
order, and call counts — is a pure function of the code path, hence of
``(scenario, seed)`` for a seeded run.  Only the recorded timings vary
between runs.  :meth:`SpanProfiler.structure` exposes exactly that
timing-free shape, and :meth:`structure_digest` hashes it, so two runs
of the same seed can assert byte-identical profiles modulo clocks.
Profiling never feeds back into simulation state, so profile-enabled
runs keep the checkpoint/resume identity guarantees.

The disabled path follows the ``NULL_OBS`` discipline: hot loops guard
with ``if prof.enabled:`` (one attribute lookup), and even an unguarded
``with prof.span(...)`` on :data:`NULL_PROFILER` costs only a shared
inert context manager.
"""

from __future__ import annotations

import functools
import hashlib
import json
import time
from typing import Any, Callable, Optional

from repro.fsutil import atomic_write_text

#: Schema version stamped into exported profile JSON.
PROFILE_SCHEMA = 1


class _SpanNode:
    """One aggregation node: a unique (parent chain, name) pair."""

    __slots__ = (
        "name",
        "parent",
        "children",
        "count",
        "cum_ns",
        "child_ns",
        "virtual_s",
        "child_virtual_s",
    )

    def __init__(self, name: str, parent: Optional["_SpanNode"]):
        self.name = name
        self.parent = parent
        self.children: dict[str, _SpanNode] = {}
        self.count = 0
        self.cum_ns = 0
        self.child_ns = 0
        self.virtual_s = 0.0
        self.child_virtual_s = 0.0


class _Span:
    """Reusable, re-entrant span handle bound to (profiler, name).

    Holds no per-entry state — ``__enter__`` pushes onto the profiler's
    stack — so the same handle can be cached, nested inside itself
    (recursion), and used as a decorator.
    """

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "SpanProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._profiler._enter(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._exit()

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            self._profiler._enter(self._name)
            try:
                return fn(*args, **kwargs)
            finally:
                self._profiler._exit()

        return wrapper


class _NullSpan:
    """Inert span: no-op enter/exit, identity decorator."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __call__(self, fn: Callable) -> Callable:
        return fn


_NULL_SPAN = _NullSpan()


class SpanProfiler:
    """Aggregating hierarchical profiler for one run.

    ``clock`` supplies the *virtual* time (session seconds or simulator
    clock); layers that own a clock rebind it via :meth:`bind_clock`.
    The default clock is frozen at zero, so wall-only profiling works
    out of the box.
    """

    enabled = True

    __slots__ = ("_root", "_current", "_stack", "_clock", "_t0_ns", "_spans")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._root = _SpanNode("<root>", None)
        self._current = self._root
        # Stack of (node, parent, start_wall_ns, start_virtual).
        self._stack: list[tuple[_SpanNode, _SpanNode, int, float]] = []
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._t0_ns = time.perf_counter_ns()
        self._spans: dict[str, _Span] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the virtual-time source (layer that owns the clock)."""
        self._clock = clock

    def span(self, name: str) -> _Span:
        """A context manager / decorator timing one named span."""
        handle = self._spans.get(name)
        if handle is None:
            handle = _Span(self, name)
            self._spans[name] = handle
        return handle

    # ------------------------------------------------------------------
    # span stack (called by _Span only)
    # ------------------------------------------------------------------
    def _enter(self, name: str) -> None:
        parent = self._current
        node = parent.children.get(name)
        if node is None:
            node = _SpanNode(name, parent)
            parent.children[name] = node
        self._stack.append(
            (node, parent, time.perf_counter_ns(), self._clock())
        )
        self._current = node

    def _exit(self) -> None:
        node, parent, start_ns, start_virtual = self._stack.pop()
        elapsed = time.perf_counter_ns() - start_ns
        advanced = self._clock() - start_virtual
        node.count += 1
        node.cum_ns += elapsed
        node.virtual_s += advanced
        parent.child_ns += elapsed
        parent.child_virtual_s += advanced
        self._current = parent

    # ------------------------------------------------------------------
    # structure (timing-free, deterministic per seed)
    # ------------------------------------------------------------------
    def structure(self) -> dict[str, Any]:
        """The span tree with counts only — byte-stable per seed."""
        return _structure_of(self._root)

    def structure_digest(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`structure`."""
        return _digest_structure(self.structure())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> "ProfileReport":
        """Snapshot the aggregates into a :class:`ProfileReport`.

        The coverage denominator is the wall time observed since this
        profiler was created, so a report taken right after a run states
        how much of the elapsed wall clock the named spans explain.
        """
        total_ns = time.perf_counter_ns() - self._t0_ns
        rows: list[dict[str, Any]] = []

        def walk(node: _SpanNode, prefix: str, depth: int) -> None:
            for child in node.children.values():
                path = f"{prefix}/{child.name}" if prefix else child.name
                rows.append(
                    {
                        "path": path,
                        "name": child.name,
                        "depth": depth,
                        "count": child.count,
                        "cum_ns": child.cum_ns,
                        "self_ns": child.cum_ns - child.child_ns,
                        "virtual_s": child.virtual_s,
                        "self_virtual_s": (
                            child.virtual_s - child.child_virtual_s
                        ),
                    }
                )
                walk(child, path, depth + 1)

        walk(self._root, "", 0)
        return ProfileReport(
            total_wall_ns=max(total_ns, 1),
            attributed_ns=self._root.child_ns,
            rows=rows,
            structure_digest=self.structure_digest(),
        )


class NullSpanProfiler:
    """Inert profiler behind the shared disabled observability context."""

    enabled = False

    __slots__ = ()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        return None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def structure(self) -> dict[str, Any]:
        return _structure_of(_SpanNode("<root>", None))

    def structure_digest(self) -> str:
        return _digest_structure(self.structure())

    def report(self) -> "ProfileReport":
        return ProfileReport(
            total_wall_ns=1,
            attributed_ns=0,
            rows=[],
            structure_digest=self.structure_digest(),
        )


#: The shared inert profiler (``NULL_OBS.prof`` and the profiling-off
#: default of enabled observability contexts).
NULL_PROFILER = NullSpanProfiler()


def _structure_of(root: _SpanNode) -> dict[str, Any]:
    def shape(node: _SpanNode) -> dict[str, Any]:
        return {
            "name": node.name,
            "count": node.count,
            "children": [shape(c) for c in node.children.values()],
        }

    return shape(root)


def _digest_structure(structure: dict[str, Any]) -> str:
    canonical = json.dumps(
        structure, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ProfileReport:
    """Immutable rendering of one profiler snapshot.

    ``rows`` are preorder over the span tree (deterministic creation
    order); tables re-sort by self time.  ``subsystems`` groups rows by
    the component before the first dot of the span name and derives the
    virtual/wall "simulation speed" ratio from *self* figures, so
    nesting never double-counts a subsystem.
    """

    __slots__ = ("total_wall_ns", "attributed_ns", "rows", "structure_digest")

    def __init__(
        self,
        total_wall_ns: int,
        attributed_ns: int,
        rows: list[dict[str, Any]],
        structure_digest: str,
    ):
        self.total_wall_ns = total_wall_ns
        self.attributed_ns = attributed_ns
        self.rows = rows
        self.structure_digest = structure_digest

    @property
    def coverage(self) -> float:
        """Fraction of observed wall time inside any named span."""
        return self.attributed_ns / self.total_wall_ns

    def subsystems(self) -> dict[str, dict[str, Any]]:
        """Per-subsystem self-time rollup with the sim-speed ratio."""
        groups: dict[str, dict[str, Any]] = {}
        for row in self.rows:
            key = row["name"].split(".", 1)[0]
            group = groups.setdefault(
                key, {"self_ns": 0, "self_virtual_s": 0.0, "calls": 0}
            )
            group["self_ns"] += row["self_ns"]
            group["self_virtual_s"] += row["self_virtual_s"]
            group["calls"] += row["count"]
        for group in groups.values():
            wall_s = group["self_ns"] / 1e9
            group["wall_s"] = round(wall_s, 6)
            group["sim_speed"] = (
                round(group["self_virtual_s"] / wall_s, 3) if wall_s > 0
                else 0.0
            )
            group["self_virtual_s"] = round(group["self_virtual_s"], 6)
        return dict(sorted(
            groups.items(), key=lambda kv: -kv[1]["self_ns"]
        ))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "total_wall_ns": self.total_wall_ns,
            "attributed_ns": self.attributed_ns,
            "coverage": round(self.coverage, 4),
            "structure_digest": self.structure_digest,
            "spans": list(self.rows),
            "subsystems": self.subsystems(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProfileReport":
        return cls(
            total_wall_ns=int(data["total_wall_ns"]),
            attributed_ns=int(data["attributed_ns"]),
            rows=list(data.get("spans", [])),
            structure_digest=data.get("structure_digest", ""),
        )

    def export_json(self, path) -> None:
        atomic_write_text(
            path,
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def _sorted_rows(self) -> list[dict[str, Any]]:
        return sorted(self.rows, key=lambda r: -r["self_ns"])

    def render(self) -> str:
        """Plain-text self-time table plus the subsystem rollup."""
        lines = [
            f"profile: {self.total_wall_ns / 1e9:.3f}s wall observed, "
            f"{self.coverage:.1%} attributed to spans",
            f"structure {self.structure_digest[:16]}",
            "",
            f"{'span':<42} {'calls':>9} {'self_s':>9} "
            f"{'cum_s':>9} {'virt_s':>9}",
        ]
        for row in self._sorted_rows():
            indent = "  " * row["depth"]
            lines.append(
                f"{indent + row['name']:<42} {row['count']:>9} "
                f"{row['self_ns'] / 1e9:>9.3f} "
                f"{row['cum_ns'] / 1e9:>9.3f} "
                f"{row['virtual_s']:>9.2f}"
            )
        lines.append("")
        lines.append(
            f"{'subsystem':<14} {'calls':>9} {'self_s':>9} {'virt_s':>9} "
            f"{'sim_speed':>10}"
        )
        for name, group in self.subsystems().items():
            lines.append(
                f"{name:<14} {group['calls']:>9} {group['wall_s']:>9.3f} "
                f"{group['self_virtual_s']:>9.2f} "
                f"{group['sim_speed']:>10.2f}"
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavored markdown tables (for PR/ledger artifacts)."""
        lines = [
            "## Profile",
            "",
            f"- wall observed: {self.total_wall_ns / 1e9:.3f}s",
            f"- span coverage: {self.coverage:.1%}",
            f"- structure: `{self.structure_digest[:16]}`",
            "",
            "| span | calls | self (s) | cum (s) | virtual (s) |",
            "| --- | ---: | ---: | ---: | ---: |",
        ]
        for row in self._sorted_rows():
            lines.append(
                f"| `{row['path']}` | {row['count']} "
                f"| {row['self_ns'] / 1e9:.3f} "
                f"| {row['cum_ns'] / 1e9:.3f} "
                f"| {row['virtual_s']:.2f} |"
            )
        lines += [
            "",
            "| subsystem | calls | self (s) | virtual (s) | sim speed |",
            "| --- | ---: | ---: | ---: | ---: |",
        ]
        for name, group in self.subsystems().items():
            lines.append(
                f"| {name} | {group['calls']} | {group['wall_s']:.3f} "
                f"| {group['self_virtual_s']:.2f} "
                f"| {group['sim_speed']:.2f} |"
            )
        return "\n".join(lines)
