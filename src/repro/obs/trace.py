"""The trace bus: a ring buffer of typed events with JSONL export.

The bus is bounded (``capacity`` events); when full, the oldest events
are dropped and counted, so a long chaos run keeps its recent history
instead of exhausting memory.  :class:`NullTraceBus` is the disabled
twin: same surface, every method inert, ``enabled`` False — hot paths
test that one attribute and skip the call entirely.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent


class TraceBus:
    """Ring-buffered, append-only event log ordered by emission."""

    enabled = True

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ConfigurationError(
                f"trace capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: Events evicted by the ring buffer (emitted minus retained).
        self.dropped = 0

    # ------------------------------------------------------------------
    # producing
    # ------------------------------------------------------------------
    def emit(
        self,
        sim_time: float,
        category: str,
        name: str,
        stream_id: Optional[int] = None,
        path: Optional[str] = None,
        **fields: Any,
    ) -> TraceEvent:
        """Append one event; returns it (with its sequence number)."""
        event = TraceEvent(
            sim_time=sim_time,
            category=category,
            name=name,
            seq=self._seq,
            stream_id=stream_id,
            path=path,
            fields=fields,
        )
        self._seq += 1
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)
        return event

    # ------------------------------------------------------------------
    # consuming
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (retained + dropped)."""
        return self._seq

    def events(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        stream_id: Optional[int] = None,
        path: Optional[str] = None,
    ) -> list[TraceEvent]:
        """Retained events, optionally filtered; emission order."""
        out = []
        for e in self._buffer:
            if category is not None and e.category != category:
                continue
            if name is not None and e.name != name:
                continue
            if stream_id is not None and e.stream_id != stream_id:
                continue
            if path is not None and e.path != path:
                continue
            out.append(e)
        return out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str | Path) -> int:
        """Write retained events, one JSON object per line; returns count.

        The write is atomic (temp file + rename): readers never see a
        half-written trace, even if the exporter dies mid-write.
        """
        from repro.fsutil import atomic_write_text

        events = list(self._buffer)
        atomic_write_text(
            path, "".join(event.to_json() + "\n" for event in events)
        )
        return len(events)

    @staticmethod
    def load_jsonl(path: str | Path) -> list[TraceEvent]:
        """Read a trace exported by :meth:`export_jsonl`."""
        events = []
        with open(path, "r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if line:
                    events.append(TraceEvent.from_json(line))
        return events


class NullTraceBus:
    """Disabled trace bus: accepts everything, records nothing."""

    enabled = False
    capacity = 0
    dropped = 0
    emitted = 0

    def emit(self, *args: Any, **kwargs: Any) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def events(self, *args: Any, **kwargs: Any) -> list[TraceEvent]:
        return []

    def export_jsonl(self, path: str | Path) -> int:
        # Writing an empty file keeps "run then export" scripts working
        # unconditionally.
        from repro.fsutil import atomic_write_text

        atomic_write_text(path, "")
        return 0

    load_jsonl = staticmethod(TraceBus.load_jsonl)
