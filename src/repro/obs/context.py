"""The per-run observability context handed down through the layers.

One :class:`Observability` object travels from the entry point (packet
session, middleware service, chaos harness) into every instrumented
layer.  It bundles the trace bus, the metrics registry, and a stream-ID
join table: the middleware assigns each stream a monotone integer ID at
open time and binds it here, so events emitted by *any* layer can be
tagged with (and joined on) ``stream_id`` instead of string-matching
stream names.

``NULL_OBS`` is the module-wide disabled context and the default
everywhere; its ``enabled`` attribute is the one-lookup hot-path guard::

    if self._obs.enabled:
        self._obs.trace.emit(...)

``NULL_OBS`` is shared across the process, so binding IDs into it is a
silent no-op — a disabled run keeps no observability state at all.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.prof import NULL_PROFILER, SpanProfiler
from repro.obs.trace import NullTraceBus, TraceBus


class Observability:
    """Trace bus + metrics registry + stream-ID join table for one run."""

    __slots__ = ("enabled", "trace", "metrics", "prof", "_stream_ids")

    def __init__(
        self,
        enabled: bool = True,
        trace_capacity: int = 65536,
        profile: bool = False,
    ):
        self.enabled = enabled
        if enabled:
            self.trace = TraceBus(capacity=trace_capacity)
            self.metrics = MetricsRegistry()
        else:
            self.trace = NullTraceBus()
            self.metrics = NullMetricsRegistry()
        # Wall-clock profiling is a separate opt-in on top of tracing:
        # hot paths guard spans with ``if obs.prof.enabled:`` so trace-
        # only runs skip the span machinery entirely.
        self.prof = SpanProfiler() if (enabled and profile) else NULL_PROFILER
        self._stream_ids: dict[str, int] = {}

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared inert context (same object as :data:`NULL_OBS`)."""
        return NULL_OBS

    # ------------------------------------------------------------------
    # stream-ID join table
    # ------------------------------------------------------------------
    def bind_stream(self, name: str, stream_id: int) -> None:
        """Record the stable ID the middleware assigned to ``name``.

        No-op when disabled, so the shared ``NULL_OBS`` stays stateless.
        """
        if self.enabled:
            self._stream_ids[name] = stream_id

    def bind_streams(self, ids: Mapping[str, int]) -> None:
        """Bind a whole name -> ID table at once."""
        if self.enabled:
            self._stream_ids.update(ids)

    def stream_id(self, name: str) -> Optional[int]:
        """The bound ID of ``name`` (``None`` if never bound)."""
        return self._stream_ids.get(name)

    def stream_ids(self) -> dict[str, int]:
        """A copy of the full name -> ID table."""
        return dict(self._stream_ids)


#: The shared disabled context; default for every instrumented layer.
NULL_OBS = Observability(enabled=False)
