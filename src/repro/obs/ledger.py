"""Append-only performance ledger with noise-aware regression checks.

The ``benchmarks/results/BENCH_*.json`` files each hold one baseline and
one latest measurement — a snapshot, not a trajectory.  The ledger turns
them into one: every ``tools/perf_ledger.py append`` harvests the
headline metric of each benchmark into a single JSONL entry stamped with
enough identity to make entries comparable later —

* a **machine fingerprint** (platform, architecture, Python, core
  count), because wall-clock numbers only compare within a machine;
* the **git revision** and the runner's **code fingerprint**, so a
  regression points at the change that introduced it;
* a real timestamp (the ledger is telemetry *about* runs, so it sits
  deliberately outside the determinism contract that keeps wall-clock
  out of report checksums).

``check`` compares the newest entry against a trailing window of prior
entries from the same machine, per metric, with direction-aware
semantics (``sessions_per_sec`` regresses down, ``guard_ns`` regresses
up).  The budget reuses the gate pattern from bench_obs_overhead.py:
a fixed relative threshold, widened to twice the history's own observed
spread when the machine is noisier than the threshold — a true gate on
quiet machines, a gross-regression check on noisy ones.  With fewer
than :data:`MIN_HISTORY` prior entries every metric passes trivially,
so a freshly started ledger (or the CI throwaway) self-checks green.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Optional

LEDGER_SCHEMA = 1

#: Default ledger location, relative to the repo root.
DEFAULT_LEDGER = Path("benchmarks/results/LEDGER.jsonl")

#: Relative regression budget before noise widening (the same 3 %
#: stance as bench_obs_overhead.py's wall-clock trend gate).
DEFAULT_THRESHOLD = 0.03

#: Trailing entries (same machine) the candidate compares against.
DEFAULT_WINDOW = 5

#: Prior same-machine entries required before a metric gates at all.
MIN_HISTORY = 1

#: Headline metrics harvested from each BENCH_*.json, as
#: ``metric key -> (file, path inside the JSON, direction)``.
#: Direction says which way is *better*; anything not listed here rides
#: along in the entry but never gates.
HEADLINE_METRICS: dict[str, tuple[str, tuple[str, ...], str]] = {
    "cdf.incremental_us_per_cycle": (
        "BENCH_cdf.json", ("latest", "incremental_us_per_cycle"), "lower",
    ),
    "cdf.speedup": ("BENCH_cdf.json", ("latest", "speedup"), "higher"),
    "obs.norm_disabled": (
        "BENCH_obs.json", ("latest", "norm_disabled"), "lower",
    ),
    "obs.overhead_enabled": (
        "BENCH_obs.json", ("latest", "overhead_enabled"), "lower",
    ),
    "obs.guard_ns": ("BENCH_obs.json", ("latest", "guard_ns"), "lower"),
    "runner.speedup": (
        "BENCH_runner.json", ("latest", "speedup"), "higher",
    ),
    "checkpoint.mean_save_ms": (
        "BENCH_checkpoint.json", ("snapshot", "latest", "mean_save_ms"),
        "lower",
    ),
    "checkpoint.wall_s": (
        "BENCH_checkpoint.json",
        ("overhead", "latest", "checkpointed_wall_s"), "lower",
    ),
    "scale.sessions_per_sec": (
        "BENCH_scale.json", ("churn", "latest", "sessions_per_sec"),
        "higher",
    ),
    "scale.steps_per_sec": (
        "BENCH_scale.json", ("churn", "latest", "steps_per_sec"), "higher",
    ),
    "scale.concurrent_steps_per_sec": (
        "BENCH_scale.json", ("concurrent", "latest", "steps_per_sec"),
        "higher",
    ),
    "sim.steps_per_sec": (
        "BENCH_sim_core.json",
        ("delivery_core", "latest", "steps_per_sec"), "higher",
    ),
    "sim.speedup": (
        "BENCH_sim_core.json",
        ("delivery_core", "latest", "speedup"), "higher",
    ),
    "cluster.speedup_4": (
        "BENCH_cluster.json", ("scaleout", "latest", "speedup_4"),
        "higher",
    ),
    "cluster.sessions_per_sec_4": (
        "BENCH_cluster.json",
        ("scaleout", "latest", "sessions_per_sec_4"), "higher",
    ),
    "topo.envelope_sessions_per_sec.fat_tree": (
        "BENCH_topo.json",
        ("fat_tree_k4", "latest", "envelope_sessions_per_sec"), "higher",
    ),
    "topo.envelope_sessions_per_sec.leaf_spine": (
        "BENCH_topo.json",
        ("leaf_spine_4x8", "latest", "envelope_sessions_per_sec"),
        "higher",
    ),
}


def machine_fingerprint() -> dict[str, Any]:
    """Identity of the measuring machine; ``id`` keys comparisons."""
    info = {
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 0,
    }
    canonical = json.dumps(info, sort_keys=True, separators=(",", ":"))
    info["id"] = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    return info


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """The current HEAD commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _dig(data: Any, path: tuple[str, ...]) -> Optional[float]:
    for key in path:
        if not isinstance(data, dict) or key not in data:
            return None
        data = data[key]
    return float(data) if isinstance(data, (int, float)) else None


def collect_headline_metrics(results_dir: Path) -> dict[str, float]:
    """Harvest every registered headline metric present on disk."""
    metrics: dict[str, float] = {}
    cache: dict[str, Optional[dict]] = {}
    for metric, (filename, path, _direction) in HEADLINE_METRICS.items():
        if filename not in cache:
            file_path = Path(results_dir) / filename
            if file_path.exists():
                cache[filename] = json.loads(
                    file_path.read_text(encoding="utf-8")
                )
            else:
                cache[filename] = None
        data = cache[filename]
        if data is None:
            continue
        value = _dig(data, path)
        if value is not None:
            metrics[metric] = value
    return metrics


def make_entry(
    results_dir: Path,
    note: str = "",
    repo_root: Optional[Path] = None,
) -> dict[str, Any]:
    """One ready-to-append ledger entry from the current results dir."""
    entry: dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": machine_fingerprint(),
        "git_rev": git_revision(repo_root),
        "metrics": collect_headline_metrics(Path(results_dir)),
    }
    if note:
        entry["note"] = note
    try:
        from repro.runner.fingerprint import code_fingerprint

        entry["code_fingerprint"] = code_fingerprint()
    except Exception:
        entry["code_fingerprint"] = None
    return entry


@dataclass
class RegressionFinding:
    """Verdict for one metric of the candidate entry."""

    metric: str
    direction: str
    value: float
    baseline: Optional[float] = None
    history: list[float] = field(default_factory=list)
    change: Optional[float] = None  # positive = worse, direction-aware
    budget: Optional[float] = None
    regressed: bool = False

    def render(self) -> str:
        if self.baseline is None:
            return (
                f"  {self.metric:<32} {self.value:>12.3f}  "
                f"(no baseline yet)"
            )
        mark = "REGRESSED" if self.regressed else "ok"
        return (
            f"  {self.metric:<32} {self.value:>12.3f}  vs "
            f"{self.baseline:.3f} ({self.change:+.1%}, "
            f"budget {self.budget:.1%})  {mark}"
        )


def _spread(values: list[float]) -> float:
    """Relative max-min spread; 0.0 when only one sample exists."""
    lo, hi = min(values), max(values)
    return (hi - lo) / lo if len(values) > 1 and lo > 0 else 0.0


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class PerfLedger:
    """The append-only JSONL trajectory of benchmark headline metrics."""

    def __init__(self, path: Path | str = DEFAULT_LEDGER):
        self.path = Path(path)

    def append(self, entry: dict[str, Any]) -> dict[str, Any]:
        """Append one entry (a plain ``json.dumps``-able dict)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return entry

    def entries(self) -> list[dict[str, Any]]:
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                out.append(json.loads(line))
        return out

    # ------------------------------------------------------------------
    # regression check
    # ------------------------------------------------------------------
    def check(
        self,
        window: int = DEFAULT_WINDOW,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> list[RegressionFinding]:
        """Judge the newest entry against its trailing same-machine window.

        Returns one finding per gated metric of the newest entry; the
        run regresses iff any finding has ``regressed=True``.  An empty
        ledger (or one whose newest entry has no gated metrics) returns
        an empty list — vacuously green.
        """
        entries = self.entries()
        if not entries:
            return []
        candidate = entries[-1]
        machine_id = (candidate.get("machine") or {}).get("id")
        prior = [
            e for e in entries[:-1]
            if (e.get("machine") or {}).get("id") == machine_id
        ]
        findings: list[RegressionFinding] = []
        for metric, value in sorted(
            (candidate.get("metrics") or {}).items()
        ):
            spec = HEADLINE_METRICS.get(metric)
            if spec is None:
                continue  # informational ride-along, never gated
            direction = spec[2]
            history = [
                e["metrics"][metric]
                for e in prior[-window:]
                if metric in (e.get("metrics") or {})
            ]
            finding = RegressionFinding(
                metric=metric,
                direction=direction,
                value=float(value),
                history=history,
            )
            gateable = (
                len(history) >= MIN_HISTORY
                and min(history) > 0
                and value > 0
            )
            if gateable:
                baseline = _median(history)
                if direction == "lower":
                    change = value / baseline - 1.0
                else:
                    change = baseline / value - 1.0
                budget = max(threshold, 2.0 * _spread(history))
                finding.baseline = baseline
                finding.change = change
                finding.budget = budget
                finding.regressed = change > budget
            findings.append(finding)
        return findings

    @staticmethod
    def render(findings: list[RegressionFinding]) -> str:
        if not findings:
            return "ledger check: no gated metrics (vacuously ok)"
        lines = [f.render() for f in findings]
        n_bad = sum(f.regressed for f in findings)
        verdict = (
            f"ledger check: {n_bad} regression(s) in "
            f"{len(findings)} gated metric(s)"
            if n_bad
            else f"ledger check: ok ({len(findings)} gated metric(s))"
        )
        return "\n".join([verdict, *lines])
