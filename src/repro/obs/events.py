"""Typed trace events, keyed to simulation time.

One event class covers every layer; *typing* lives in the
``(category, name)`` pair, drawn from the registries below so producers
and consumers (``tools/trace_report.py``) agree on spellings.  Events
carry two join keys besides their payload: ``stream_id`` (the monotone
integer the middleware assigns at open time) and ``path`` (the overlay
path label), so events from different layers correlate without
string-matching stream names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigurationError


class Category:
    """Event categories, one per instrumented layer."""

    ENGINE = "engine"
    TRANSPORT = "transport"
    SCHEDULER = "scheduler"
    MONITOR = "monitor"
    HEALTH = "health"
    SERVICE = "service"
    HARNESS = "harness"
    RUNNER = "runner"
    WORKLOAD = "workload"
    CHECKPOINT = "checkpoint"
    CLUSTER = "cluster"


#: Every known category (validation + exhaustive round-trip tests).
CATEGORIES = (
    Category.ENGINE,
    Category.TRANSPORT,
    Category.SCHEDULER,
    Category.MONITOR,
    Category.HEALTH,
    Category.SERVICE,
    Category.HARNESS,
    Category.RUNNER,
    Category.WORKLOAD,
    Category.CHECKPOINT,
    Category.CLUSTER,
)

#: Known event names per category.  The bus accepts unknown names (new
#: instrumentation should not crash old consumers) but everything the
#: repo itself emits is registered here.
EVENT_NAMES: dict[str, tuple[str, ...]] = {
    Category.ENGINE: ("heap_compacted",),
    Category.TRANSPORT: ("window", "path_blocked"),
    Category.SCHEDULER: ("remap", "quarantine"),
    Category.MONITOR: ("cdf_refresh", "cdf_shift"),
    Category.HEALTH: ("transition",),
    Category.SERVICE: (
        "stream_open",
        "stream_close",
        "admission_upcall",
        "degradation",
        "stream_shed",
        "stream_downgraded",
        "stream_restored",
        "window_shortfall",
    ),
    Category.HARNESS: ("campaign_start", "campaign_end"),
    # The experiment orchestrator (repro.runner): its "virtual time" is
    # wall-clock seconds since the run started.
    Category.RUNNER: (
        "run_start",
        "spec_start",
        "spec_end",
        "cache_hit",
        "spec_retry",
        "run_end",
    ),
    # The multi-tenant workload engine (repro.workload): session-level
    # arrival/departure churn driven against the middleware.
    Category.WORKLOAD: (
        "workload_start",
        "session_arrival",
        "session_admitted",
        "session_degraded",
        "session_rejected",
        "session_close",
        "workload_end",
    ),
    # Crash-safe execution (repro.checkpoint): snapshot lifecycle, so
    # resume points appear in causal chains next to the virtual time
    # they captured.
    Category.CHECKPOINT: (
        "snapshot_write",
        "snapshot_restore",
        "snapshot_reject",
    ),
    # The sharded control plane (repro.cluster): worker lifecycle and
    # the barrier-synchronized virtual-time epochs the master drives.
    Category.CLUSTER: (
        "shard_spawn",
        "shard_respawn",
        "epoch_barrier",
        "shard_exit",
        "merge",
    ),
}


@dataclass(slots=True)
class TraceEvent:
    """One structured record on the trace bus.

    Attributes
    ----------
    sim_time:
        Virtual time of the event (session seconds for interval-stepped
        layers, simulator clock for the packet engine).
    category:
        Producing layer, one of :data:`CATEGORIES`.
    name:
        Event type within the category (see :data:`EVENT_NAMES`).
    seq:
        Bus-assigned monotone sequence number; total order even among
        events sharing a ``sim_time``.
    stream_id:
        Stable integer ID of the stream involved, if any.
    path:
        Overlay path label involved, if any.
    fields:
        JSON-serializable payload.
    """

    sim_time: float
    category: str
    name: str
    seq: int = 0
    stream_id: Optional[int] = None
    path: Optional[str] = None
    fields: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ConfigurationError(
                f"unknown event category {self.category!r}; "
                f"expected one of {CATEGORIES}"
            )

    def to_json(self) -> str:
        """One JSONL line; omits null join keys to keep traces compact."""
        record: dict[str, Any] = {
            "t": self.sim_time,
            "cat": self.category,
            "name": self.name,
            "seq": self.seq,
        }
        if self.stream_id is not None:
            record["stream_id"] = self.stream_id
        if self.path is not None:
            record["path"] = self.path
        if self.fields:
            record["fields"] = self.fields
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Inverse of :meth:`to_json`."""
        record = json.loads(line)
        return cls(
            sim_time=float(record["t"]),
            category=record["cat"],
            name=record["name"],
            seq=int(record.get("seq", 0)),
            stream_id=record.get("stream_id"),
            path=record.get("path"),
            fields=record.get("fields", {}),
        )
