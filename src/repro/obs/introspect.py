"""Run introspection: turn a trace back into explanations.

This is the analysis half of the observability layer, shared by
``tools/trace_report.py`` and the chaos harness.  It answers two kinds
of question from a trace alone:

* **robustness figures** — time-to-detect and time-to-recover computed
  by replaying the ``health.transition`` events (the chaos harness now
  reports these trace-derived numbers rather than keeping bespoke
  bookkeeping);
* **causal chains** — for a ``service.window_shortfall`` event ("stream
  X missed its guarantee in window k"), the ordered sequence of
  preceding decisions that produced it: the health transition that
  quarantined a path, the quarantine application, the remap that
  re-routed the mapping, then the shortfall itself.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.obs.events import Category, TraceEvent

#: Health states that quarantine a path (mirrors PathHealth semantics
#: without importing the robustness layer into the analysis path).
_QUARANTINED_STATES = ("failed", "recovering")
_HEALTHY = "healthy"


def _ordered(events: Iterable[TraceEvent]) -> list[TraceEvent]:
    return sorted(events, key=lambda e: (e.sim_time, e.seq))


def health_transitions(events: Iterable[TraceEvent]) -> list[TraceEvent]:
    """All ``health.transition`` events, in time order."""
    return _ordered(
        e
        for e in events
        if e.category == Category.HEALTH and e.name == "transition"
    )


def detection_latency_from_trace(
    events: Iterable[TraceEvent],
    faulted_paths: Iterable[str],
    first_onset: float,
) -> Optional[float]:
    """Seconds from first fault onset to first off-HEALTHY transition.

    Mirrors the chaos harness's definition: the first health transition
    on a faulted path at/after the onset, whatever its target state.
    """
    faulted = set(faulted_paths)
    for e in health_transitions(events):
        if e.path in faulted and e.sim_time >= first_onset:
            return e.sim_time - first_onset
    return None


def recovery_latency_from_trace(
    events: Iterable[TraceEvent],
    paths: Iterable[str],
    last_end: float,
) -> Optional[float]:
    """Seconds from last fault end until every path is HEALTHY again.

    Replays the per-path states over the transition events and finds the
    first instant at/after ``last_end`` where all paths are healthy;
    ``0.0`` when they already were, ``None`` when some path never heals.
    """
    states = {p: _HEALTHY for p in paths}
    for e in health_transitions(events):
        if e.path in states:
            states[e.path] = e.fields.get("new", _HEALTHY)
        if e.sim_time >= last_end and all(
            s == _HEALTHY for s in states.values()
        ):
            return e.sim_time - last_end
    if all(s == _HEALTHY for s in states.values()):
        return 0.0
    return None


def guarantee_violations(
    events: Iterable[TraceEvent],
    stream: Optional[str] = None,
    stream_id: Optional[int] = None,
) -> list[TraceEvent]:
    """All per-window guarantee shortfall events, optionally filtered."""
    out = []
    for e in events:
        if e.category != Category.SERVICE or e.name != "window_shortfall":
            continue
        if stream is not None and e.fields.get("stream") != stream:
            continue
        if stream_id is not None and e.stream_id != stream_id:
            continue
        out.append(e)
    return _ordered(out)


def explain_shortfall(
    events: Sequence[TraceEvent],
    shortfall: TraceEvent,
    lookback: Optional[float] = None,
) -> list[TraceEvent]:
    """The ordered causal chain behind one shortfall event.

    Selects, among events at/before the shortfall (and within
    ``lookback`` seconds when given):

    1. the most recent health transition *into* a quarantined state per
       path (the detection),
    2. the most recent scheduler quarantine application,
    3. the most recent remap,

    and returns them time-ordered with the shortfall last.  Links that
    never happened (e.g. no remap fired yet) are simply absent, so the
    chain degrades gracefully on partial traces.
    """
    t = shortfall.sim_time
    horizon = t - lookback if lookback is not None else None

    def in_window(e: TraceEvent) -> bool:
        if (e.sim_time, e.seq) > (t, shortfall.seq):
            return False
        return horizon is None or e.sim_time >= horizon

    last_transition: dict[str, TraceEvent] = {}
    last_detect: dict[str, TraceEvent] = {}
    last_quarantine: Optional[TraceEvent] = None
    last_remap: Optional[TraceEvent] = None
    for e in _ordered(events):
        if not in_window(e):
            continue
        if e.category == Category.HEALTH and e.name == "transition":
            if e.path:
                last_transition[e.path] = e
                if e.fields.get("new") in _QUARANTINED_STATES:
                    last_detect[e.path] = e
        elif e.category == Category.SCHEDULER and e.name == "quarantine":
            last_quarantine = e
        elif e.category == Category.SCHEDULER and e.name == "remap":
            last_remap = e
    # A path whose *latest* transition left quarantine has healed; its
    # old detection is no longer part of this shortfall's cause.
    chain = [
        e
        for path, e in last_detect.items()
        if last_transition[path] is e
    ]
    if last_quarantine is not None:
        chain.append(last_quarantine)
    if last_remap is not None:
        chain.append(last_remap)
    chain = _ordered(chain)
    chain.append(shortfall)
    return chain


def render_chain(chain: Sequence[TraceEvent]) -> str:
    """Human-readable rendering of a causal chain."""
    lines = []
    for e in chain:
        extra = ""
        if e.category == Category.HEALTH and e.name == "transition":
            extra = (
                f"{e.path}: {e.fields.get('old')} -> {e.fields.get('new')}"
                f" ({e.fields.get('reason')})"
            )
        elif e.name == "quarantine":
            extra = f"quarantined={e.fields.get('paths')}"
        elif e.name == "remap":
            extra = (
                f"remap #{e.fields.get('remap_id')} over "
                f"{e.fields.get('paths')}"
                + (" [degraded]" if e.fields.get("degraded") else "")
            )
        elif e.name == "window_shortfall":
            extra = (
                f"stream {e.fields.get('stream')!r} window "
                f"{e.fields.get('window')}: delivered "
                f"{e.fields.get('delivered_mbps'):.2f} of "
                f"{e.fields.get('required_mbps'):.2f} Mbps"
            )
        lines.append(
            f"  t={e.sim_time:9.2f}s  {e.category}.{e.name:<18s} {extra}"
        )
    return "\n".join(lines)


def dropped_from_trace(events: Sequence[TraceEvent]) -> int:
    """Events the ring buffer dropped before this trace was exported.

    Sequence numbers are bus-assigned and monotone from zero, so a
    retained trace whose highest ``seq`` exceeds its length is missing
    exactly ``max(seq) + 1 - len(events)`` older events.
    """
    if not events:
        return 0
    emitted = max(e.seq for e in events) + 1
    return max(0, emitted - len(events))


def summarize_dict(events: Sequence[TraceEvent]) -> dict:
    """Structured form of :func:`summarize` (machine-readable reports)."""
    counts: dict[str, int] = {}
    t_min = t_max = None
    for e in events:
        key = f"{e.category}.{e.name}"
        counts[key] = counts.get(key, 0) + 1
        t_min = e.sim_time if t_min is None else min(t_min, e.sim_time)
        t_max = e.sim_time if t_max is None else max(t_max, e.sim_time)
    dropped = dropped_from_trace(events)
    return {
        "events": len(events),
        "emitted": len(events) + dropped,
        "dropped": dropped,
        "t_min": t_min,
        "t_max": t_max,
        "counts": dict(sorted(counts.items())),
    }


def summarize(events: Sequence[TraceEvent]) -> str:
    """A compact overview of one trace: counts per category and name."""
    summary = summarize_dict(events)
    header = f"{summary['events']} events"
    if summary["t_min"] is not None:
        header += (
            f" spanning t=[{summary['t_min']:.2f}, "
            f"{summary['t_max']:.2f}]s"
        )
    if summary["dropped"]:
        header += (
            f" ({summary['dropped']} older events dropped by the ring "
            f"buffer; {summary['emitted']} emitted)"
        )
    lines = [header]
    for key, count in summary["counts"].items():
        lines.append(f"  {key:<28s} {count}")
    return "\n".join(lines)
