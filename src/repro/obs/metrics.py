"""Self-metrics: counters, gauges, and fixed-bucket histograms.

Instruments are created once (:meth:`MetricsRegistry.counter` and
friends are create-or-get) and updated from hot paths; the registry
snapshots every instrument against *simulation* time, so a run's metric
trajectory lines up with its trace.  Bucket semantics follow the
cumulative-le convention: a histogram with bounds ``[1, 5]`` files a
value of exactly ``1`` under the ``<= 1`` bucket, values above the last
bound under overflow.

The ``Null*`` twins make a disabled registry free: shared inert
instrument singletons, no allocation, no arithmetic.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level (heap depth, degradation flag, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with cumulative-``<=`` bucket semantics.

    ``bounds`` are the finite upper bucket edges, strictly increasing; an
    implicit overflow bucket catches everything beyond the last bound.  A
    value landing exactly on an edge belongs to that edge's bucket.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        bounds = [float(b) for b in bounds]
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly increasing, "
                f"got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class _NullInstrument:
    """Inert counter/gauge/histogram; one shared instance serves all."""

    __slots__ = ()
    name = "<null>"
    value = 0.0
    count = 0
    total = 0.0
    mean = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Create-or-get instrument store with sim-time snapshotting."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        #: ``(sim_time, {name: instrument snapshot})`` pairs, in order.
        self.snapshots: list[tuple[float, dict[str, dict[str, Any]]]] = []

    def _get(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        histogram = self._get(name, Histogram, bounds)
        if list(histogram.bounds) != [float(b) for b in bounds]:
            raise ConfigurationError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return histogram

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name`` (or ``None``)."""
        return self._instruments.get(name)

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------
    def snapshot(self, sim_time: float) -> dict[str, dict[str, Any]]:
        """Record (and return) every instrument's state at ``sim_time``."""
        state = {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }
        self.snapshots.append((sim_time, state))
        return state

    def to_dict(self) -> dict[str, Any]:
        """Current values plus the snapshot trajectory, JSON-ready."""
        return {
            "current": {
                name: instrument.snapshot()
                for name, instrument in sorted(self._instruments.items())
            },
            "snapshots": [
                {"sim_time": t, "metrics": state}
                for t, state in self.snapshots
            ],
        }

    def export_json(self, path: str | Path) -> None:
        from repro.fsutil import atomic_write_text

        atomic_write_text(
            path,
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    @staticmethod
    def load_json(path: str | Path) -> dict[str, Any]:
        return json.loads(Path(path).read_text(encoding="utf-8"))


class NullMetricsRegistry:
    """Disabled registry: every instrument is the shared inert one."""

    enabled = False
    snapshots: list = []

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float]) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> list[str]:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self, sim_time: float) -> dict[str, Any]:
        return {}

    def to_dict(self) -> dict[str, Any]:
        return {"current": {}, "snapshots": []}

    def export_json(self, path: str | Path) -> None:
        from repro.fsutil import atomic_write_text

        atomic_write_text(path, json.dumps(self.to_dict()) + "\n")

    load_json = staticmethod(MetricsRegistry.load_json)
