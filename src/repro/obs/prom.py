"""Prometheus text-format exporter for the metrics registry.

The registry's instruments map directly onto the Prometheus exposition
format (version 0.0.4): counters and gauges are single samples, and our
:class:`~repro.obs.metrics.Histogram` already keeps cumulative-``<=``
bucket semantics (``bisect_left`` puts a value equal to an edge *in*
that edge's bucket), so its per-bucket counts convert to the standard
cumulative ``_bucket{le="..."}`` series with an exact ``+Inf`` overflow
row.  Metric names are sanitized (dots become underscores) and counters
get the conventional ``_total`` suffix.

This is an export path, not a live scrape endpoint: the workload and
harness CLIs write the rendered text next to their JSON artifacts
(``--metrics-out metrics.prom`` or ``--metrics-format prometheus``), so
any Prometheus-compatible toolchain can ingest a run's final state.
"""

from __future__ import annotations

import re
from typing import Optional, Union

from repro.fsutil import atomic_write_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

AnyRegistry = Union[MetricsRegistry, NullMetricsRegistry]


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """A valid Prometheus metric name for one of ours.

    Dots (our namespacing) and any other invalid characters become
    underscores; the namespace prefix keeps exported names collision-
    free against other exporters on the same scrape target.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if namespace:
        cleaned = f"{namespace}_{cleaned}"
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Inside ``{label="..."}`` a backslash, double quote, or newline
    would corrupt the sample line (or the whole scrape); the format
    defines ``\\\\``, ``\\"``, and ``\\n`` escapes for exactly these.
    Order matters: backslashes first, or the escapes themselves get
    re-escaped.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # HELP text runs to end of line; the format escapes backslash and
    # newline (quotes are fine there).
    return text.replace("\\", "\\\\").replace("\n", "\\n")


#: Counter-name segments that become labels on export: a counter named
#: ``admission.admitted.tenant.gold`` renders as one sample of the
#: ``repro_admission_admitted_total`` family with ``tenant="gold"``.
_LABEL_DIMENSIONS = ("tenant", "partition")


def split_labeled_counter(
    name: str,
) -> tuple[str, Optional[str], Optional[str]]:
    """Split a dimensioned counter name into (base, label, value).

    Returns ``(name, None, None)`` for plain counters.  The value part
    is everything after the marker — tenant names are free-form, so it
    may itself contain dots (or worse; see
    :func:`escape_label_value`).
    """
    for dimension in _LABEL_DIMENSIONS:
        marker = f".{dimension}."
        split_at = name.find(marker)
        if split_at > 0:
            return (
                name[:split_at],
                dimension,
                name[split_at + len(marker):],
            )
    return name, None, None


def _format_value(value: float) -> str:
    # Integral floats print as integers (Prometheus accepts either; the
    # shorter form keeps the text diff-friendly).
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _le_label(bound: float) -> str:
    return _format_value(bound)


def render_prometheus(
    registry: AnyRegistry, namespace: str = "repro"
) -> str:
    """The full registry in Prometheus exposition text format."""
    lines: list[str] = []
    families_opened: set[str] = set()
    for name in registry.names():
        instrument = registry.get(name)
        metric = sanitize_metric_name(name, namespace)
        if isinstance(instrument, Counter):
            base, label, label_value = split_labeled_counter(name)
            family = f"{sanitize_metric_name(base, namespace)}_total"
            if family not in families_opened:
                families_opened.add(family)
                lines.append(f"# HELP {family} {_escape_help(base)}")
                lines.append(f"# TYPE {family} counter")
            if label is None:
                lines.append(
                    f"{family} {_format_value(instrument.value)}"
                )
            else:
                lines.append(
                    f'{family}{{{label}="'
                    f'{escape_label_value(label_value)}"}} '
                    f"{_format_value(instrument.value)}"
                )
        elif isinstance(instrument, Gauge):
            lines.append(f"# HELP {metric} {name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# HELP {metric} {name}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, bucket_count in zip(
                instrument.bounds, instrument.counts
            ):
                cumulative += bucket_count
                lines.append(
                    f'{metric}_bucket{{le="{_le_label(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{metric}_bucket{{le="+Inf"}} {instrument.count}'
            )
            lines.append(
                f"{metric}_sum {_format_value(instrument.total)}"
            )
            lines.append(f"{metric}_count {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_prometheus(
    registry: AnyRegistry, path, namespace: str = "repro"
) -> str:
    """Atomically write the rendered exposition text; returns it."""
    text = render_prometheus(registry, namespace=namespace)
    atomic_write_text(path, text)
    return text


def export_metrics(
    registry: AnyRegistry,
    path,
    fmt: str = "auto",
    namespace: str = "repro",
) -> str:
    """Export ``registry`` to ``path`` as JSON or Prometheus text.

    ``fmt="auto"`` picks by extension: ``.prom`` exports Prometheus
    exposition text, everything else the registry's native JSON.
    Returns the format actually written.
    """
    from pathlib import Path

    from repro.errors import ConfigurationError

    if fmt == "auto":
        fmt = "prometheus" if Path(path).suffix == ".prom" else "json"
    if fmt == "prometheus":
        export_prometheus(registry, path, namespace=namespace)
    elif fmt == "json":
        registry.export_json(path)
    else:
        raise ConfigurationError(
            f"unknown metrics format {fmt!r}; "
            "expected auto, json, or prometheus"
        )
    return fmt
