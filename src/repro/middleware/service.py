"""IQ-Paths as a service: streams join, leave, and are self-regulated.

The figure experiments drive one fixed stream set; this facade exposes
the *dynamic* middleware the paper describes: admission upcalls at open
time, remaps on membership changes and CDF shifts, bounded sender
buffers, and per-stream reporting.

Time is interval-stepped (like the figure driver); the service owns the
loop and applications script membership through :meth:`IQPathsService.at`
or drive it step by step with :meth:`IQPathsService.advance`.

Runtime fault tolerance rides on top: pass a
:class:`repro.network.faults.FaultCampaign` and the service applies its
faults *mid-run* (scaling delivered bandwidth, adding loss, dropping
monitoring observations during blackouts), while a
:class:`repro.robustness.health.HealthTracker` watches every path.
Failed paths are quarantined out of the PGOS mapping, elastic streams
are shed before guaranteed ones, guarantees are downgraded before any
stream is dropped, and a quarantined path only re-enters service through
its backoff-gated, probe-confirmed recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AdmissionError, CheckpointError, ConfigurationError
from repro.core.admission import AdmissionController
from repro.core.pgos import PGOSScheduler
from repro.core.scheduler import water_fill
from repro.core.spec import StreamSpec
from repro.harness.metrics import fraction_of_time_at_least
from repro.network.emulab import TestbedRealization
from repro.network.faults import FaultCampaign
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category
from repro.robustness.degradation import (
    DegradationLevel,
    DegradationPlan,
    plan_degradation,
)
from repro.robustness.health import HealthTracker
from repro.sim.vectorized import VectorizedDelivery, resolve_sim_backend
from repro.units import bytes_in_interval, mbps_from_bytes


@dataclass
class StreamHandle:
    """An application's handle on one open stream.

    ``stream_id`` is a service-assigned, monotonically increasing
    integer — the stable join key carried by trace events from every
    layer, so a stream renamed or reopened never aliases an old one.
    """

    spec: StreamSpec
    opened_at: float
    stream_id: int = 0
    closed_at: Optional[float] = None
    achieved_probability: Optional[float] = None
    #: Whether admission control accepted the stream at open time; False
    #: only under ``strict_admission=False`` (served degraded).
    admitted: bool = True
    #: Tenant label the opener attached (multi-tenant accounting), if any.
    tenant: Optional[str] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def open(self) -> bool:
        return self.closed_at is None


@dataclass(frozen=True)
class StreamReport:
    """Delivered-throughput summary for one stream's lifetime."""

    name: str
    mbps: np.ndarray
    dt: float
    target_mbps: Optional[float]

    @property
    def mean_mbps(self) -> float:
        return float(self.mbps.mean()) if self.mbps.size else 0.0

    @property
    def attainment(self) -> Optional[float]:
        """Fraction of its lifetime the stream met its requirement."""
        if self.target_mbps is None or self.mbps.size == 0:
            return None
        return fraction_of_time_at_least(
            self.mbps, self.target_mbps * 0.999
        )


class IQPathsService:
    """The full middleware behind one object.

    Parameters
    ----------
    realization:
        Per-path availability (and QoS) for the whole session.
    warmup_intervals:
        Probe phase: monitors fill before any stream can be opened.
    tw:
        Scheduling-window length handed to PGOS and admission control.
    strict_admission:
        When True (default), :meth:`open_stream` raises
        :class:`AdmissionError` if the new stream (plus those already
        open) is not admittable — the paper's upcall.  When False the
        stream is opened anyway and served best-effort/degraded.
    campaign:
        Optional dynamic fault schedule, applied mid-run: active faults
        scale what each path delivers and add loss; monitor blackouts
        drop the affected path's observations.  Campaign timestamps are
        session time (``t = 0`` when the probe phase ends).
    health:
        Optional :class:`HealthTracker` watching the paths.  Created
        automatically (default thresholds) when a ``campaign`` is given;
        pass one explicitly to tune thresholds or to enable runtime
        health without a campaign.
    """

    def __init__(
        self,
        realization: TestbedRealization,
        warmup_intervals: int = 200,
        tw: float = 1.0,
        buffer_seconds: float = 2.0,
        strict_admission: bool = True,
        scheduler: Optional[PGOSScheduler] = None,
        campaign: Optional[FaultCampaign] = None,
        health: Optional[HealthTracker] = None,
        obs: Optional[Observability] = None,
        metrics_snapshot_seconds: float = 5.0,
        partition: Optional[str] = None,
        sim_backend: Optional[str] = None,
    ):
        if warmup_intervals < 1 or warmup_intervals >= realization.n_intervals:
            raise ConfigurationError(
                f"warmup_intervals {warmup_intervals} out of range"
            )
        if metrics_snapshot_seconds <= 0:
            raise ConfigurationError(
                f"metrics_snapshot_seconds must be > 0, got "
                f"{metrics_snapshot_seconds}"
            )
        self.realization = realization
        self.dt = realization.dt
        self.tw = tw
        self.buffer_seconds = buffer_seconds
        self.strict_admission = strict_admission
        #: Cluster partition this service instance simulates, if any.
        #: Purely an accounting label — it never influences decisions.
        self.partition = partition
        self.path_names = realization.path_names()
        self._avail = {
            p: realization.available[p].available_mbps for p in self.path_names
        }
        self._qos = realization.qos
        self.scheduler = scheduler or PGOSScheduler()
        # The scheduler needs >= 1 stream for setup; bind lazily instead.
        self._scheduler_bound = False
        self.campaign = campaign
        if health is None and campaign is not None:
            health = HealthTracker(self.path_names)
        self.health = health
        self.obs = obs if obs is not None else NULL_OBS
        if self.obs.prof.enabled:
            # Session time is the profiler's virtual clock for
            # service-driven runs; a Simulator rebinds while it owns
            # the loop (workload runs never mix the two).
            self.obs.prof.bind_clock(lambda: self.now)
        self.scheduler.bind_observability(self.obs, clock=lambda: self.now)
        if self.health is not None:
            self.health.bind_observability(self.obs)
        #: Monotone stream-ID allocator (stable join key for traces).
        self._next_stream_id = 0
        self._snapshot_every = max(
            1, int(round(metrics_snapshot_seconds / self.dt))
        )
        self.handles: dict[str, StreamHandle] = {}
        self._delivered: dict[str, list[float]] = {}
        self._opened_interval: dict[str, int] = {}
        self._backlog_bytes: dict[str, float] = {}
        self._admission = AdmissionController(tw=tw)
        self._pending: list[tuple[int, Callable[[], None]]] = []
        self.upcalls: list[str] = []
        #: Health transitions and degradation decisions, human-readable.
        self.events: list[str] = []
        # Degradation bookkeeping: requested spec per stream, the spec
        # actually in the scheduler, and the active plan.
        self._original: dict[str, StreamSpec] = {}
        self._serving: dict[str, StreamSpec] = {}
        self._plan: Optional[DegradationPlan] = None
        self.degradation_level = DegradationLevel.NORMAL

        self._k = 0
        while self._k < warmup_intervals:
            self._observe(self._k)
            self._k += 1
        self._start_k = self._k

        # Delivery backend: the struct-of-arrays engine owns the hot
        # loop when selected (and the scheduler is PGOS — the compiled
        # request templates encode PGOS's allocation rules); everything
        # else runs the scalar reference path.  ``sim_backend`` records
        # the *effective* backend.
        requested = resolve_sim_backend(sim_backend)
        self._vec: Optional[VectorizedDelivery] = None
        if requested == "vectorized" and isinstance(
            self.scheduler, PGOSScheduler
        ):
            self._vec = VectorizedDelivery(self)
            self.sim_backend = "vectorized"
        else:
            self.sim_backend = "scalar"

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Session time in seconds (0 at the end of the probe phase)."""
        return (self._k - self._start_k) * self.dt

    @property
    def remaining_intervals(self) -> int:
        return self.realization.n_intervals - self._k

    def _session_time(self, k: int) -> float:
        return (k - self._start_k) * self.dt

    # ------------------------------------------------------------------
    # fault-aware path views
    # ------------------------------------------------------------------
    def _effective_avail(self, path: str, k: int) -> float:
        """Realized availability with the campaign's active faults applied."""
        value = float(self._avail[path][k])
        if self.campaign is not None:
            value *= self.campaign.availability_multiplier(
                path, self._session_time(k)
            )
        return value

    def _effective_loss(self, path: str, k: int) -> float:
        loss = float(self._qos[path].loss_rate[k])
        if self.campaign is not None:
            loss += self.campaign.extra_loss(path, self._session_time(k))
        return min(loss, 1.0)

    def _path_observed(self, path: str, k: int) -> bool:
        if self.campaign is None:
            return True
        return self.campaign.observed(path, self._session_time(k))

    def _usable_paths(self) -> list[str]:
        """Paths the mapping may use (all when health is off or all failed)."""
        if self.health is None:
            return list(self.path_names)
        quarantined = self.health.quarantined()
        usable = [p for p in self.path_names if p not in quarantined]
        return usable or list(self.path_names)

    def _observe(self, k: int) -> None:
        if not self._scheduler_bound:
            # Not bound yet: history is seeded on bind (_bind_scheduler).
            return
        observed = [p for p in self.path_names if self._path_observed(p, k)]
        if not observed:
            return
        self.scheduler.observe(
            k,
            {p: self._effective_avail(p, k) for p in observed},
            rtt_ms={p: float(self._qos[p].rtt_ms[k]) for p in observed},
            loss_rate={p: self._effective_loss(p, k) for p in observed},
        )

    def _bind_scheduler(self, first_spec: StreamSpec) -> None:
        self.scheduler.setup(
            [first_spec], self.path_names, dt=self.dt, tw=self.tw
        )
        self.scheduler.seed_history(
            {p: self._avail[p][: self._k] for p in self.path_names}
        )
        # setup() replaced the stream list; drop the bootstrap spec, the
        # caller's open_stream() adds it through the normal path.
        self.scheduler.streams.clear()
        self._scheduler_bound = True
        if self.health is not None:
            self.scheduler.set_quarantine(self.health.quarantined())

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def _count_admission(
        self, outcome: str, tenant: Optional[str]
    ) -> None:
        """File one admission outcome into the metrics registry.

        ``admission.admitted`` / ``admission.rejected`` /
        ``admission.degraded`` are the first-class counters
        ``tools/trace_report.py`` correlates with health transitions;
        the per-tenant twins carry the multi-tenant breakdown and the
        per-partition twins the cluster's per-shard breakdown.
        """
        if not self.obs.enabled:
            return
        self.obs.metrics.counter(f"admission.{outcome}").inc()
        if tenant is not None:
            self.obs.metrics.counter(
                f"admission.{outcome}.tenant.{tenant}"
            ).inc()
        if self.partition is not None:
            self.obs.metrics.counter(
                f"admission.{outcome}.partition.{self.partition}"
            ).inc()

    def _reject_upcall(
        self,
        spec: StreamSpec,
        stream_id: int,
        hint: Optional[float],
        tenant: Optional[str],
    ) -> str:
        """Record the admission upcall for one non-admittable stream."""
        message = (
            f"stream {spec.name!r} not admittable"
            + (f"; overlay can offer P~={hint:.3f}" if hint else "")
        )
        self.upcalls.append(message)
        outcome = "rejected" if self.strict_admission else "degraded"
        self._count_admission(outcome, tenant)
        if self.obs.enabled:
            self.obs.metrics.counter("service.admission_rejections").inc()
            self.obs.trace.emit(
                self.now,
                Category.SERVICE,
                "admission_upcall",
                stream_id=stream_id,
                stream=spec.name,
                message=message,
                suggested_probability=hint,
                tenant=tenant,
            )
        return message

    def _register_stream(
        self,
        spec: StreamSpec,
        stream_id: int,
        admitted: bool,
        achieved: Optional[float],
        tenant: Optional[str],
    ) -> StreamHandle:
        """Install an (admitted or degraded) stream into the service."""
        self.scheduler.add_stream(spec)
        self._serving[spec.name] = spec
        self._original[spec.name] = spec
        handle = StreamHandle(
            spec=spec,
            opened_at=self.now,
            stream_id=stream_id,
            achieved_probability=achieved,
            admitted=admitted,
            tenant=tenant,
        )
        self.handles[spec.name] = handle
        if self.obs.enabled:
            self.obs.metrics.counter("service.streams_opened").inc()
            self.obs.trace.emit(
                self.now,
                Category.SERVICE,
                "stream_open",
                stream_id=stream_id,
                stream=spec.name,
                admitted=admitted,
                required_mbps=spec.required_mbps,
                probability=spec.probability,
                achieved_probability=achieved,
                tenant=tenant,
            )
        if self._vec is not None:
            self._vec.on_open(handle)
        else:
            self._delivered[spec.name] = []
            self._backlog_bytes[spec.name] = 0.0
        self._opened_interval[spec.name] = self._k
        return handle

    def _maybe_refresh_after_open(self) -> None:
        if self.health is not None and (
            self.health.quarantined()
            or self.degradation_level is not DegradationLevel.NORMAL
        ):
            self._refresh_degradation()

    def open_stream(
        self, spec: StreamSpec, tenant: Optional[str] = None
    ) -> StreamHandle:
        """Open a stream now; admission-checked against monitored CDFs.

        ``tenant`` is an optional accounting label: it rides on the
        handle, on every ``stream_open`` / ``admission_upcall`` trace
        event, and on the per-tenant ``admission.*.tenant.<name>``
        metric counters (the workload engine's join key).
        """
        if spec.name in self.handles and self.handles[spec.name].open:
            raise ConfigurationError(f"stream {spec.name!r} already open")
        if not self._scheduler_bound:
            self._bind_scheduler(spec)
        open_specs = [
            self._original[h.name]
            for h in self.handles.values()
            if h.open
        ] + [spec]
        cdfs = {
            p: self.scheduler.monitors[p].cdf() for p in self._usable_paths()
        }
        prof = self.obs.prof
        if prof.enabled:
            with prof.span("service.admission"):
                decision = self._admission.try_admit(open_specs, cdfs)
        else:
            decision = self._admission.try_admit(open_specs, cdfs)
        self._next_stream_id += 1
        stream_id = self._next_stream_id
        self.obs.bind_stream(spec.name, stream_id)
        achieved = None
        if not decision.admitted:
            message = self._reject_upcall(
                spec, stream_id, decision.suggested_probability, tenant
            )
            if self.strict_admission:
                raise AdmissionError(spec.name, message)
        else:
            self._count_admission("admitted", tenant)
            if decision.mapping is not None:
                achieved = decision.mapping.achieved_probability.get(
                    spec.name
                )
        handle = self._register_stream(
            spec, stream_id, decision.admitted, achieved, tenant
        )
        self._maybe_refresh_after_open()
        return handle

    def open_streams(
        self,
        specs: Sequence[StreamSpec],
        tenant: Optional[str] = None,
    ) -> list[StreamHandle]:
        """Open many streams under a *single* admission decision.

        The batch churn hook: one :class:`AdmissionController` pass
        covers every stream already open plus the whole batch, so
        opening N streams costs one resource mapping instead of N
        (incremental :meth:`open_stream` is quadratic in the standing
        population).  Semantics are all-or-nothing: under strict
        admission a batch that does not fit raises
        :class:`AdmissionError` (naming the stream that failed) and
        opens nothing; under lenient admission the whole batch opens
        degraded.
        """
        specs = list(specs)
        if not specs:
            return []
        seen: set[str] = set()
        for spec in specs:
            if spec.name in seen:
                raise ConfigurationError(
                    f"duplicate stream {spec.name!r} in batch"
                )
            seen.add(spec.name)
            if spec.name in self.handles and self.handles[spec.name].open:
                raise ConfigurationError(
                    f"stream {spec.name!r} already open"
                )
        if not self._scheduler_bound:
            self._bind_scheduler(specs[0])
        open_specs = [
            self._original[h.name]
            for h in self.handles.values()
            if h.open
        ] + specs
        cdfs = {
            p: self.scheduler.monitors[p].cdf() for p in self._usable_paths()
        }
        prof = self.obs.prof
        if prof.enabled:
            with prof.span("service.admission"):
                decision = self._admission.try_admit(open_specs, cdfs)
        else:
            decision = self._admission.try_admit(open_specs, cdfs)
        if not decision.admitted and self.strict_admission:
            rejected = next(
                (
                    s
                    for s in specs
                    if s.name == decision.rejected_stream
                ),
                specs[0],
            )
            self._next_stream_id += 1
            message = self._reject_upcall(
                rejected,
                self._next_stream_id,
                decision.suggested_probability,
                tenant,
            )
            raise AdmissionError(rejected.name, message)
        handles = []
        for spec in specs:
            self._next_stream_id += 1
            stream_id = self._next_stream_id
            self.obs.bind_stream(spec.name, stream_id)
            achieved = None
            if decision.admitted:
                self._count_admission("admitted", tenant)
                if decision.mapping is not None:
                    achieved = decision.mapping.achieved_probability.get(
                        spec.name
                    )
            else:
                self._count_admission("degraded", tenant)
            handles.append(
                self._register_stream(
                    spec, stream_id, decision.admitted, achieved, tenant
                )
            )
        self._maybe_refresh_after_open()
        return handles

    def close_stream(self, name: str) -> StreamHandle:
        """Terminate a stream; its capacity is remapped to the others."""
        handle = self.handles.get(name)
        if handle is None or not handle.open:
            raise ConfigurationError(f"stream {name!r} is not open")
        if name in self._serving:
            self.scheduler.remove_stream(name)
            del self._serving[name]
        handle.closed_at = self.now
        self._original.pop(name, None)
        if self._vec is not None:
            self._vec.on_close(name)
        else:
            self._backlog_bytes.pop(name, None)
        if self.obs.enabled:
            self.obs.metrics.counter("service.streams_closed").inc()
            self.obs.trace.emit(
                self.now,
                Category.SERVICE,
                "stream_close",
                stream_id=handle.stream_id,
                stream=name,
            )
        return handle

    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` (open/close calls) at session time ``time``."""
        k = self._start_k + int(round(time / self.dt))
        if k < self._k:
            raise ConfigurationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        self._pending.append((k, action))
        self._pending.sort(key=lambda e: e[0])

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _refresh_degradation(self) -> None:
        """Re-plan shedding/downgrades for the current path health."""
        if self.health is None or not self._scheduler_bound:
            return
        open_handles = [h for h in self.handles.values() if h.open]
        if not open_handles:
            return
        quarantined = self.health.quarantined()
        cdfs = {
            p: self.scheduler.monitors[p].cdf() for p in self._usable_paths()
        }
        originals = [self._original[h.name] for h in open_handles]
        plan = plan_degradation(
            originals,
            cdfs,
            self.tw,
            quarantine_active=bool(quarantined),
            admission=self._admission,
        )
        if plan == self._plan:
            return
        self._apply_plan(plan)
        self._plan = plan
        if plan.level is not self.degradation_level:
            self.events.append(
                f"t={self.now:.1f}s degradation "
                f"{self.degradation_level.name} -> {plan.level.name}"
            )
            if self.obs.enabled:
                self.obs.metrics.counter("service.degradation_changes").inc()
                self.obs.metrics.gauge("service.degradation_level").set(
                    int(plan.level)
                )
                self.obs.trace.emit(
                    self.now,
                    Category.SERVICE,
                    "degradation",
                    old_level=self.degradation_level.name,
                    new_level=plan.level.name,
                    notes=list(plan.notes),
                )
        self.degradation_level = plan.level
        for note in plan.notes:
            self.events.append(f"t={self.now:.1f}s {note}")

    def _apply_plan(self, plan: DegradationPlan) -> None:
        """Diff the scheduler's stream set against ``plan`` and apply."""
        desired: dict[str, StreamSpec] = {}
        for handle in self.handles.values():
            if not handle.open:
                continue
            spec = plan.spec_for(handle.name)
            if spec is not None:
                desired[handle.name] = spec
        for name in list(self._serving):
            target = desired.get(name)
            if target is None:
                self.scheduler.remove_stream(name)
                del self._serving[name]
                self._emit_plan_event("stream_shed", name)
            elif target != self._serving[name]:
                self.scheduler.remove_stream(name)
                self.scheduler.add_stream(target)
                self._serving[name] = target
                self._emit_plan_event(
                    "stream_downgraded",
                    name,
                    required_mbps=target.required_mbps,
                    probability=target.probability,
                )
        for name, spec in desired.items():
            if name not in self._serving:
                self.scheduler.add_stream(spec)
                self._serving[name] = spec
                self._emit_plan_event("stream_restored", name)

    def _emit_plan_event(self, name: str, stream: str, **fields) -> None:
        """One degradation-plan action (shed/downgrade/restore) as trace."""
        if not self.obs.enabled:
            return
        handle = self.handles.get(stream)
        self.obs.metrics.counter(f"service.{name}").inc()
        self.obs.trace.emit(
            self.now,
            Category.SERVICE,
            name,
            stream_id=handle.stream_id if handle is not None else None,
            stream=stream,
            **fields,
        )

    @property
    def shed_streams(self) -> frozenset[str]:
        """Open streams currently paused by the degradation policy."""
        return frozenset(
            h.name
            for h in self.handles.values()
            if h.open and h.name not in self._serving
        )

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def advance(self, seconds: float) -> None:
        """Run the delivery loop for ``seconds`` of session time."""
        steps = int(round(seconds / self.dt))
        if steps < 0 or steps > self.remaining_intervals:
            raise ConfigurationError(
                f"cannot advance {seconds}s ({steps} intervals); "
                f"{self.remaining_intervals} remain"
            )
        for _ in range(steps):
            self._step()

    def _step(self) -> None:
        prof = self.obs.prof
        if prof.enabled:
            with prof.span("service.step"):
                self._step_inner()
        else:
            self._step_inner()

    def _step_inner(self) -> None:
        k = self._k
        while self._pending and self._pending[0][0] <= k:
            _, action = self._pending.pop(0)
            action()
        if (
            self._vec is not None
            and not self.obs.enabled
            and not self.obs.prof.enabled
        ):
            # Uninstrumented vectorized fast path: the batch state knows
            # the open set, so skip the O(all handles) scan (the
            # delivery core only needs handles for trace emission).
            if self._vec.batch.n_open and self._scheduler_bound:
                self._deliver(k, ())
            self._observe(k)
            self._update_health(k)
            self._k += 1
            return
        open_handles = [h for h in self.handles.values() if h.open]
        if open_handles and self._scheduler_bound:
            prof = self.obs.prof
            if prof.enabled:
                with prof.span("service.delivery"):
                    self._deliver(k, open_handles)
            else:
                self._deliver(k, open_handles)
        elif self._vec is None:
            for h in open_handles:
                self._delivered[h.name].append(0.0)
        # (vectorized: an idle interval is the history column's default
        # zero — no write needed.)
        self._observe(k)
        self._update_health(k)
        self._k += 1
        if self.obs.enabled and (self._k - self._start_k) % (
            self._snapshot_every
        ) == 0:
            self.obs.metrics.snapshot(self.now)

    def _deliver(self, k: int, open_handles: list[StreamHandle]) -> None:
        """One interval of backlog accrual, PGOS allocation, water-fill
        delivery, and shortfall accounting.

        With the vectorized backend the whole step runs as columnar
        numpy ops over the batch state — proven bit-identical to the
        scalar body below by ``tests/property/test_sim_vectorized.py``.
        """
        if self._vec is not None:
            self._vec.deliver(k, open_handles)
            return
        backlog_mbps: dict[str, Optional[float]] = {}
        for h in open_handles:
            spec = h.spec
            if spec.demand_mbps is None:
                backlog_mbps[spec.name] = None
                continue
            self._backlog_bytes[spec.name] += bytes_in_interval(
                spec.demand_mbps, self.dt
            )
            limit = bytes_in_interval(
                spec.demand_mbps, self.buffer_seconds
            )
            self._backlog_bytes[spec.name] = min(
                self._backlog_bytes[spec.name], limit
            )
            backlog_mbps[spec.name] = mbps_from_bytes(
                self._backlog_bytes[spec.name], self.dt
            )
        requests = self.scheduler.allocate(k, backlog_mbps)
        delivered = {h.name: 0.0 for h in open_handles}
        for p in self.path_names:
            granted = water_fill(
                requests.get(p, []), self._effective_avail(p, k)
            )
            for name, mbps in granted.items():
                if mbps <= 0 or name not in delivered:
                    continue
                nbytes = bytes_in_interval(mbps, self.dt)
                if self.handles[name].spec.demand_mbps is not None:
                    nbytes = min(nbytes, self._backlog_bytes[name])
                    self._backlog_bytes[name] -= nbytes
                delivered[name] += mbps_from_bytes(nbytes, self.dt)
        for name, mbps in delivered.items():
            self._delivered[name].append(mbps)
        if self.obs.enabled:
            self._emit_shortfalls(k, delivered)

    def _emit_shortfalls(self, k: int, delivered: dict[str, float]) -> None:
        """Per-window guarantee shortfall events (the trace's ground truth
        for "stream X missed its guarantee in window k")."""
        window = k - self._start_k
        for name, mbps in delivered.items():
            handle = self.handles[name]
            target = handle.spec.required_mbps
            if target is None or mbps >= target * 0.999:
                continue
            self.obs.metrics.counter("service.shortfall_intervals").inc()
            self.obs.trace.emit(
                self.now,
                Category.SERVICE,
                "window_shortfall",
                stream_id=handle.stream_id,
                stream=name,
                window=window,
                delivered_mbps=mbps,
                required_mbps=target,
                shed=name not in self._serving,
            )

    def _update_health(self, k: int) -> None:
        if self.health is None:
            return
        t = self._session_time(k)
        bandwidth: dict[str, Optional[float]] = {}
        loss: dict[str, float] = {}
        ks_shift: dict[str, bool] = {}
        mapped = (
            self._scheduler_bound and self.scheduler.mapping is not None
        )
        for p in self.path_names:
            if self._path_observed(p, k):
                bandwidth[p] = self._effective_avail(p, k)
                loss[p] = self._effective_loss(p, k)
            else:
                bandwidth[p] = None  # probe timeout
                loss[p] = 0.0
            ks_shift[p] = (
                self.scheduler.monitors[p].cdf_changed_significantly()
                if mapped
                else False
            )
        fired = self.health.update(t, bandwidth, loss=loss, ks_shift=ks_shift)
        if not fired:
            return
        for transition in fired:
            self.events.append(str(transition))
        if self._scheduler_bound:
            self.scheduler.set_quarantine(self.health.quarantined())
        self._refresh_degradation()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the full service state.

        The restoring service must be constructed from the *same*
        configuration (realization, campaign, warmup, windows): only
        mutable mid-run state is serialized.  Dict/list orders are
        preserved deliberately — handle iteration order feeds the
        delivery loop and the scheduler's float summations.

        Two deliberate scope cuts:

        * Delivery history is kept only for **open** streams (closed
          streams restore with an empty record).  Workload checksums are
          unaffected — the churn driver folds a stream's history into
          its :class:`SessionRecord` at close time — but calling
          :meth:`report` on a pre-checkpoint closed stream after a
          restore returns an empty series.
        * Observability (metrics/trace) is not checkpointed; it is
          diagnostic output and is excluded from result checksums.

        Raises :class:`CheckpointError` while :meth:`at` actions are
        pending — callables cannot be serialized, so checkpoints must be
        taken at quiescent points (the churn driver's step boundaries).
        """
        if self._pending:
            raise CheckpointError(
                f"cannot checkpoint with {len(self._pending)} pending at() "
                "action(s); snapshot at a step boundary with no scheduled "
                "callables"
            )
        plan = self._plan
        plan_state = None
        if plan is not None:
            plan_state = {
                "level": int(plan.level),
                "serve": [s.to_dict() for s in plan.serve],
                "shed": list(plan.shed),
                "downgraded": {
                    name: value for name, value in plan.downgraded.items()
                },
                "notes": list(plan.notes),
            }
        return {
            "k": self._k,
            "start_k": self._start_k,
            "next_stream_id": self._next_stream_id,
            "handles": [
                {
                    "spec": h.spec.to_dict(),
                    "opened_at": h.opened_at,
                    "stream_id": h.stream_id,
                    "closed_at": h.closed_at,
                    "achieved_probability": h.achieved_probability,
                    "admitted": h.admitted,
                    "tenant": h.tenant,
                }
                for h in self.handles.values()
            ],
            "delivered": self._delivered_state(),
            "opened_interval": dict(self._opened_interval),
            "backlog_bytes": self._backlog_state(),
            "upcalls": list(self.upcalls),
            "events": list(self.events),
            "original": [
                [name, spec.to_dict()]
                for name, spec in self._original.items()
            ],
            "serving": [
                [name, spec.to_dict()]
                for name, spec in self._serving.items()
            ],
            "plan": plan_state,
            "degradation_level": int(self.degradation_level),
            "scheduler_bound": self._scheduler_bound,
            "scheduler": (
                self.scheduler.state_dict() if self._scheduler_bound else None
            ),
            "health": (
                self.health.state_dict() if self.health is not None else None
            ),
        }

    def _delivered_state(self) -> dict[str, list[float]]:
        """Open streams' delivered histories, in handle order.

        Identical bytes from either backend: the batch history column
        holds the very floats the scalar lists would, and ``float()``
        converts ``np.float64`` losslessly.
        """
        if self._vec is not None:
            col = self._k - self._start_k
            batch = self._vec.batch
            return {
                h.name: [
                    float(v) for v in batch.history_array(h.name, col)
                ]
                for h in self.handles.values()
                if h.open
            }
        return {
            h.name: [float(v) for v in self._delivered[h.name]]
            for h in self.handles.values()
            if h.open
        }

    def _backlog_state(self) -> dict[str, float]:
        """Backlog bytes per open stream, in scalar dict insertion order."""
        if self._vec is not None:
            return dict(self._vec.batch.backlog_items())
        return {
            name: float(v) for name, v in self._backlog_bytes.items()
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto a fresh service."""
        if int(state["start_k"]) != self._start_k:
            raise CheckpointError(
                f"warmup mismatch: service has start_k={self._start_k}, "
                f"checkpoint was taken with start_k={state['start_k']}"
            )
        if (state["health"] is None) != (self.health is None):
            raise CheckpointError(
                "health-tracker presence differs between the checkpoint "
                "and the restoring service configuration"
            )
        self._k = int(state["k"])
        self._next_stream_id = int(state["next_stream_id"])
        self.handles = {}
        self._delivered = {}
        self._opened_interval = {
            name: int(v) for name, v in state["opened_interval"].items()
        }
        self._backlog_bytes = {
            name: float(v) for name, v in state["backlog_bytes"].items()
        }
        for entry in state["handles"]:
            handle = StreamHandle(
                spec=StreamSpec.from_dict(entry["spec"]),
                opened_at=float(entry["opened_at"]),
                stream_id=int(entry["stream_id"]),
                closed_at=(
                    None
                    if entry["closed_at"] is None
                    else float(entry["closed_at"])
                ),
                achieved_probability=entry["achieved_probability"],
                admitted=bool(entry["admitted"]),
                tenant=entry["tenant"],
            )
            self.handles[handle.name] = handle
            if handle.open:
                self._delivered[handle.name] = [
                    float(v) for v in state["delivered"][handle.name]
                ]
            else:
                # Closed streams restore with an empty record (see
                # state_dict); reports for them are not reconstructable.
                self._delivered[handle.name] = []
        self.upcalls = list(state["upcalls"])
        self.events = list(state["events"])
        self._original = {
            name: StreamSpec.from_dict(spec_dict)
            for name, spec_dict in state["original"]
        }
        self._serving = {
            name: StreamSpec.from_dict(spec_dict)
            for name, spec_dict in state["serving"]
        }
        plan_state = state["plan"]
        if plan_state is None:
            self._plan = None
        else:
            self._plan = DegradationPlan(
                level=DegradationLevel(plan_state["level"]),
                serve=tuple(
                    StreamSpec.from_dict(d) for d in plan_state["serve"]
                ),
                shed=tuple(plan_state["shed"]),
                downgraded=dict(plan_state["downgraded"]),
                notes=tuple(plan_state["notes"]),
            )
        self.degradation_level = DegradationLevel(state["degradation_level"])
        # Health first: binding the scheduler consults the quarantine set.
        if self.health is not None:
            self.health.load_state_dict(state["health"])
        self._pending = []
        self._scheduler_bound = False
        if state["scheduler_bound"]:
            # Rebind through the normal path (setup + history seed +
            # quarantine), then overwrite every monitor/stream/mapping
            # with the checkpointed state.
            self._bind_scheduler(
                StreamSpec(name="__checkpoint_restore__", required_mbps=1.0)
            )
            self.scheduler.load_state_dict(state["scheduler"])
        if self._vec is not None:
            # Materialize the columnar state from the (backend-agnostic)
            # snapshot; the scalar-side dicts populated above are not
            # used while the vectorized engine is active.
            self._vec.rebuild_from_state(state)
            self._delivered = {}
            self._backlog_bytes = {}

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self, name: str) -> StreamReport:
        """Throughput record for one stream's (closed or open) lifetime."""
        if name not in self.handles:
            raise ConfigurationError(f"unknown stream {name!r}")
        handle = self.handles[name]
        if self._vec is not None:
            mbps = self._vec.batch.history_array(
                name, self._k - self._start_k
            )
        else:
            mbps = np.asarray(self._delivered[name])
        return StreamReport(
            name=name,
            mbps=mbps,
            dt=self.dt,
            target_mbps=handle.spec.required_mbps,
        )

    def reports(self) -> dict[str, StreamReport]:
        """Reports for every stream ever opened."""
        return {name: self.report(name) for name in self.handles}
