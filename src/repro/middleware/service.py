"""IQ-Paths as a service: streams join, leave, and are self-regulated.

The figure experiments drive one fixed stream set; this facade exposes
the *dynamic* middleware the paper describes: admission upcalls at open
time, remaps on membership changes and CDF shifts, bounded sender
buffers, and per-stream reporting.

Time is interval-stepped (like the figure driver); the service owns the
loop and applications script membership through :meth:`IQPathsService.at`
or drive it step by step with :meth:`IQPathsService.advance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import AdmissionError, ConfigurationError
from repro.core.admission import AdmissionController
from repro.core.pgos import PGOSScheduler
from repro.core.scheduler import water_fill
from repro.core.spec import StreamSpec
from repro.harness.metrics import fraction_of_time_at_least
from repro.network.emulab import TestbedRealization
from repro.units import bytes_in_interval, mbps_from_bytes


@dataclass
class StreamHandle:
    """An application's handle on one open stream."""

    spec: StreamSpec
    opened_at: float
    closed_at: Optional[float] = None
    achieved_probability: Optional[float] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def open(self) -> bool:
        return self.closed_at is None


@dataclass(frozen=True)
class StreamReport:
    """Delivered-throughput summary for one stream's lifetime."""

    name: str
    mbps: np.ndarray
    dt: float
    target_mbps: Optional[float]

    @property
    def mean_mbps(self) -> float:
        return float(self.mbps.mean()) if self.mbps.size else 0.0

    @property
    def attainment(self) -> Optional[float]:
        """Fraction of its lifetime the stream met its requirement."""
        if self.target_mbps is None or self.mbps.size == 0:
            return None
        return fraction_of_time_at_least(
            self.mbps, self.target_mbps * 0.999
        )


class IQPathsService:
    """The full middleware behind one object.

    Parameters
    ----------
    realization:
        Per-path availability (and QoS) for the whole session.
    warmup_intervals:
        Probe phase: monitors fill before any stream can be opened.
    tw:
        Scheduling-window length handed to PGOS and admission control.
    strict_admission:
        When True (default), :meth:`open_stream` raises
        :class:`AdmissionError` if the new stream (plus those already
        open) is not admittable — the paper's upcall.  When False the
        stream is opened anyway and served best-effort/degraded.
    """

    def __init__(
        self,
        realization: TestbedRealization,
        warmup_intervals: int = 200,
        tw: float = 1.0,
        buffer_seconds: float = 2.0,
        strict_admission: bool = True,
        scheduler: Optional[PGOSScheduler] = None,
    ):
        if warmup_intervals < 1 or warmup_intervals >= realization.n_intervals:
            raise ConfigurationError(
                f"warmup_intervals {warmup_intervals} out of range"
            )
        self.realization = realization
        self.dt = realization.dt
        self.tw = tw
        self.buffer_seconds = buffer_seconds
        self.strict_admission = strict_admission
        self.path_names = realization.path_names()
        self._avail = {
            p: realization.available[p].available_mbps for p in self.path_names
        }
        self._qos = realization.qos
        self.scheduler = scheduler or PGOSScheduler()
        # The scheduler needs >= 1 stream for setup; bind lazily instead.
        self._scheduler_bound = False
        self.handles: dict[str, StreamHandle] = {}
        self._delivered: dict[str, list[float]] = {}
        self._opened_interval: dict[str, int] = {}
        self._backlog_bytes: dict[str, float] = {}
        self._admission = AdmissionController(tw=tw)
        self._pending: list[tuple[int, Callable[[], None]]] = []
        self.upcalls: list[str] = []

        self._k = 0
        while self._k < warmup_intervals:
            self._observe(self._k)
            self._k += 1
        self._start_k = self._k

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Session time in seconds (0 at the end of the probe phase)."""
        return (self._k - self._start_k) * self.dt

    @property
    def remaining_intervals(self) -> int:
        return self.realization.n_intervals - self._k

    def _observe(self, k: int) -> None:
        if self._scheduler_bound:
            self.scheduler.observe(
                k,
                {p: float(self._avail[p][k]) for p in self.path_names},
                rtt_ms={
                    p: float(self._qos[p].rtt_ms[k]) for p in self.path_names
                },
                loss_rate={
                    p: float(self._qos[p].loss_rate[k])
                    for p in self.path_names
                },
            )
        else:
            # Not bound yet: stash history in a side monitor via seeding
            # later; simplest is to remember the index range and seed on
            # bind (see _bind_scheduler).
            pass

    def _bind_scheduler(self, first_spec: StreamSpec) -> None:
        self.scheduler.setup(
            [first_spec], self.path_names, dt=self.dt, tw=self.tw
        )
        self.scheduler.seed_history(
            {p: self._avail[p][: self._k] for p in self.path_names}
        )
        # setup() replaced the stream list; drop the bootstrap spec, the
        # caller's open_stream() adds it through the normal path.
        self.scheduler.streams.clear()
        self._scheduler_bound = True

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def open_stream(self, spec: StreamSpec) -> StreamHandle:
        """Open a stream now; admission-checked against monitored CDFs."""
        if spec.name in self.handles and self.handles[spec.name].open:
            raise ConfigurationError(f"stream {spec.name!r} already open")
        if not self._scheduler_bound:
            self._bind_scheduler(spec)
        open_specs = [
            h.spec for h in self.handles.values() if h.open
        ] + [spec]
        cdfs = {
            p: self.scheduler.monitors[p].cdf() for p in self.path_names
        }
        decision = self._admission.try_admit(open_specs, cdfs)
        achieved = None
        if not decision.admitted:
            hint = decision.suggested_probability
            message = (
                f"stream {spec.name!r} not admittable"
                + (f"; overlay can offer P~={hint:.3f}" if hint else "")
            )
            self.upcalls.append(message)
            if self.strict_admission:
                raise AdmissionError(spec.name, message)
        elif decision.mapping is not None:
            achieved = decision.mapping.achieved_probability.get(spec.name)
        self.scheduler.add_stream(spec)
        handle = StreamHandle(
            spec=spec, opened_at=self.now, achieved_probability=achieved
        )
        self.handles[spec.name] = handle
        self._delivered[spec.name] = []
        self._opened_interval[spec.name] = self._k
        self._backlog_bytes[spec.name] = 0.0
        return handle

    def close_stream(self, name: str) -> StreamHandle:
        """Terminate a stream; its capacity is remapped to the others."""
        handle = self.handles.get(name)
        if handle is None or not handle.open:
            raise ConfigurationError(f"stream {name!r} is not open")
        self.scheduler.remove_stream(name)
        handle.closed_at = self.now
        self._backlog_bytes.pop(name, None)
        return handle

    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` (open/close calls) at session time ``time``."""
        k = self._start_k + int(round(time / self.dt))
        if k < self._k:
            raise ConfigurationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        self._pending.append((k, action))
        self._pending.sort(key=lambda e: e[0])

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def advance(self, seconds: float) -> None:
        """Run the delivery loop for ``seconds`` of session time."""
        steps = int(round(seconds / self.dt))
        if steps < 0 or steps > self.remaining_intervals:
            raise ConfigurationError(
                f"cannot advance {seconds}s ({steps} intervals); "
                f"{self.remaining_intervals} remain"
            )
        for _ in range(steps):
            self._step()

    def _step(self) -> None:
        k = self._k
        while self._pending and self._pending[0][0] <= k:
            _, action = self._pending.pop(0)
            action()
        open_handles = [h for h in self.handles.values() if h.open]
        if open_handles and self._scheduler_bound:
            backlog_mbps: dict[str, Optional[float]] = {}
            for h in open_handles:
                spec = h.spec
                if spec.demand_mbps is None:
                    backlog_mbps[spec.name] = None
                    continue
                self._backlog_bytes[spec.name] += bytes_in_interval(
                    spec.demand_mbps, self.dt
                )
                limit = bytes_in_interval(
                    spec.demand_mbps, self.buffer_seconds
                )
                self._backlog_bytes[spec.name] = min(
                    self._backlog_bytes[spec.name], limit
                )
                backlog_mbps[spec.name] = mbps_from_bytes(
                    self._backlog_bytes[spec.name], self.dt
                )
            requests = self.scheduler.allocate(k, backlog_mbps)
            delivered = {h.name: 0.0 for h in open_handles}
            for p in self.path_names:
                granted = water_fill(
                    requests.get(p, []), float(self._avail[p][k])
                )
                for name, mbps in granted.items():
                    if mbps <= 0 or name not in delivered:
                        continue
                    nbytes = bytes_in_interval(mbps, self.dt)
                    if self.handles[name].spec.demand_mbps is not None:
                        nbytes = min(nbytes, self._backlog_bytes[name])
                        self._backlog_bytes[name] -= nbytes
                    delivered[name] += mbps_from_bytes(nbytes, self.dt)
            for name, mbps in delivered.items():
                self._delivered[name].append(mbps)
        else:
            for h in open_handles:
                self._delivered[h.name].append(0.0)
        self._observe(k)
        self._k += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self, name: str) -> StreamReport:
        """Throughput record for one stream's (closed or open) lifetime."""
        if name not in self.handles:
            raise ConfigurationError(f"unknown stream {name!r}")
        handle = self.handles[name]
        return StreamReport(
            name=name,
            mbps=np.asarray(self._delivered[name]),
            dt=self.dt,
            target_mbps=handle.spec.required_mbps,
        )

    def reports(self) -> dict[str, StreamReport]:
        """Reports for every stream ever opened."""
        return {name: self.report(name) for name in self.handles}
