"""The middleware facade: IQ-Paths as a downstream user consumes it.

:class:`repro.middleware.service.IQPathsService` packages the whole stack
(testbed realization, probe-phase monitoring, admission control with
upcalls, the PGOS scheduler, and the per-interval delivery loop) behind
one object with the lifecycle the paper's applications see:

* open streams with utility requirements (admission-checked);
* streams may join and terminate mid-run — each membership change voids
  the scheduling vectors and triggers a remap (Figure 7, line 2);
* per-stream throughput and guarantee attainment come back in a report.
"""

from repro.middleware.service import IQPathsService, StreamHandle, StreamReport

__all__ = ["IQPathsService", "StreamHandle", "StreamReport"]
