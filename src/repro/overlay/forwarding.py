"""Store-and-forward relaying across an overlay route.

Models what the figure experiments abstract away: bytes physically move
one logical link per interval, queueing in each router daemon on the way.
Per interval, on every hop of the route (in order):

1. the hop's head node drains its per-stream queues onto the link,
   limited by the link's realized availability (fair by queue size —
   FIFO relaying does not re-prioritize);
2. bytes arriving at the next node join its queues (bounded; overflow is
   dropped and counted — router daemons have finite memory).

The *source* node's injection per interval is the policy under study:

* ``paced`` — inject at a rate scheduled against the route's end-to-end
  (bottleneck-composed) distribution, i.e. what PGOS's statistical
  guarantee machinery prescribes;
* ``greedy`` — inject whatever the *first hop* accepts, the naive policy
  that floods the router in front of the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.overlay.mesh import MeshRealization
from repro.units import bytes_in_interval, mbps_from_bytes


@dataclass(frozen=True)
class RelayStream:
    """One stream relayed along the route."""

    name: str
    injection_mbps: float | None  # None = greedy (fill the first hop)

    def __post_init__(self):
        if self.injection_mbps is not None and self.injection_mbps <= 0:
            raise ConfigurationError(
                f"injection rate must be positive, got {self.injection_mbps}"
            )


@dataclass
class ForwardingResult:
    """Delivery and queue records from one relay session."""

    route: list[str]
    dt: float
    delivered_mbps: dict[str, np.ndarray]
    #: peak queued bytes observed at each intermediate node
    peak_queue_bytes: dict[str, float]
    #: mean queued bytes per intermediate node
    mean_queue_bytes: dict[str, float]
    dropped_bytes: dict[str, float] = field(default_factory=dict)

    def delivered_mean(self, stream: str) -> float:
        series = self.delivered_mbps.get(stream)
        if series is None:
            raise ConfigurationError(f"unknown stream {stream!r}")
        return float(series.mean())


def run_relay_session(
    realization: MeshRealization,
    route: Sequence[str],
    streams: Sequence[RelayStream],
    router_buffer_bytes: float = 64 * 1024 * 1024,
) -> ForwardingResult:
    """Relay streams along ``route`` over the realized logical links.

    Parameters
    ----------
    realization:
        Availability per logical link.
    route:
        Node names from source to sink; every consecutive pair must be a
        logical link of the mesh.
    streams:
        Injection policies (see :class:`RelayStream`).
    router_buffer_bytes:
        Per-node queue bound; overflow is dropped (and attributed to the
        stream whose arrival overflowed).
    """
    route = list(route)
    if len(route) < 2:
        raise ConfigurationError("route needs at least two nodes")
    if not streams:
        raise ConfigurationError("at least one stream required")
    names = [s.name for s in streams]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate stream names: {names}")
    hops = list(zip(route[:-1], route[1:]))
    for src, dst in hops:
        realization.link_series(src, dst)  # raises on unknown links

    dt = realization.dt
    n = realization.n_intervals
    # queues[node][stream] = queued bytes awaiting the next hop.
    queues: dict[str, dict[str, float]] = {
        node: {s.name: 0.0 for s in streams} for node in route[:-1]
    }
    delivered = {s.name: np.zeros(n) for s in streams}
    dropped = {s.name: 0.0 for s in streams}
    queue_peaks = {node: 0.0 for node in route[1:-1]}
    queue_sums = {node: 0.0 for node in route[1:-1]}

    source = route[0]
    for k in range(n):
        # 1. source injection
        first_hop_budget = bytes_in_interval(
            float(realization.link_series(*hops[0])[k]), dt
        )
        for s in streams:
            if s.injection_mbps is not None:
                queues[source][s.name] += bytes_in_interval(
                    s.injection_mbps, dt
                )
            else:
                # Greedy: top the source queue up to the first hop's
                # full budget (an unbounded local source).
                queues[source][s.name] = max(
                    queues[source][s.name], first_hop_budget
                )
        # 2. drain each hop in order (bytes can traverse several hops in
        #    one interval only if drained downstream later in this loop —
        #    which is exactly cut-through behaviour per interval).
        for src, dst in hops:
            budget = bytes_in_interval(
                float(realization.link_series(src, dst)[k]), dt
            )
            node_queues = queues[src]
            total = sum(node_queues.values())
            if total <= 0:
                continue
            sendable = min(total, budget)
            for s in streams:
                share = node_queues[s.name] / total * sendable
                node_queues[s.name] -= share
                if dst == route[-1]:
                    delivered[s.name][k] += mbps_from_bytes(share, dt)
                else:
                    arrival_queue = queues[dst]
                    room = router_buffer_bytes - sum(arrival_queue.values())
                    accepted = min(share, max(room, 0.0))
                    arrival_queue[s.name] += accepted
                    dropped[s.name] += share - accepted
        # 3. record router occupancy
        for node in route[1:-1]:
            occupancy = sum(queues[node].values())
            queue_peaks[node] = max(queue_peaks[node], occupancy)
            queue_sums[node] += occupancy

    return ForwardingResult(
        route=route,
        dt=dt,
        delivered_mbps=delivered,
        peak_queue_bytes=queue_peaks,
        mean_queue_bytes={
            node: queue_sums[node] / n for node in queue_sums
        },
        dropped_bytes=dropped,
    )
