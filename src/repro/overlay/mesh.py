"""Overlay meshes: logical links with independent availability.

A *logical link* connects two overlay nodes (server, router daemon, or
client) across the underlay; its available bandwidth varies per interval
like any underlay path's.  An :class:`OverlayMesh` is the graph of such
links plus their realizations, with route discovery and the bottleneck
composition used by end-to-end scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.sim.random import RandomStreams
from repro.traces.nlanr import PROFILES, CrossTrafficProfile

#: Logical links default to fast-ethernet capacity like the testbed.
DEFAULT_CAPACITY_MBPS = 100.0


@dataclass(frozen=True)
class LogicalLink:
    """A directed overlay-level link with its own cross-traffic profile."""

    src: str
    dst: str
    profile: CrossTrafficProfile
    capacity_mbps: float = DEFAULT_CAPACITY_MBPS

    def __post_init__(self):
        if not self.src or not self.dst or self.src == self.dst:
            raise ConfigurationError(
                f"bad logical link endpoints {self.src!r}->{self.dst!r}"
            )
        if self.capacity_mbps <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {self.capacity_mbps}"
            )

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def realize(
        self, n: int, streams: RandomStreams
    ) -> np.ndarray:
        """Available bandwidth per interval (Mbps) for this link."""
        rng = streams.fresh(f"overlay/{self.name}")
        cross = self.profile.sample(n, rng)
        return np.clip(self.capacity_mbps - cross, 0.0, self.capacity_mbps)


class OverlayMesh:
    """A set of overlay nodes joined by logical links."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._links: dict[tuple[str, str], LogicalLink] = {}

    def add_link(
        self,
        src: str,
        dst: str,
        profile: str | CrossTrafficProfile = "light",
        capacity_mbps: float = DEFAULT_CAPACITY_MBPS,
    ) -> LogicalLink:
        """Add a directed logical link (profiles by name or instance)."""
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise ConfigurationError(
                    f"unknown profile {profile!r}; available: {sorted(PROFILES)}"
                ) from None
        link = LogicalLink(
            src=src, dst=dst, profile=profile, capacity_mbps=capacity_mbps
        )
        if (src, dst) in self._links:
            raise TopologyError(f"duplicate logical link {link.name}")
        self._links[(src, dst)] = link
        self._graph.add_edge(src, dst)
        return link

    @property
    def nodes(self) -> list[str]:
        return list(self._graph.nodes)

    @property
    def links(self) -> list[LogicalLink]:
        return list(self._links.values())

    def link(self, src: str, dst: str) -> LogicalLink:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no logical link {src}->{dst}") from None

    def routes(self, src: str, dst: str, k: int = 1) -> list[list[str]]:
        """Up to ``k`` node-disjoint routes (as node-name lists).

        Extraction is deterministic greedy shortest-route peeling with
        lexicographic tie-breaking (:mod:`repro.topo.paths`): a pure
        function of the mesh's *structure*, never of link insertion
        order.  ``networkx``'s max-flow decomposition — whose result
        does depend on construction order — remains only as an exact
        fallback for adversarial meshes where greedy under-counts.
        """
        from repro.topo.paths import greedy_disjoint_routes

        if src not in self._graph or dst not in self._graph:
            raise TopologyError(f"unknown endpoint in {src!r}->{dst!r}")
        adjacency = {
            node: set(self._graph.successors(node))
            for node in self._graph
        }
        found = greedy_disjoint_routes(
            adjacency, src, dst, k, disjoint="node"
        )
        if len(found) < k:
            try:
                exact = sorted(
                    nx.node_disjoint_paths(self._graph, src, dst), key=len
                )
            except nx.NetworkXNoPath:
                exact = []
            if len(exact) >= k:
                found = [list(route) for route in exact[:k]]
            else:
                count = max(len(found), len(exact))
                raise TopologyError(
                    f"only {count} node-disjoint routes from {src} to "
                    f"{dst}; {k} requested"
                )
        return [list(route) for route in found[:k]]

    def realize(
        self, seed: int, duration: float, dt: float
    ) -> "MeshRealization":
        """Sample every logical link's availability series."""
        if duration <= 0 or dt <= 0:
            raise ConfigurationError(
                f"duration and dt must be positive, got {duration}, {dt}"
            )
        n = int(round(duration / dt))
        if n == 0:
            raise ConfigurationError("duration shorter than one interval")
        streams = RandomStreams(seed)
        return MeshRealization(
            mesh=self,
            dt=dt,
            available={
                (link.src, link.dst): link.realize(n, streams)
                for link in self.links
            },
        )


@dataclass(frozen=True)
class MeshRealization:
    """Per-logical-link availability for one experiment."""

    mesh: OverlayMesh
    dt: float
    available: dict[tuple[str, str], np.ndarray]

    @property
    def n_intervals(self) -> int:
        return len(next(iter(self.available.values())))

    def link_series(self, src: str, dst: str) -> np.ndarray:
        try:
            return self.available[(src, dst)]
        except KeyError:
            raise TopologyError(f"no logical link {src}->{dst}") from None

    def route_bottleneck_series(self, route: list[str]) -> np.ndarray:
        """End-to-end availability: min over the route's hops, per interval.

        This is the composition end-to-end scheduling consumes; it is an
        *upper bound* on what store-and-forward relaying can deliver
        (queueing at routers can only delay bytes further).
        """
        if len(route) < 2:
            raise TopologyError("route needs at least two nodes")
        series = np.full(self.n_intervals, np.inf)
        for src, dst in zip(route[:-1], route[1:]):
            series = np.minimum(series, self.link_series(src, dst))
        return series
