"""Multi-hop overlay forwarding.

The figure experiments treat an overlay path as one end-to-end pipe whose
available bandwidth is the bottleneck composition (min over hops).  This
package models what actually happens along the way — Figure 1's router
daemons storing and forwarding application messages hop by hop:

* :mod:`repro.overlay.mesh` — overlay nodes, logical links with their own
  availability realizations, route discovery;
* :mod:`repro.overlay.forwarding` — the interval-stepped store-and-forward
  relay: per-node queues, per-link capacity, end-to-end delivery and
  router buffer occupancy.

The headline property verified on top of it: a source that paces streams
with PGOS against the *end-to-end* (bottleneck-composed) distribution
keeps intermediate router queues bounded, while a source that pushes at
its first hop's rate floods the router in front of the bottleneck
(``tests/overlay/test_forwarding.py``).
"""

from repro.overlay.mesh import LogicalLink, OverlayMesh
from repro.overlay.forwarding import ForwardingResult, run_relay_session
from repro.overlay.multicast import (
    MulticastTree,
    multicast_guaranteed_rate,
    multicast_guaranteed_rates,
    run_multicast_session,
)
from repro.overlay.operators import ReductionOperator, run_processed_relay

__all__ = [
    "ReductionOperator",
    "run_processed_relay",
    "LogicalLink",
    "OverlayMesh",
    "ForwardingResult",
    "run_relay_session",
    "MulticastTree",
    "multicast_guaranteed_rate",
    "multicast_guaranteed_rates",
    "run_multicast_session",
]
