"""In-transit stream operators.

IQ-Paths routes messages through overlay nodes that can "process them
'in-flight' on their paths from sources to sinks" (Section 3, after
IQ-ECho's derived channels).  The canonical in-flight operation is data
reduction: when the downstream link cannot sustain the stream, a router
transcodes/downsamples instead of queueing — trading fidelity for
timeliness.

:class:`ReductionOperator` models any such transformation by its byte
ratio and fidelity cost; :func:`run_processed_relay` is the relay session
of :mod:`repro.overlay.forwarding` extended with adaptive per-router
operators: a router applies its operator to the bytes it forwards only
while its queue exceeds a pressure threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.overlay.mesh import MeshRealization
from repro.units import bytes_in_interval, mbps_from_bytes


@dataclass(frozen=True)
class ReductionOperator:
    """An in-flight data reduction (downsampling, re-compression, ...).

    Attributes
    ----------
    name:
        Label ("downsample-2x", "jpeg-q50", ...).
    ratio:
        Output bytes per input byte, in (0, 1].
    fidelity:
        Fraction of application-level fidelity retained, in (0, 1].
    """

    name: str
    ratio: float
    fidelity: float

    def __post_init__(self):
        if not 0.0 < self.ratio <= 1.0:
            raise ConfigurationError(
                f"ratio must be in (0, 1], got {self.ratio}"
            )
        if not 0.0 < self.fidelity <= 1.0:
            raise ConfigurationError(
                f"fidelity must be in (0, 1], got {self.fidelity}"
            )


@dataclass
class ProcessedRelayResult:
    """Delivery record of one relay session with in-transit processing."""

    delivered_mbps: np.ndarray
    #: fraction of delivered bytes that passed through the operator
    reduced_fraction: float
    #: mean fidelity of delivered data (1.0 = never reduced)
    mean_fidelity: float
    peak_queue_bytes: dict[str, float]
    stall_fraction: float


def run_processed_relay(
    realization: MeshRealization,
    route: list[str],
    injection_mbps: float,
    operators: dict[str, ReductionOperator] | None = None,
    pressure_seconds: float = 0.5,
    router_buffer_bytes: float = 64 * 1024 * 1024,
) -> ProcessedRelayResult:
    """Relay a CBR stream with adaptive in-transit reduction.

    Parameters
    ----------
    realization, route:
        As for :func:`repro.overlay.forwarding.run_relay_session`.
    injection_mbps:
        Source rate (the full-fidelity stream).
    operators:
        Per-router operators (keyed by node name).  A router applies its
        operator to the bytes it forwards whenever its queue exceeds
        ``pressure_seconds`` worth of the injection rate — the adaptive
        "degrade instead of drown" policy.
    """
    if injection_mbps <= 0:
        raise ConfigurationError(
            f"injection rate must be positive, got {injection_mbps}"
        )
    route = list(route)
    if len(route) < 2:
        raise ConfigurationError("route needs at least two nodes")
    operators = operators or {}
    for node in operators:
        if node not in route[1:-1]:
            raise ConfigurationError(
                f"operator node {node!r} is not an intermediate hop of "
                f"{route}"
            )
    hops = list(zip(route[:-1], route[1:]))
    for src, dst in hops:
        realization.link_series(src, dst)

    dt = realization.dt
    n = realization.n_intervals
    pressure_bytes = bytes_in_interval(injection_mbps, pressure_seconds)
    # Queues carry full-fidelity bytes separately from reduced bytes; the
    # reduced bytes also carry their fidelity-weighted total so multi-hop
    # queueing preserves per-operator fidelity accounting.
    queue_full = {node: 0.0 for node in route[:-1]}
    queue_reduced = {node: 0.0 for node in route[:-1]}
    queue_rweight = {node: 0.0 for node in route[:-1]}
    delivered = np.zeros(n)
    delivered_full = 0.0
    delivered_reduced = 0.0
    fidelity_weight = 0.0
    peaks = {node: 0.0 for node in route[1:-1]}

    for k in range(n):
        queue_full[route[0]] += bytes_in_interval(injection_mbps, dt)
        for src, dst in hops:
            budget = bytes_in_interval(
                float(realization.link_series(src, dst)[k]), dt
            )
            total = queue_full[src] + queue_reduced[src]
            if total <= 0:
                continue
            operator = operators.get(src)
            under_pressure = operator is not None and total > pressure_bytes
            # Already-reduced bytes transmit 1:1 against the link budget.
            send_reduced = min(queue_reduced[src], budget)
            rweight = (
                queue_rweight[src] * send_reduced / queue_reduced[src]
                if queue_reduced[src] > 0
                else 0.0
            )
            queue_reduced[src] -= send_reduced
            queue_rweight[src] -= rweight
            budget_left = budget - send_reduced
            share_reduced = send_reduced
            if under_pressure:
                # The link carries post-reduction bytes, so the queue
                # drains 1/ratio bytes per budget byte — reduction buys
                # drain rate at fidelity cost.
                drain_full = min(queue_full[src], budget_left / operator.ratio)
                out_bytes = drain_full * operator.ratio
                share_reduced += out_bytes
                rweight += out_bytes * operator.fidelity
                share_full = 0.0
            else:
                drain_full = min(queue_full[src], budget_left)
                share_full = drain_full
            queue_full[src] -= drain_full
            if dst == route[-1]:
                arrived = share_full + share_reduced
                delivered[k] += mbps_from_bytes(arrived, dt)
                delivered_full += share_full
                delivered_reduced += share_reduced
                fidelity_weight += share_full + rweight
            else:
                room = max(
                    router_buffer_bytes
                    - (queue_full[dst] + queue_reduced[dst]),
                    0.0,
                )
                accept_full = min(share_full, room)
                room -= accept_full
                accept_reduced = min(share_reduced, room)
                frac = (
                    accept_reduced / share_reduced if share_reduced > 0 else 0.0
                )
                queue_full[dst] += accept_full
                queue_reduced[dst] += accept_reduced
                queue_rweight[dst] += rweight * frac
        for node in route[1:-1]:
            peaks[node] = max(
                peaks[node], queue_full[node] + queue_reduced[node]
            )

    total_delivered = delivered_full + delivered_reduced
    # A stalled interval delivers under half the (possibly reduced)
    # minimum useful rate.
    min_ratio = min(
        (op.ratio for op in operators.values()), default=1.0
    )
    stall_threshold = injection_mbps * min_ratio * 0.5
    return ProcessedRelayResult(
        delivered_mbps=delivered,
        reduced_fraction=(
            delivered_reduced / total_delivered if total_delivered else 0.0
        ),
        mean_fidelity=(
            fidelity_weight / total_delivered if total_delivered else 1.0
        ),
        peak_queue_bytes=peaks,
        stall_fraction=float(np.mean(delivered < stall_threshold)),
    )
