"""Overlay multicast distribution (the paper's content-delivery extension).

"It would be interesting to extend this work to content delivery systems
that use overlay multicast techniques."  This module does the minimal
faithful version: a source distributes one stream to many clients along a
multicast *tree* of logical links; each tree node forwards one copy per
child link.

Two pacing policies are compared (as in unicast relaying):

* ``paced`` — the source sends at the rate the *worst* root-to-leaf
  bottleneck distribution sustains with the requested probability (the
  multicast generalization of Lemma 1: every receiver gets the rate with
  at least that probability);
* per-subtree adaption is deliberately out of scope (layered/segmented
  multicast is a further extension); slow subtrees therefore see loss,
  which the result quantifies per client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.core.guarantees import guaranteed_rate_at
from repro.monitoring.cdf import EmpiricalCDF
from repro.overlay.mesh import MeshRealization
from repro.units import bytes_in_interval, mbps_from_bytes


@dataclass(frozen=True)
class MulticastTree:
    """A distribution tree: parent -> children, rooted at ``source``."""

    source: str
    children: dict[str, tuple[str, ...]]

    def __post_init__(self):
        if self.source not in self.children:
            raise ConfigurationError(
                f"source {self.source!r} has no children entry"
            )
        seen = {self.source}
        frontier = [self.source]
        while frontier:
            node = frontier.pop()
            for child in self.children.get(node, ()):
                if child in seen:
                    raise ConfigurationError(
                        f"node {child!r} reached twice — not a tree"
                    )
                seen.add(child)
                frontier.append(child)
        object.__setattr__(self, "_nodes", frozenset(seen))

    @property
    def nodes(self) -> frozenset[str]:
        return self._nodes  # type: ignore[attr-defined]

    @property
    def leaves(self) -> list[str]:
        """Client nodes: tree members with no children."""
        return sorted(
            node
            for node in self.nodes
            if not self.children.get(node)
        )

    def paths_to_leaves(self) -> dict[str, list[str]]:
        """Root-to-leaf node paths, keyed by leaf."""
        paths: dict[str, list[str]] = {}

        def walk(node: str, trail: list[str]) -> None:
            kids = self.children.get(node, ())
            if not kids:
                if node != self.source:
                    paths[node] = trail + [node]
                return
            for child in kids:
                walk(child, trail + [node])

        walk(self.source, [])
        return paths


@dataclass
class MulticastResult:
    """Per-client delivery from one multicast session."""

    rate_mbps: float
    delivered_mbps: dict[str, np.ndarray]
    dropped_bytes: dict[str, float] = field(default_factory=dict)

    def client_attainment(self, client: str, target_mbps: float) -> float:
        """Fraction of intervals the client received >= ``target_mbps``."""
        series = self.delivered_mbps.get(client)
        if series is None:
            raise ConfigurationError(f"unknown client {client!r}")
        return float(np.mean(series >= target_mbps * (1 - 1e-9)))


def multicast_guaranteed_rate(
    realization: MeshRealization,
    tree: MulticastTree,
    probability: float,
) -> float:
    """Rate every client sustains with at least ``probability``.

    The multicast Lemma 1: the source must respect the *weakest*
    root-to-leaf bottleneck distribution, so the guaranteed rate is the
    min over leaves of each end-to-end distribution's quantile.
    """
    rates = []
    for leaf, path in tree.paths_to_leaves().items():
        cdf = EmpiricalCDF(realization.route_bottleneck_series(path))
        rates.append(guaranteed_rate_at(cdf, probability))
    if not rates:
        raise ConfigurationError("tree has no clients")
    return float(min(rates))


def multicast_guaranteed_rates(
    realization: MeshRealization,
    tree: MulticastTree,
    probabilities: np.ndarray,
) -> np.ndarray:
    """Guaranteed multicast rates for many probability levels at once.

    Builds each leaf's end-to-end bottleneck CDF once and evaluates the
    whole quantile sweep with a single vectorized ``percentile`` call per
    leaf — the batch analogue of calling
    :func:`multicast_guaranteed_rate` per probability, and bit-identical
    to it elementwise.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size == 0:
        raise ConfigurationError("probabilities must be a non-empty 1-D array")
    if np.any((probs <= 0.0) | (probs >= 1.0)):
        raise ConfigurationError(
            f"probabilities must be in (0, 1), got {probabilities}"
        )
    paths = tree.paths_to_leaves()
    if not paths:
        raise ConfigurationError("tree has no clients")
    per_leaf = np.empty((len(paths), probs.size), dtype=float)
    for i, (leaf, path) in enumerate(paths.items()):
        cdf = EmpiricalCDF(realization.route_bottleneck_series(path))
        per_leaf[i] = cdf.percentile((1.0 - probs) * 100.0)
    return np.array(
        [float(min(per_leaf[:, j])) for j in range(probs.size)]
    )


def run_multicast_session(
    realization: MeshRealization,
    tree: MulticastTree,
    rate_mbps: float,
    node_buffer_bytes: float = 16 * 1024 * 1024,
) -> MulticastResult:
    """Distribute a CBR stream of ``rate_mbps`` down the tree.

    Per interval, each node forwards its queued bytes to every child link
    independently (one copy per child); a child link slower than the
    arrival rate accumulates queue, bounded by ``node_buffer_bytes``
    per (node, child) with overflow dropped (counted per leaf subtree's
    entry link).
    """
    if rate_mbps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_mbps}")
    for parent, kids in tree.children.items():
        for child in kids:
            realization.link_series(parent, child)  # validates links

    dt = realization.dt
    n = realization.n_intervals
    edges = [
        (parent, child)
        for parent, kids in tree.children.items()
        for child in kids
    ]
    # Per-edge queue of bytes awaiting transmission to the child.
    queue = {edge: 0.0 for edge in edges}
    dropped = {edge: 0.0 for edge in edges}
    # Bytes arriving at each node this interval (source injects).
    leaves = tree.leaves
    delivered = {leaf: np.zeros(n) for leaf in leaves}

    # Topological order (parents before children) for cut-through.
    order: list[str] = []
    frontier = [tree.source]
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        frontier.extend(tree.children.get(node, ()))

    for k in range(n):
        arrivals = {node: 0.0 for node in tree.nodes}
        arrivals[tree.source] = bytes_in_interval(rate_mbps, dt)
        for node in order:
            payload = arrivals[node]
            for child in tree.children.get(node, ()):
                edge = (node, child)
                queue[edge] += payload
                if queue[edge] > node_buffer_bytes:
                    dropped[edge] += queue[edge] - node_buffer_bytes
                    queue[edge] = node_buffer_bytes
                budget = bytes_in_interval(
                    float(realization.link_series(node, child)[k]), dt
                )
                sent = min(queue[edge], budget)
                queue[edge] -= sent
                arrivals[child] += sent
        for leaf in leaves:
            delivered[leaf][k] = mbps_from_bytes(arrivals[leaf], dt)

    # Attribute drops to the leaf(s) downstream of each edge.
    leaf_drops = {leaf: 0.0 for leaf in leaves}
    paths = tree.paths_to_leaves()
    for (parent, child), lost in dropped.items():
        if lost <= 0:
            continue
        downstream = [
            leaf
            for leaf, path in paths.items()
            if child in path
        ]
        for leaf in downstream:
            leaf_drops[leaf] += lost / max(len(downstream), 1)

    return MulticastResult(
        rate_mbps=rate_mbps,
        delivered_mbps=delivered,
        dropped_bytes=leaf_drops,
    )
