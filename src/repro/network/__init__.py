"""Overlay network substrate.

Implements the emulated wide-area setting of the paper's evaluation:
capacity links with injected cross traffic (:mod:`repro.network.link`,
:mod:`repro.network.crosstraffic`), a topology graph with disjoint-path
search (:mod:`repro.network.topology`), overlay paths whose available
bandwidth is the bottleneck residual (:mod:`repro.network.path`), and the
concrete Figure-8 Emulab testbed (:mod:`repro.network.emulab`).
"""

from repro.network.node import Node, NodeKind
from repro.network.link import Link
from repro.network.crosstraffic import CrossTrafficSource
from repro.network.topology import Topology
from repro.network.path import OverlayPath, PathBandwidth
from repro.network.qos import PathQoS, loss_guarantee, realize_qos, rtt_guarantee
from repro.network.emulab import EmulabTestbed, TestbedRealization, make_figure8_testbed

__all__ = [
    "Node",
    "NodeKind",
    "Link",
    "CrossTrafficSource",
    "Topology",
    "OverlayPath",
    "PathBandwidth",
    "PathQoS",
    "realize_qos",
    "rtt_guarantee",
    "loss_guarantee",
    "EmulabTestbed",
    "TestbedRealization",
    "make_figure8_testbed",
]
