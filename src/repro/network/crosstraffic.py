"""Cross-traffic sources attached to links.

Each source wraps a trace profile (or an explicit rate series) and is given
its own named RNG stream, so the realized traffic is reproducible and
independent across links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams
from repro.traces.nlanr import CrossTrafficProfile, PROFILES


@dataclass(frozen=True)
class CrossTrafficSource:
    """A cross-traffic injector: profile-driven or explicit series.

    Exactly one of ``profile`` / ``series`` must be provided.  ``scale``
    multiplies the generated rates, which is how experiments sweep the
    cross-traffic intensity without re-calibrating profiles.
    """

    name: str
    profile: Optional[CrossTrafficProfile] = None
    series: Optional[tuple[float, ...]] = None
    scale: float = 1.0

    def __post_init__(self):
        if (self.profile is None) == (self.series is None):
            raise ConfigurationError(
                f"cross-traffic source {self.name!r}: provide exactly one of "
                "profile or series"
            )
        if self.scale < 0:
            raise ConfigurationError(f"scale must be >= 0, got {self.scale}")

    @classmethod
    def from_profile_name(
        cls, name: str, profile_name: str, scale: float = 1.0
    ) -> "CrossTrafficSource":
        """Build a source from a profile in :data:`repro.traces.nlanr.PROFILES`."""
        try:
            profile = PROFILES[profile_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown cross-traffic profile {profile_name!r}; "
                f"available: {sorted(PROFILES)}"
            ) from None
        return cls(name=name, profile=profile, scale=scale)

    def realize(
        self, n: int, dt: float, streams: RandomStreams
    ) -> np.ndarray:
        """Produce ``n`` rate samples (Mbps) for intervals of ``dt`` seconds."""
        if self.series is not None:
            series = np.asarray(self.series, dtype=float)
            if series.size == 0:
                raise ConfigurationError(
                    f"cross-traffic source {self.name!r} has an empty series"
                )
            # Tile/truncate the explicit series to the requested length.
            reps = -(-n // series.size)
            rates = np.tile(series, reps)[:n]
        else:
            rng = streams.fresh(f"xtraffic/{self.name}")
            rates = self.profile.sample(n, rng)
        return np.clip(rates * self.scale, 0.0, None)
