"""Capacity links with time-varying residual bandwidth.

A link has a fixed physical capacity (100 Mbps fast ethernet on the paper's
testbed), a propagation delay, and zero or more cross-traffic sources.  Its
*residual* bandwidth per measurement interval — capacity minus realized
cross traffic — is what overlay paths see as available bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.network.crosstraffic import CrossTrafficSource
from repro.network.node import Node
from repro.sim.random import RandomStreams


@dataclass
class Link:
    """A directed capacity link between two nodes.

    Attributes
    ----------
    a, b:
        Endpoints.  Links are directed (``a`` to ``b``); the topology adds
        the reverse direction explicitly where needed.
    capacity_mbps:
        Physical capacity.
    delay_ms:
        One-way propagation delay in milliseconds.
    loss_rate:
        Base (congestion-independent) packet loss probability.
    cross_traffic:
        Sources whose realized rate is subtracted from capacity.
    """

    a: Node
    b: Node
    capacity_mbps: float
    delay_ms: float = 1.0
    loss_rate: float = 0.0
    cross_traffic: list[CrossTrafficSource] = field(default_factory=list)

    def __post_init__(self):
        if self.capacity_mbps <= 0:
            raise ConfigurationError(
                f"link capacity must be positive, got {self.capacity_mbps}"
            )
        if self.delay_ms < 0:
            raise ConfigurationError(f"delay must be >= 0, got {self.delay_ms}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )

    @property
    def name(self) -> str:
        """Canonical ``a->b`` link name."""
        return f"{self.a.name}->{self.b.name}"

    def add_cross_traffic(self, source: CrossTrafficSource) -> None:
        """Attach another cross-traffic source to this link."""
        self.cross_traffic.append(source)

    def residual_series(
        self, n: int, dt: float, streams: RandomStreams
    ) -> np.ndarray:
        """Residual bandwidth (Mbps) per interval after cross traffic.

        Cross-traffic sources are realized independently (each has its own
        RNG stream keyed by source name) and summed; the residual is clipped
        to ``[0, capacity]``.
        """
        total = np.zeros(n)
        for source in self.cross_traffic:
            total += source.realize(n, dt, streams)
        return np.clip(self.capacity_mbps - total, 0.0, self.capacity_mbps)
