"""Overlay paths and their realized bandwidth.

An :class:`OverlayPath` is an ordered chain of links from a source to a
sink, possibly through router daemons.  Its available bandwidth in each
measurement interval is the minimum residual over its links (the bottleneck
composition rule), its RTT is twice the summed one-way delays, and its loss
rate composes multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.network.link import Link
from repro.network.node import Node
from repro.sim.random import RandomStreams


@dataclass(frozen=True)
class OverlayPath:
    """An ordered sequence of nodes connected by links."""

    nodes: tuple[Node, ...]
    links: tuple[Link, ...]

    def __post_init__(self):
        if len(self.nodes) < 2:
            raise TopologyError("a path needs at least two nodes")
        if len(self.links) != len(self.nodes) - 1:
            raise TopologyError(
                f"path with {len(self.nodes)} nodes needs {len(self.nodes) - 1} "
                f"links, got {len(self.links)}"
            )
        for i, link in enumerate(self.links):
            if link.a != self.nodes[i] or link.b != self.nodes[i + 1]:
                raise TopologyError(
                    f"link {link.name} does not connect "
                    f"{self.nodes[i]}->{self.nodes[i + 1]}"
                )
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise TopologyError(f"path visits a node twice: {names}")

    @property
    def name(self) -> str:
        """Human-readable ``src->..->dst`` label."""
        return "->".join(n.name for n in self.nodes)

    @property
    def source(self) -> Node:
        return self.nodes[0]

    @property
    def sink(self) -> Node:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.links)

    @property
    def rtt_ms(self) -> float:
        """Round-trip propagation time in milliseconds."""
        return 2.0 * sum(link.delay_ms for link in self.links)

    @property
    def loss_rate(self) -> float:
        """End-to-end base loss probability (independent per link)."""
        survive = 1.0
        for link in self.links:
            survive *= 1.0 - link.loss_rate
        return 1.0 - survive

    @property
    def capacity_mbps(self) -> float:
        """Physical bottleneck capacity."""
        return min(link.capacity_mbps for link in self.links)

    def realize_bandwidth(
        self, n: int, dt: float, streams: RandomStreams
    ) -> "PathBandwidth":
        """Realize the path's available bandwidth over ``n`` intervals.

        Each link's cross traffic is sampled; the path's available bandwidth
        per interval is the minimum residual across its links.
        """
        available = np.full(n, np.inf)
        for link in self.links:
            available = np.minimum(available, link.residual_series(n, dt, streams))
        return PathBandwidth(path=self, dt=dt, available_mbps=available)


@dataclass(frozen=True)
class PathBandwidth:
    """A realized available-bandwidth series for one path.

    This is the quantity the paper's monitoring component estimates online
    and the oracle baseline (OptSched) is allowed to read directly.
    """

    path: OverlayPath
    dt: float
    available_mbps: np.ndarray

    @property
    def n_intervals(self) -> int:
        return len(self.available_mbps)

    @property
    def duration(self) -> float:
        return self.n_intervals * self.dt

    def window(self, start: int, length: int) -> np.ndarray:
        """Slice of the availability series (clamped to the trace end)."""
        if start < 0 or length <= 0:
            raise ValueError(f"invalid window start={start} length={length}")
        return self.available_mbps[start : start + length]

    def mean(self) -> float:
        return float(self.available_mbps.mean())

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.available_mbps, q))
