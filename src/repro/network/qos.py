"""Per-path RTT and loss-rate realization.

The paper's monitoring tracks three path metrics: available bandwidth,
RTT, and packet loss rate (Section 1), and its future work names
loss-rate service guarantees.  This module realizes the two non-bandwidth
metrics per measurement interval:

* **RTT** — propagation RTT plus a queueing term: linear in utilization
  at moderate load, blowing up (capped) only near saturation.  The paper
  (citing Rao [24]) observes RTT is the *easy* metric to predict; the
  realization reflects that: the RTT series' relative variation stays
  well below the bandwidth series' except when the path saturates.
* **Loss** — the path's base loss rate plus a congestion component that
  kicks in as residual bandwidth vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.network.path import OverlayPath, PathBandwidth

#: Queueing delay at full utilization is capped at this multiple of the
#: propagation RTT (buffers are finite).
MAX_QUEUE_FACTOR = 3.0

#: Linear queueing sensitivity at moderate load: queue delay is
#: ``base_rtt * LINEAR_QUEUE_FACTOR * utilization`` below the knee.
LINEAR_QUEUE_FACTOR = 0.3

#: Utilization above which queueing delay blows up toward the cap.
SATURATION_KNEE = 0.92

#: Congestion loss when the path is fully saturated.
SATURATION_LOSS = 0.05


@dataclass(frozen=True)
class PathQoS:
    """One path's realized QoS series (plus its bandwidth, for context)."""

    path: OverlayPath
    dt: float
    rtt_ms: np.ndarray
    loss_rate: np.ndarray

    @property
    def n_intervals(self) -> int:
        return len(self.rtt_ms)

    def mean_rtt(self) -> float:
        return float(self.rtt_ms.mean())

    def rtt_percentile(self, q: float) -> float:
        return float(np.percentile(self.rtt_ms, q))

    def mean_loss(self) -> float:
        return float(self.loss_rate.mean())


def realize_qos(
    bandwidth: PathBandwidth,
    rng: np.random.Generator,
    jitter_ms: float = 0.5,
) -> PathQoS:
    """Derive RTT/loss series from a realized bandwidth series.

    Parameters
    ----------
    bandwidth:
        The path's availability realization; utilization is inferred as
        ``1 - available / capacity``.
    rng:
        Noise source for the RTT jitter.
    jitter_ms:
        Standard deviation of the baseline RTT jitter.
    """
    if jitter_ms < 0:
        raise ConfigurationError(f"jitter_ms must be >= 0, got {jitter_ms}")
    path = bandwidth.path
    capacity = path.capacity_mbps
    utilization = np.clip(
        1.0 - bandwidth.available_mbps / capacity, 0.0, 0.999
    )
    base_rtt = path.rtt_ms
    # Queueing term: gentle and linear at moderate load (router buffers on
    # an uncongested path add little delay), blowing up toward the finite-
    # buffer cap only past the saturation knee.
    linear = base_rtt * LINEAR_QUEUE_FACTOR * utilization
    over_knee = np.clip(
        (utilization - SATURATION_KNEE) / (1.0 - SATURATION_KNEE), 0.0, 1.0
    )
    queue_ms = np.minimum(
        linear + base_rtt * MAX_QUEUE_FACTOR * over_knee**2,
        base_rtt * MAX_QUEUE_FACTOR,
    )
    noise = jitter_ms * np.abs(rng.standard_normal(bandwidth.n_intervals))
    rtt = base_rtt + queue_ms + noise

    # Loss: base path loss plus a saturation component above 90 % load.
    overload = np.clip((utilization - 0.9) / 0.1, 0.0, 1.0)
    loss = np.clip(
        path.loss_rate + SATURATION_LOSS * overload**2, 0.0, 1.0
    )
    return PathQoS(path=path, dt=bandwidth.dt, rtt_ms=rtt, loss_rate=loss)


def rtt_guarantee(rtt_ms: np.ndarray, probability: float) -> float:
    """RTT the path stays *under* with the given probability.

    The dual of the bandwidth guarantee: the ``probability``-quantile of
    the RTT distribution.  A stream demanding RTT <= this value at that
    probability fits on the path.
    """
    if not 0.0 < probability < 1.0:
        raise ConfigurationError(
            f"probability must be in (0, 1), got {probability}"
        )
    return float(np.percentile(np.asarray(rtt_ms), probability * 100.0))


def loss_guarantee(loss_rate: np.ndarray, probability: float) -> float:
    """Loss rate the path stays under with the given probability."""
    if not 0.0 < probability < 1.0:
        raise ConfigurationError(
            f"probability must be in (0, 1), got {probability}"
        )
    return float(np.percentile(np.asarray(loss_rate), probability * 100.0))
