"""Topology graph: nodes, links, and overlay path discovery.

Backed by a :class:`networkx.DiGraph`.  The overlay middleware assumes (as
the paper does, following OverQoS) that router placement yields paths whose
bottlenecks are not shared; :meth:`Topology.disjoint_paths` finds such
paths, and :meth:`Topology.shared_links` verifies the assumption.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.errors import TopologyError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.path import OverlayPath


class Topology:
    """A directed graph of :class:`Node` and :class:`Link` objects."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._nodes: dict[str, Node] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node; re-adding the same name returns the original."""
        existing = self._nodes.get(node.name)
        if existing is not None:
            return existing
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        return node

    def add_link(self, link: Link, bidirectional: bool = True) -> None:
        """Add a link (both directions by default, as on the testbed).

        The reverse link shares capacity/delay parameters but carries its
        own (empty) cross-traffic list; the evaluation's data flows are
        one-directional, so cross traffic is attached to the forward link.
        """
        self.add_node(link.a)
        self.add_node(link.b)
        if self._graph.has_edge(link.a.name, link.b.name):
            raise TopologyError(f"duplicate link {link.name}")
        self._graph.add_edge(link.a.name, link.b.name, link=link)
        if bidirectional and not self._graph.has_edge(link.b.name, link.a.name):
            reverse = Link(
                a=link.b,
                b=link.a,
                capacity_mbps=link.capacity_mbps,
                delay_ms=link.delay_ms,
                loss_rate=link.loss_rate,
            )
            self._graph.add_edge(link.b.name, link.a.name, link=reverse)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        """All registered nodes."""
        return list(self._nodes.values())

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def link(self, a: str, b: str) -> Link:
        """Look up the directed link from ``a`` to ``b``."""
        try:
            return self._graph.edges[a, b]["link"]
        except KeyError:
            raise TopologyError(f"no link {a}->{b}") from None

    @property
    def links(self) -> list[Link]:
        """All directed links."""
        return [data["link"] for _, _, data in self._graph.edges(data=True)]

    # ------------------------------------------------------------------
    # path discovery
    # ------------------------------------------------------------------
    def path(self, node_names: Sequence[str]) -> OverlayPath:
        """Build an :class:`OverlayPath` through the given node names."""
        if len(node_names) < 2:
            raise TopologyError("a path needs at least two nodes")
        links = []
        for a, b in zip(node_names[:-1], node_names[1:]):
            links.append(self.link(a, b))
        return OverlayPath(tuple(self.node(n) for n in node_names), tuple(links))

    def shortest_path(self, src: str, dst: str) -> OverlayPath:
        """Minimum-hop path from ``src`` to ``dst``."""
        try:
            names = nx.shortest_path(self._graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise TopologyError(f"no path {src}->{dst}: {exc}") from exc
        return self.path(names)

    def disjoint_paths(self, src: str, dst: str, k: int = 2) -> list[OverlayPath]:
        """Up to ``k`` node-disjoint paths from ``src`` to ``dst``.

        Paths are returned shortest-first.  Raises if fewer than ``k``
        disjoint paths exist — the caller asked for parallelism the topology
        cannot provide.
        """
        if src not in self._nodes or dst not in self._nodes:
            raise TopologyError(f"unknown endpoint in {src!r}->{dst!r}")
        try:
            all_paths = list(nx.node_disjoint_paths(self._graph, src, dst))
        except nx.NetworkXNoPath:
            all_paths = []
        all_paths.sort(key=len)
        if len(all_paths) < k:
            raise TopologyError(
                f"only {len(all_paths)} node-disjoint paths from {src} to "
                f"{dst}; {k} requested"
            )
        return [self.path(names) for names in all_paths[:k]]

    def edge_disjoint_paths(
        self, src: str, dst: str, k: int = 2
    ) -> list[OverlayPath]:
        """Up to ``k`` edge-disjoint paths from ``src`` to ``dst``.

        Edge-disjoint is the weaker guarantee (paths may share routers
        but never a link — i.e. never a bottleneck), which some
        generated fabrics can satisfy at higher ``k`` than full node
        disjointness.  Extraction is the deterministic greedy peeling
        of :mod:`repro.topo.paths` — a pure function of the graph's
        structure, independent of construction order — with an exact
        max-flow fallback when greedy under-counts.  Raises if fewer
        than ``k`` such paths exist.
        """
        from repro.topo.paths import greedy_disjoint_routes

        if src not in self._nodes or dst not in self._nodes:
            raise TopologyError(f"unknown endpoint in {src!r}->{dst!r}")
        adjacency = {
            node: set(self._graph.successors(node))
            for node in self._graph
        }
        found = greedy_disjoint_routes(
            adjacency, src, dst, k, disjoint="edge"
        )
        if len(found) < k:
            try:
                exact = sorted(
                    nx.edge_disjoint_paths(self._graph, src, dst), key=len
                )
            except nx.NetworkXNoPath:
                exact = []
            if len(exact) >= k:
                found = [list(route) for route in exact[:k]]
            else:
                count = max(len(found), len(exact))
                raise TopologyError(
                    f"only {count} edge-disjoint paths from {src} to "
                    f"{dst}; {k} requested"
                )
        return [self.path(names) for names in found[:k]]

    def shared_links(self, paths: Iterable[OverlayPath]) -> set[str]:
        """Names of links used by more than one of the given paths.

        An empty result confirms the OverQoS-style placement assumption:
        the paths do not share a (potential) bottleneck.
        """
        seen: dict[str, int] = {}
        for path in paths:
            for link in path.links:
                seen[link.name] = seen.get(link.name, 0) + 1
        return {name for name, count in seen.items() if count > 1}
