"""Overlay and underlay node model.

Mirrors the paper's node roles (Figure 1): servers (data sources), clients
(data sinks), router daemons (overlay forwarding), and the cross-traffic
generator hosts of the Emulab testbed (Figure 8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeKind(enum.Enum):
    """Role a node plays in the overlay."""

    SERVER = "server"
    CLIENT = "client"
    ROUTER = "router"
    HOST = "host"
    CROSS_TRAFFIC = "cross-traffic"


@dataclass(frozen=True)
class Node:
    """A named node with a role.

    Nodes are identified by name; equality and hashing use the name only so
    a node can be looked up in a topology by a fresh instance with the same
    name.
    """

    name: str
    kind: NodeKind = field(default=NodeKind.HOST, compare=False)

    def __post_init__(self):
        if not self.name:
            raise ValueError("node name must be non-empty")

    def __str__(self) -> str:
        return self.name
