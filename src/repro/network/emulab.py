"""The paper's Figure-8 Emulab testbed, reproduced in simulation.

Topology (all links fast ethernet, 100 Mbps):

* ``N-1`` — overlay server (data source)
* ``N-6`` — overlay client (data sink)
* ``N-4``, ``N-5`` — overlay router daemons
* ``N-2``, ``N-3`` — underlay routers on the two server-side branches
* ``N-9`` .. ``N-14`` — cross-traffic hosts

The two overlay paths are node-disjoint::

    path A:  N-1 -> N-2 -> N-4 -> N-6
    path B:  N-1 -> N-3 -> N-5 -> N-6

Cross traffic shares the ``N-2 -> N-4`` bottleneck with path A and the
``N-3 -> N-5`` bottleneck with path B, exactly as in the paper ("overlay
paths and cross traffic paths share the same bottleneck").  Cross-traffic
rates come from the NLANR-like profiles in :mod:`repro.traces.nlanr`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.crosstraffic import CrossTrafficSource
from repro.network.link import Link
from repro.network.node import Node, NodeKind
from repro.network.path import OverlayPath, PathBandwidth
from repro.network.qos import PathQoS, realize_qos
from repro.network.topology import Topology
from repro.sim.random import RandomStreams

#: Fast-ethernet capacity, "the current up-limit of Emulab" per the paper.
LINK_CAPACITY_MBPS = 100.0

#: Per-link one-way delay used for the emulated WAN (ms).
LINK_DELAY_MS = 5.0


@dataclass(frozen=True)
class TestbedRealization:
    """Sampled per-path series for one experiment.

    ``available["A"]`` / ``available["B"]`` are :class:`PathBandwidth`
    instances covering the whole experiment at interval ``dt``; ``qos``
    carries the matching RTT / loss-rate series.
    """

    testbed: "EmulabTestbed"
    seed: int
    dt: float
    available: dict[str, PathBandwidth]
    qos: dict[str, PathQoS]

    @property
    def n_intervals(self) -> int:
        first = next(iter(self.available.values()))
        return first.n_intervals

    def path_names(self) -> list[str]:
        return sorted(self.available)


@dataclass(frozen=True)
class EmulabTestbed:
    """The simulated testbed: topology plus the two named overlay paths."""

    topology: Topology
    server: Node
    client: Node
    paths: dict[str, OverlayPath]

    def realize(self, seed: int, duration: float, dt: float) -> TestbedRealization:
        """Sample cross traffic and produce per-path availability series."""
        if duration <= 0 or dt <= 0:
            raise ConfigurationError(
                f"duration and dt must be positive, got {duration}, {dt}"
            )
        n = int(round(duration / dt))
        if n == 0:
            raise ConfigurationError("duration shorter than one interval")
        streams = RandomStreams(seed)
        available = {
            name: path.realize_bandwidth(n, dt, streams)
            for name, path in sorted(self.paths.items())
        }
        qos = {
            name: realize_qos(bw, streams.fresh(f"qos/{name}"))
            for name, bw in available.items()
        }
        return TestbedRealization(
            testbed=self, seed=seed, dt=dt, available=available, qos=qos
        )


def make_figure8_testbed(
    profile_a: str = "abilene-moderate",
    profile_b: str = "abilene-noisy",
    xtraffic_scale: float = 1.0,
) -> EmulabTestbed:
    """Build the Figure-8 testbed.

    Parameters
    ----------
    profile_a, profile_b:
        Cross-traffic profile names for the path-A and path-B bottlenecks.
        The defaults give path A the higher, more stable residual bandwidth
        and path B the lower, noisier one, matching Section 6.1.
    xtraffic_scale:
        Multiplier on the cross-traffic rates of both bottlenecks; used by
        the sweeps/ablations to move the operating point.
    """
    topo = Topology()

    server = topo.add_node(Node("N-1", NodeKind.SERVER))
    client = topo.add_node(Node("N-6", NodeKind.CLIENT))
    n2 = topo.add_node(Node("N-2", NodeKind.ROUTER))
    n3 = topo.add_node(Node("N-3", NodeKind.ROUTER))
    n4 = topo.add_node(Node("N-4", NodeKind.ROUTER))  # overlay router
    n5 = topo.add_node(Node("N-5", NodeKind.ROUTER))  # overlay router

    cross_nodes = {
        name: topo.add_node(Node(name, NodeKind.CROSS_TRAFFIC))
        for name in ("N-7", "N-8", "N-9", "N-10", "N-11", "N-12", "N-13", "N-14")
    }

    def link(a: Node, b: Node, **kwargs) -> Link:
        lk = Link(
            a=a,
            b=b,
            capacity_mbps=LINK_CAPACITY_MBPS,
            delay_ms=LINK_DELAY_MS,
            **kwargs,
        )
        topo.add_link(lk)
        return lk

    # Overlay path A: N-1 -> N-2 -> N-4 -> N-6 (bottleneck N-2 -> N-4).
    link(server, n2)
    bottleneck_a = link(n2, n4)
    link(n4, client)

    # Overlay path B: N-1 -> N-3 -> N-5 -> N-6 (bottleneck N-3 -> N-5).
    link(server, n3)
    bottleneck_b = link(n3, n5)
    link(n5, client)

    # Cross-traffic hosts hang off the branch routers so their flows
    # traverse exactly the bottleneck links (Figure 8's arrows).
    link(cross_nodes["N-9"], n2)
    link(cross_nodes["N-7"], n2)
    link(n4, cross_nodes["N-11"])
    link(n4, cross_nodes["N-13"])
    link(cross_nodes["N-10"], n3)
    link(cross_nodes["N-8"], n3)
    link(n5, cross_nodes["N-12"])
    link(n5, cross_nodes["N-14"])

    bottleneck_a.add_cross_traffic(
        CrossTrafficSource.from_profile_name(
            "N-9->N-11", profile_a, scale=xtraffic_scale
        )
    )
    bottleneck_b.add_cross_traffic(
        CrossTrafficSource.from_profile_name(
            "N-10->N-12", profile_b, scale=xtraffic_scale
        )
    )

    paths = {
        "A": topo.path(["N-1", "N-2", "N-4", "N-6"]),
        "B": topo.path(["N-1", "N-3", "N-5", "N-6"]),
    }
    shared = topo.shared_links(paths.values())
    if shared:  # pragma: no cover - construction invariant
        raise ConfigurationError(f"overlay paths share links: {shared}")

    return EmulabTestbed(topology=topo, server=server, client=client, paths=paths)
