"""Path fault injection.

The paper's future work is runtime fault tolerance — isolating recovery
traffic, re-routing around failures.  The substrate for studying that is
the ability to inject faults into a realization: outages (availability
drops to zero) and degradations (availability scaled down) on chosen
paths over chosen intervals.  PGOS's monitoring sees the change, the KS
trigger fires, and the mapping moves guaranteed streams away — verified
in ``tests/integration/test_failure_recovery.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.emulab import TestbedRealization
from repro.network.path import PathBandwidth
from repro.network.qos import PathQoS


@dataclass(frozen=True)
class PathFault:
    """One fault episode on one path.

    Attributes
    ----------
    path:
        Path name (``"A"``, ``"B"``, ...).
    start, end:
        Fault window in seconds of experiment time (end exclusive).
    severity:
        Fraction of availability removed: ``1.0`` is a full outage,
        ``0.5`` halves the path's bandwidth.
    extra_loss:
        Additional packet loss rate during the fault (clipped to 1).
    """

    path: str
    start: float
    end: float
    severity: float = 1.0
    extra_loss: float = 0.0

    def __post_init__(self):
        if self.end <= self.start:
            raise ConfigurationError(
                f"fault end {self.end} must exceed start {self.start}"
            )
        if not 0.0 < self.severity <= 1.0:
            raise ConfigurationError(
                f"severity must be in (0, 1], got {self.severity}"
            )
        if not 0.0 <= self.extra_loss <= 1.0:
            raise ConfigurationError(
                f"extra_loss must be in [0, 1], got {self.extra_loss}"
            )


def inject_faults(
    realization: TestbedRealization, faults: Sequence[PathFault]
) -> TestbedRealization:
    """Return a copy of ``realization`` with the faults applied.

    The original realization is left untouched (its arrays are copied for
    every faulted path).
    """
    dt = realization.dt
    n = realization.n_intervals
    available = dict(realization.available)
    qos = dict(realization.qos)
    for fault in faults:
        if fault.path not in available:
            raise ConfigurationError(
                f"unknown path {fault.path!r}; have "
                f"{sorted(available)}"
            )
        lo = max(int(fault.start / dt), 0)
        hi = min(int(round(fault.end / dt)), n)
        if lo >= n or hi <= lo:
            raise ConfigurationError(
                f"fault window [{fault.start}, {fault.end}) is outside the "
                f"realization ({n * dt:.1f} s)"
            )
        bw = available[fault.path]
        series = bw.available_mbps.copy()
        series[lo:hi] *= 1.0 - fault.severity
        available[fault.path] = PathBandwidth(
            path=bw.path, dt=bw.dt, available_mbps=series
        )
        q = qos[fault.path]
        loss = q.loss_rate.copy()
        loss[lo:hi] = np.clip(loss[lo:hi] + fault.extra_loss, 0.0, 1.0)
        qos[fault.path] = PathQoS(
            path=q.path, dt=q.dt, rtt_ms=q.rtt_ms.copy(), loss_rate=loss
        )
    return replace(realization, available=available, qos=qos)
