"""Path fault injection: static realizations and dynamic campaigns.

The paper's future work is runtime fault tolerance — isolating recovery
traffic, re-routing around failures.  Two substrates for studying that
live here:

* **Static injection** (:func:`inject_faults`): outages (availability
  drops to zero) and degradations (availability scaled down) baked into a
  realization *before* the run.  PGOS's monitoring sees the change, the
  KS trigger fires, and the mapping moves guaranteed streams away —
  verified in ``tests/integration/test_failure_recovery.py``.

* **Dynamic campaigns** (:class:`FaultCampaign`): time-indexed fault and
  monitor-blackout schedules that consumers apply *mid-run*.  The
  middleware (:class:`repro.middleware.service.IQPathsService`) and the
  packet session (:func:`repro.transport.session.run_packet_session`)
  query the campaign each interval/window, scale the realized
  availability, add loss, and drop monitoring observations during
  blackouts — driving the runtime health machinery in
  :mod:`repro.robustness`.

Overlapping faults on the same path compose **multiplicatively** on
availability (two 50 % degradations leave 25 % of the bandwidth) and
**additively, clipped to 1** on loss rate.  This holds for both the
static and the dynamic application.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.emulab import TestbedRealization
from repro.network.path import PathBandwidth
from repro.network.qos import PathQoS


@dataclass(frozen=True)
class PathFault:
    """One fault episode on one path.

    Attributes
    ----------
    path:
        Path name (``"A"``, ``"B"``, ...).
    start, end:
        Fault window in seconds of experiment time (end exclusive).
    severity:
        Fraction of availability removed: ``1.0`` is a full outage,
        ``0.5`` halves the path's bandwidth.  Faults whose windows
        overlap on the same path compose multiplicatively.
    extra_loss:
        Additional packet loss rate during the fault (clipped to 1;
        overlapping faults add).
    """

    path: str
    start: float
    end: float
    severity: float = 1.0
    extra_loss: float = 0.0

    def __post_init__(self):
        if self.end <= self.start:
            raise ConfigurationError(
                f"fault end {self.end} must exceed start {self.start}"
            )
        if not 0.0 < self.severity <= 1.0:
            raise ConfigurationError(
                f"severity must be in (0, 1], got {self.severity}"
            )
        if not 0.0 <= self.extra_loss <= 1.0:
            raise ConfigurationError(
                f"extra_loss must be in [0, 1], got {self.extra_loss}"
            )

    def active(self, t: float) -> bool:
        """Whether the fault covers time ``t`` (start inclusive, end exclusive)."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class MonitorBlackout:
    """A window during which a path's monitoring observations are dropped.

    A blackout models probe loss / monitor failure: the path keeps
    carrying whatever the scheduler sends, but the monitoring stack
    receives *no* bandwidth, RTT, or loss samples — the health machinery
    treats the missing observations as probe timeouts.
    """

    path: str
    start: float
    end: float

    def __post_init__(self):
        if self.end <= self.start:
            raise ConfigurationError(
                f"blackout end {self.end} must exceed start {self.start}"
            )

    def active(self, t: float) -> bool:
        """Whether the blackout covers time ``t``."""
        return self.start <= t < self.end


def inject_faults(
    realization: TestbedRealization, faults: Sequence[PathFault]
) -> TestbedRealization:
    """Return a copy of ``realization`` with the faults applied.

    The original realization is left untouched (its arrays are copied for
    every faulted path).  Both window edges round to the nearest interval
    boundary, so a window of ``n * dt`` seconds always covers exactly
    ``n`` intervals regardless of where it starts.  Overlapping faults on
    the same path compose multiplicatively on availability and additively
    (clipped to 1) on loss.
    """
    dt = realization.dt
    n = realization.n_intervals
    available = dict(realization.available)
    qos = dict(realization.qos)
    for fault in faults:
        if fault.path not in available:
            raise ConfigurationError(
                f"unknown path {fault.path!r}; have "
                f"{sorted(available)}"
            )
        lo = max(int(round(fault.start / dt)), 0)
        hi = min(int(round(fault.end / dt)), n)
        if lo >= n or hi <= lo:
            raise ConfigurationError(
                f"fault window [{fault.start}, {fault.end}) is outside the "
                f"realization ({n * dt:.1f} s)"
            )
        bw = available[fault.path]
        series = bw.available_mbps.copy()
        series[lo:hi] *= 1.0 - fault.severity
        available[fault.path] = PathBandwidth(
            path=bw.path, dt=bw.dt, available_mbps=series
        )
        q = qos[fault.path]
        loss = q.loss_rate.copy()
        loss[lo:hi] = np.clip(loss[lo:hi] + fault.extra_loss, 0.0, 1.0)
        qos[fault.path] = PathQoS(
            path=q.path, dt=q.dt, rtt_ms=q.rtt_ms.copy(), loss_rate=loss
        )
    return replace(realization, available=available, qos=qos)


# ----------------------------------------------------------------------
# dynamic fault schedules
# ----------------------------------------------------------------------
def flapping_faults(
    path: str,
    start: float,
    end: float,
    rng: np.random.Generator,
    mean_up: float = 4.0,
    mean_down: float = 2.0,
    severity: float = 1.0,
    extra_loss: float = 0.0,
    min_episode: float = 0.2,
) -> list[PathFault]:
    """A seeded link-flapping schedule: alternating up/down episodes.

    Starting *up* at ``start``, the link alternates between healthy
    episodes (mean ``mean_up`` seconds) and faulted episodes (mean
    ``mean_down`` seconds), both exponentially distributed and floored at
    ``min_episode``, until ``end``.  Returns the list of down-episode
    faults (possibly empty if the first up episode outlives the window).
    """
    if end <= start:
        raise ConfigurationError(
            f"flapping window end {end} must exceed start {start}"
        )
    if mean_up <= 0 or mean_down <= 0 or min_episode <= 0:
        raise ConfigurationError(
            "mean_up, mean_down and min_episode must be positive"
        )
    faults: list[PathFault] = []
    t = start
    while t < end:
        t += max(float(rng.exponential(mean_up)), min_episode)
        if t >= end:
            break
        down = max(float(rng.exponential(mean_down)), min_episode)
        faults.append(
            PathFault(
                path=path,
                start=t,
                end=min(t + down, end),
                severity=severity,
                extra_loss=extra_loss,
            )
        )
        t += down
    return faults


def correlated_outage(
    paths: Sequence[str],
    start: float,
    duration: float,
    severity: float = 1.0,
    stagger: float = 0.0,
) -> list[PathFault]:
    """A correlated multi-path outage: every path fails near-simultaneously.

    Models a shared-risk failure (a common underlay link, a site power
    event): each listed path gets the same fault window, with path ``i``
    delayed by ``i * stagger`` seconds (cascading failures).
    """
    if not paths:
        raise ConfigurationError("correlated outage needs at least one path")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if stagger < 0:
        raise ConfigurationError(f"stagger must be >= 0, got {stagger}")
    return [
        PathFault(
            path=p,
            start=start + i * stagger,
            end=start + i * stagger + duration,
            severity=severity,
        )
        for i, p in enumerate(paths)
    ]


@dataclass(frozen=True)
class FaultCampaign:
    """A time-indexed fault schedule applied *mid-run* by the middleware.

    Unlike :func:`inject_faults`, nothing is baked into the realization:
    consumers query the campaign every interval and scale what the paths
    actually deliver, add loss, and drop monitoring observations during
    blackouts.  Timestamps are in the consumer's session clock (``t = 0``
    when application traffic starts, i.e. after the warmup probe phase).

    Attributes
    ----------
    faults:
        Availability/loss fault episodes (overlaps compose as documented
        in :class:`PathFault`).
    blackouts:
        Monitor-blackout windows (observations dropped).
    name, seed:
        Labelling for reports; ``seed`` records the generator seed for
        campaigns built by :meth:`random`.
    """

    faults: tuple[PathFault, ...] = ()
    blackouts: tuple[MonitorBlackout, ...] = ()
    name: str = "campaign"
    seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "blackouts", tuple(self.blackouts))
        if not self.faults and not self.blackouts:
            raise ConfigurationError(
                "a campaign needs at least one fault or blackout"
            )

    # ------------------------------------------------------------------
    # point queries (one interval / window)
    # ------------------------------------------------------------------
    def availability_multiplier(self, path: str, t: float) -> float:
        """Product of ``1 - severity`` over the faults active on ``path``."""
        mult = 1.0
        for fault in self.faults:
            if fault.path == path and fault.active(t):
                mult *= 1.0 - fault.severity
        return mult

    def extra_loss(self, path: str, t: float) -> float:
        """Summed extra loss of the active faults on ``path``, clipped to 1."""
        loss = sum(
            f.extra_loss
            for f in self.faults
            if f.path == path and f.active(t)
        )
        return min(loss, 1.0)

    def observed(self, path: str, t: float) -> bool:
        """Whether monitoring on ``path`` sees anything at time ``t``."""
        return not any(
            b.path == path and b.active(t) for b in self.blackouts
        )

    def active_faults(self, t: float) -> list[PathFault]:
        """The faults covering time ``t``."""
        return [f for f in self.faults if f.active(t)]

    # ------------------------------------------------------------------
    # extent queries (reporting)
    # ------------------------------------------------------------------
    @property
    def faulted_paths(self) -> frozenset[str]:
        """Paths touched by at least one availability/loss fault."""
        return frozenset(f.path for f in self.faults)

    @property
    def first_onset(self) -> float | None:
        """Start of the earliest fault (``None`` for blackout-only campaigns)."""
        return min((f.start for f in self.faults), default=None)

    @property
    def last_end(self) -> float | None:
        """End of the latest fault (``None`` for blackout-only campaigns)."""
        return max((f.end for f in self.faults), default=None)

    def shifted(self, offset: float) -> "FaultCampaign":
        """The same campaign with every timestamp moved by ``offset``."""
        return replace(
            self,
            faults=tuple(
                replace(f, start=f.start + offset, end=f.end + offset)
                for f in self.faults
            ),
            blackouts=tuple(
                replace(b, start=b.start + offset, end=b.end + offset)
                for b in self.blackouts
            ),
        )

    def as_static(
        self, realization: TestbedRealization, offset: float = 0.0
    ) -> TestbedRealization:
        """Bake the availability/loss faults into a realization.

        ``offset`` converts campaign (session) time to realization time —
        pass the warmup length in seconds.  Blackouts cannot be baked in
        (they affect observation, not delivery) and are ignored here.
        """
        if not self.faults:
            return realization
        return inject_faults(
            realization, [f for f in self.shifted(offset).faults]
        )

    # ------------------------------------------------------------------
    # seeded generators
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        paths: Sequence[str],
        duration: float,
        seed: int,
        flap: bool = True,
        outage: bool = True,
        blackout: bool = True,
        severity: float = 1.0,
        name: str | None = None,
    ) -> "FaultCampaign":
        """A seeded random campaign mixing the three disruption modes.

        Deterministic for a fixed ``(paths, duration, seed)``: one path
        flaps through the middle of the run, a correlated outage hits up
        to two paths in the final third, and a monitor blackout drops one
        path's observations for a stretch.  Individual modes can be
        switched off.
        """
        if not paths:
            raise ConfigurationError("campaign needs at least one path")
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be > 0, got {duration}"
            )
        rng = np.random.default_rng(seed)
        ordered = list(paths)
        faults: list[PathFault] = []
        blackouts: list[MonitorBlackout] = []
        if flap:
            flap_path = ordered[int(rng.integers(len(ordered)))]
            faults.extend(
                flapping_faults(
                    flap_path,
                    start=duration * 0.15,
                    end=duration * 0.55,
                    rng=rng,
                    mean_up=duration * 0.06,
                    mean_down=duration * 0.03,
                    severity=severity,
                )
            )
        if outage:
            victims = ordered[: max(1, min(2, len(ordered)))]
            start = duration * (0.6 + 0.1 * float(rng.random()))
            faults.extend(
                correlated_outage(
                    victims,
                    start=start,
                    duration=duration * 0.12,
                    severity=severity,
                    stagger=duration * 0.01,
                )
            )
        if blackout:
            dark = ordered[int(rng.integers(len(ordered)))]
            start = duration * (0.3 + 0.2 * float(rng.random()))
            blackouts.append(
                MonitorBlackout(
                    path=dark, start=start, end=start + duration * 0.05
                )
            )
        if not faults and not blackouts:
            raise ConfigurationError(
                "campaign generator produced no events; enable at least one "
                "of flap/outage/blackout"
            )
        return cls(
            faults=tuple(sorted(faults, key=lambda f: (f.start, f.path))),
            blackouts=tuple(blackouts),
            name=name or f"random-{seed}",
            seed=seed,
        )
