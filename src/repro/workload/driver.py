"""Open-loop churn driver: session arrivals and departures mid-run.

:class:`ChurnDriver` takes a planned session population (from
:func:`repro.workload.catalog.plan_sessions`) and plays it against a
live :class:`~repro.middleware.service.IQPathsService` on the sim
clock: each ``dt`` step first closes sessions whose holding time
expired, then opens sessions whose arrival time came due, then advances
the delivery loop one interval.  The load is *open-loop* — arrivals do
not slow down when the overlay saturates, which is exactly what makes
the capacity envelope measurable.

Every admission outcome (admit / degrade / reject), every close, and
every shed observed along the way is recorded per session and rolled up
per tenant into a :class:`WorkloadReport`.  The report is a pure
function of ``(plans, service configuration, seed)`` — it contains no
wall-clock material — so two same-seed runs produce byte-identical
``to_dict()`` payloads and the whole run can live behind the
:mod:`repro.runner` content-addressed cache.  ``WORKLOAD``-category
trace events mirror the same lifecycle onto the observability bus.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.errors import AdmissionError, ConfigurationError
from repro.middleware.service import IQPathsService
from repro.obs.events import Category
from repro.runner.cache import payload_digest
from repro.workload.catalog import SessionPlan


def _round6(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), 6)


@dataclass
class SessionRecord:
    """Final accounting for one planned session."""

    index: int
    name: str
    tenant: str
    template: str
    arrival_s: float
    holding_s: float
    #: "admitted" | "degraded" | "rejected"
    outcome: str
    opened_at: Optional[float] = None
    closed_at: Optional[float] = None
    #: True if the degradation policy paused the stream at any point.
    shed: bool = False
    #: True if the run ended before the session's planned departure.
    truncated: bool = False
    mean_mbps: Optional[float] = None
    attainment: Optional[float] = None
    #: Guaranteed session that was admitted but missed its probability.
    violated: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "tenant": self.tenant,
            "template": self.template,
            "arrival_s": _round6(self.arrival_s),
            "holding_s": _round6(self.holding_s),
            "outcome": self.outcome,
            "opened_at": _round6(self.opened_at),
            "closed_at": _round6(self.closed_at),
            "shed": self.shed,
            "truncated": self.truncated,
            "mean_mbps": _round6(self.mean_mbps),
            "attainment": _round6(self.attainment),
            "violated": self.violated,
        }


@dataclass
class TenantAccount:
    """Per-tenant rollup of session outcomes and delivered goodput."""

    tenant: str
    priority: int
    offered: int = 0
    admitted: int = 0
    degraded: int = 0
    rejected: int = 0
    shed: int = 0
    violations: int = 0
    delivered_megabits: float = 0.0
    _attainments: list[float] = field(default_factory=list, repr=False)

    @property
    def mean_attainment(self) -> Optional[float]:
        if not self._attainments:
            return None
        return sum(self._attainments) / len(self._attainments)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "priority": self.priority,
            "offered": self.offered,
            "admitted": self.admitted,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "shed": self.shed,
            "violations": self.violations,
            "delivered_megabits": _round6(self.delivered_megabits),
            "mean_attainment": _round6(self.mean_attainment),
        }


@dataclass
class WorkloadReport:
    """Everything one churn run produced, deterministically serializable."""

    scenario: str
    seed: int
    dt: float
    duration: float
    offered: int
    admitted: int
    degraded: int
    rejected: int
    closed: int
    truncated: int
    shed_sessions: int
    violations: int
    peak_concurrent: int
    delivered_megabits: float
    tenants: dict[str, TenantAccount]
    sessions: list[SessionRecord]

    @property
    def violation_rate(self) -> float:
        """Fraction of offered sessions the overlay failed in any way.

        A session counts as a violation if it was rejected, opened
        degraded, or admitted with a guarantee it then missed — the
        quantity the capacity envelope holds under its ceiling.
        """
        if self.offered == 0:
            return 0.0
        return (self.rejected + self.degraded + self.violations) / (
            self.offered
        )

    def to_dict(self) -> dict[str, Any]:
        """Canonical payload: pure, sorted, wall-clock-free."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "dt": self.dt,
            "duration": self.duration,
            "offered": self.offered,
            "admitted": self.admitted,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "closed": self.closed,
            "truncated": self.truncated,
            "shed_sessions": self.shed_sessions,
            "violations": self.violations,
            "violation_rate": _round6(self.violation_rate),
            "peak_concurrent": self.peak_concurrent,
            "delivered_megabits": _round6(self.delivered_megabits),
            "tenants": {
                name: account.to_dict()
                for name, account in sorted(self.tenants.items())
            },
            "sessions": [s.to_dict() for s in self.sessions],
        }

    def checksum(self) -> str:
        """Hex digest of the canonical payload (byte-identity probe)."""
        return payload_digest(self.to_dict())

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"workload {self.scenario!r} seed={self.seed}: "
            f"{self.offered} sessions over {self.duration:.0f}s",
            f"  admitted={self.admitted} degraded={self.degraded} "
            f"rejected={self.rejected} shed={self.shed_sessions} "
            f"violations={self.violations}",
            f"  violation_rate={self.violation_rate:.4f} "
            f"peak_concurrent={self.peak_concurrent} "
            f"delivered={self.delivered_megabits:.1f} Mb",
        ]
        for name, account in sorted(
            self.tenants.items(),
            key=lambda kv: (kv[1].priority, kv[0]),
        ):
            mean_att = account.mean_attainment
            att = f"{mean_att:.3f}" if mean_att is not None else "n/a"
            lines.append(
                f"  [{name}] offered={account.offered} "
                f"admitted={account.admitted} "
                f"degraded={account.degraded} "
                f"rejected={account.rejected} shed={account.shed} "
                f"violations={account.violations} attainment={att}"
            )
        return "\n".join(lines)


def _record_state(record: SessionRecord) -> dict[str, Any]:
    """Exact (un-rounded) snapshot of a :class:`SessionRecord`.

    :meth:`SessionRecord.to_dict` rounds floats for the report payload;
    checkpoints need the raw values so a resumed run's arithmetic stays
    bit-identical.
    """
    return {
        "index": record.index,
        "name": record.name,
        "tenant": record.tenant,
        "template": record.template,
        "arrival_s": record.arrival_s,
        "holding_s": record.holding_s,
        "outcome": record.outcome,
        "opened_at": record.opened_at,
        "closed_at": record.closed_at,
        "shed": record.shed,
        "truncated": record.truncated,
        "mean_mbps": record.mean_mbps,
        "attainment": record.attainment,
        "violated": record.violated,
    }


def _record_from_state(state: dict[str, Any]) -> SessionRecord:
    return SessionRecord(
        index=int(state["index"]),
        name=state["name"],
        tenant=state["tenant"],
        template=state["template"],
        arrival_s=float(state["arrival_s"]),
        holding_s=float(state["holding_s"]),
        outcome=state["outcome"],
        opened_at=state["opened_at"],
        closed_at=state["closed_at"],
        shed=bool(state["shed"]),
        truncated=bool(state["truncated"]),
        mean_mbps=state["mean_mbps"],
        attainment=state["attainment"],
        violated=bool(state["violated"]),
    )


def _account_state(account: TenantAccount) -> dict[str, Any]:
    """Exact snapshot of a :class:`TenantAccount` (all counters raw)."""
    return {
        "tenant": account.tenant,
        "priority": account.priority,
        "offered": account.offered,
        "admitted": account.admitted,
        "degraded": account.degraded,
        "rejected": account.rejected,
        "shed": account.shed,
        "violations": account.violations,
        "delivered_megabits": account.delivered_megabits,
        "attainments": list(account._attainments),
    }


def _account_from_state(state: dict[str, Any]) -> TenantAccount:
    return TenantAccount(
        tenant=state["tenant"],
        priority=int(state["priority"]),
        offered=int(state["offered"]),
        admitted=int(state["admitted"]),
        degraded=int(state["degraded"]),
        rejected=int(state["rejected"]),
        shed=int(state["shed"]),
        violations=int(state["violations"]),
        delivered_megabits=float(state["delivered_megabits"]),
        _attainments=[float(v) for v in state["attainments"]],
    )


@dataclass
class _RunState:
    """Mutable mid-run state of one :meth:`ChurnDriver.run` invocation.

    Everything the step loop touches lives here (not in locals), so a
    checkpoint taken between steps captures the loop exactly and
    :meth:`ChurnDriver.run` can resume from step ``k``.
    """

    #: Next step index to execute (steps ``0..k-1`` are done).
    k: int = 0
    records: dict[str, SessionRecord] = field(default_factory=dict)
    tenants: dict[str, TenantAccount] = field(default_factory=dict)
    #: Departure heap: (close_time, plan_index, session_name).  The
    #: index tie-break keeps same-instant closes in arrival order.
    departures: list[tuple[float, int, str]] = field(default_factory=list)
    next_plan: int = 0
    open_sessions: set[str] = field(default_factory=set)
    shed_seen: set[str] = field(default_factory=set)
    peak_concurrent: int = 0


class ChurnDriver:
    """Plays a session plan against a service, one interval at a time.

    Opens and closes go through the service's public API *between*
    delivery steps (never from inside :meth:`IQPathsService.at`
    callbacks, so strict-admission rejections stay catchable here).

    ``on_step`` (if given) fires after every completed delivery step
    with ``(k, t)`` — the just-finished step index and its session
    time.  The crash-safety layer hangs checkpoint writes and kill
    injection off this hook; the driver itself never blocks on it.
    """

    def __init__(
        self,
        service: IQPathsService,
        plans: list[SessionPlan],
        scenario: str = "adhoc",
        seed: int = 0,
        on_step: Optional[Callable[[int, float], None]] = None,
    ):
        names = [p.name for p in plans]
        if len(set(names)) != len(names):
            raise ConfigurationError("session plans must have unique names")
        self.service = service
        self.plans = sorted(plans, key=lambda p: (p.arrival_s, p.index))
        self.scenario = scenario
        self.seed = seed
        self.obs = service.obs
        self.on_step = on_step
        self._state = _RunState()

    @property
    def completed_steps(self) -> int:
        """Delivery steps finished so far (resume position)."""
        return self._state.k

    @property
    def sim_backend(self) -> str:
        """Effective delivery backend (``vectorized``/``scalar``) of the
        underlying service — bit-identical either way, so it never
        appears in reports or checkpoints."""
        return self.service.sim_backend

    def run(self, duration: float) -> WorkloadReport:
        """Drive the full plan for ``duration`` seconds of session time.

        Resumable: after :meth:`load_state_dict`, the loop continues
        from the first step the checkpoint had not completed and the
        returned report is bit-identical to an uninterrupted run's.
        """
        prof = self.obs.prof
        if prof.enabled:
            with prof.span("workload.run"):
                return self._run_impl(duration)
        return self._run_impl(duration)

    def _run_impl(self, duration: float) -> WorkloadReport:
        steps = self.begin(duration)
        self.advance_to(steps)
        return self.finalize(duration)

    def steps_for(self, duration: float) -> int:
        """How many delivery steps ``duration`` session seconds cover."""
        return int(round(duration / self.service.dt))

    def begin(self, duration: float) -> int:
        """Validate the run window and emit the start event; idempotent.

        Returns the total step count for ``duration``.  Callers that
        step the run in epochs (:mod:`repro.cluster`) call this once,
        then :meth:`advance_to` repeatedly, then :meth:`finalize`;
        :meth:`run` is exactly that sequence in one call.
        """
        service = self.service
        state = self._state
        steps = self.steps_for(duration)
        if state.k > steps:
            raise ConfigurationError(
                f"cannot run {duration}s ({steps} steps); "
                f"{state.k} steps already completed"
            )
        if steps - state.k > service.remaining_intervals:
            raise ConfigurationError(
                f"duration {duration}s needs {steps - state.k} more "
                f"intervals; realization has "
                f"{service.remaining_intervals} left"
            )
        if self.obs.enabled and state.k == 0:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "workload_start",
                scenario=self.scenario,
                planned_sessions=len(self.plans),
                duration=duration,
            )
        return steps

    def advance_to(self, step: int) -> None:
        """Run churn steps until ``step`` of them have completed.

        A no-op when ``step`` steps are already done (the resume /
        epoch-catch-up case); never rolls back.
        """
        state = self._state
        if step < state.k:
            raise ConfigurationError(
                f"cannot rewind to step {step}; "
                f"{state.k} steps already completed"
            )
        if step - state.k > self.service.remaining_intervals:
            raise ConfigurationError(
                f"advancing to step {step} needs {step - state.k} more "
                f"intervals; realization has "
                f"{self.service.remaining_intervals} left"
            )
        dt = self.service.dt
        prof = self.obs.prof
        if prof.enabled:
            step_span = prof.span("workload.step")
            for k in range(state.k, step):
                with step_span:
                    self._step_once(k, k * dt)
        else:
            for k in range(state.k, step):
                self._step_once(k, k * dt)

    def finalize(self, duration: float) -> WorkloadReport:
        """Close out the run and build the deterministic report."""
        service = self.service
        state = self._state
        # Run over: close whatever is still open, marked truncated.
        for name in sorted(
            state.open_sessions, key=lambda n: state.records[n].index
        ):
            state.records[name].truncated = True
            self._close(name, state.records[name], state.open_sessions)
        report = self._finalize(
            state.records, state.tenants, duration, state.peak_concurrent
        )
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "workload_end",
                scenario=self.scenario,
                offered=report.offered,
                admitted=report.admitted,
                degraded=report.degraded,
                rejected=report.rejected,
                violation_rate=report.violation_rate,
            )
        return report

    def _step_once(self, k: int, t: float) -> None:
        """One churn step: expire departures, admit arrivals, deliver."""
        service = self.service
        state = self._state
        while state.departures and state.departures[0][0] <= t:
            _, _, name = heapq.heappop(state.departures)
            self._close(name, state.records[name], state.open_sessions)
        while (
            state.next_plan < len(self.plans)
            and self.plans[state.next_plan].arrival_s <= t
        ):
            plan = self.plans[state.next_plan]
            state.next_plan += 1
            record = self._arrive(plan, state.tenants)
            state.records[plan.name] = record
            if record.outcome != "rejected":
                state.open_sessions.add(plan.name)
                heapq.heappush(
                    state.departures,
                    (
                        record.opened_at + plan.holding_s,
                        plan.index,
                        plan.name,
                    ),
                )
        state.peak_concurrent = max(
            state.peak_concurrent, len(state.open_sessions)
        )
        service.advance(service.dt)
        if service.health is not None and service.shed_streams:
            newly_shed = (
                (service.shed_streams & state.open_sessions)
                - state.shed_seen
            )
            for name in sorted(newly_shed):
                state.shed_seen.add(name)
                state.records[name].shed = True
        state.k = k + 1
        if self.on_step is not None:
            self.on_step(k, t)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the driver's run state.

        Covers only the step loop (records, tenants, departures heap,
        plan cursor); the service is snapshotted separately by
        :meth:`IQPathsService.state_dict`.  The plans themselves are a
        pure function of the scenario seed and are rebuilt on resume.
        """
        state = self._state
        return {
            "k": state.k,
            "records": [
                _record_state(r) for r in state.records.values()
            ],
            "tenants": [
                _account_state(a) for a in state.tenants.values()
            ],
            # Heap serialized in array order: the array of a valid heap
            # restores as the same valid heap.
            "departures": [
                [time, index, name]
                for time, index, name in state.departures
            ],
            "next_plan": state.next_plan,
            "open_sessions": sorted(state.open_sessions),
            "shed_seen": sorted(state.shed_seen),
            "peak_concurrent": state.peak_concurrent,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (before :meth:`run`)."""
        if self._state.k != 0:
            raise ConfigurationError(
                "load_state_dict requires a fresh driver (run not started)"
            )
        run_state = _RunState(
            k=int(state["k"]),
            records={
                r["name"]: _record_from_state(r) for r in state["records"]
            },
            tenants={
                a["tenant"]: _account_from_state(a)
                for a in state["tenants"]
            },
            # Tuples, not lists: heapq pushes tuples and mixed
            # tuple/list comparisons raise TypeError.
            departures=[
                (float(time), int(index), name)
                for time, index, name in state["departures"]
            ],
            next_plan=int(state["next_plan"]),
            open_sessions=set(state["open_sessions"]),
            shed_seen=set(state["shed_seen"]),
            peak_concurrent=int(state["peak_concurrent"]),
        )
        self._state = run_state

    # ------------------------------------------------------------------
    # lifecycle steps
    # ------------------------------------------------------------------
    def _account(self, plan: SessionPlan, tenants) -> TenantAccount:
        account = tenants.get(plan.tenant)
        if account is None:
            account = TenantAccount(
                tenant=plan.tenant, priority=plan.priority
            )
            tenants[plan.tenant] = account
        return account

    def _arrive(
        self, plan: SessionPlan, tenants: dict[str, TenantAccount]
    ) -> SessionRecord:
        service = self.service
        account = self._account(plan, tenants)
        account.offered += 1
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "session_arrival",
                stream=plan.name,
                tenant=plan.tenant,
                template=plan.template,
            )
        record = SessionRecord(
            index=plan.index,
            name=plan.name,
            tenant=plan.tenant,
            template=plan.template,
            arrival_s=plan.arrival_s,
            holding_s=plan.holding_s,
            outcome="rejected",
        )
        try:
            handle = service.open_stream(plan.spec, tenant=plan.tenant)
        except AdmissionError:
            account.rejected += 1
            if self.obs.enabled:
                self.obs.trace.emit(
                    service.now,
                    Category.WORKLOAD,
                    "session_rejected",
                    stream=plan.name,
                    tenant=plan.tenant,
                )
            return record
        record.outcome = "admitted" if handle.admitted else "degraded"
        record.opened_at = service.now
        if handle.admitted:
            account.admitted += 1
        else:
            account.degraded += 1
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                f"session_{record.outcome}",
                stream_id=handle.stream_id,
                stream=plan.name,
                tenant=plan.tenant,
            )
        return record

    def _close(
        self,
        name: str,
        record: SessionRecord,
        open_sessions: set[str],
    ) -> None:
        service = self.service
        handle = service.close_stream(name)
        open_sessions.discard(name)
        record.closed_at = service.now
        stream_report = service.report(name)
        record.mean_mbps = stream_report.mean_mbps
        record.attainment = stream_report.attainment
        spec = handle.spec
        if (
            record.outcome == "admitted"
            and spec.probability is not None
            and record.attainment is not None
            and record.attainment < spec.probability
        ):
            record.violated = True
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "session_close",
                stream_id=handle.stream_id,
                stream=name,
                tenant=record.tenant,
                outcome=record.outcome,
                truncated=record.truncated,
                mean_mbps=record.mean_mbps,
                attainment=record.attainment,
            )

    def _finalize(
        self,
        records: dict[str, SessionRecord],
        tenants: dict[str, TenantAccount],
        duration: float,
        peak_concurrent: int,
    ) -> WorkloadReport:
        dt = self.service.dt
        sessions = sorted(records.values(), key=lambda r: r.index)
        delivered_total = 0.0
        for record in sessions:
            account = tenants[record.tenant]
            if record.shed:
                account.shed += 1
            if record.violated:
                account.violations += 1
            if record.attainment is not None:
                account._attainments.append(record.attainment)
            if record.mean_mbps is not None and record.closed_at is not None:
                lifetime = (record.closed_at or 0.0) - (
                    record.opened_at or 0.0
                )
                megabits = record.mean_mbps * lifetime
                account.delivered_megabits += megabits
                delivered_total += megabits
        return WorkloadReport(
            scenario=self.scenario,
            seed=self.seed,
            dt=dt,
            duration=duration,
            offered=len(sessions),
            admitted=sum(1 for r in sessions if r.outcome == "admitted"),
            degraded=sum(1 for r in sessions if r.outcome == "degraded"),
            rejected=sum(1 for r in sessions if r.outcome == "rejected"),
            closed=sum(
                1
                for r in sessions
                if r.closed_at is not None and not r.truncated
            ),
            truncated=sum(1 for r in sessions if r.truncated),
            shed_sessions=sum(1 for r in sessions if r.shed),
            violations=sum(1 for r in sessions if r.violated),
            peak_concurrent=peak_concurrent,
            delivered_megabits=delivered_total,
            tenants=tenants,
            sessions=sessions,
        )


# ----------------------------------------------------------------------
# canonical merge (the cluster's determinism contract)
# ----------------------------------------------------------------------
#: Fields of a report payload that must agree across every partition
#: being merged (they describe the *run*, not one slice of it).
_MERGE_INVARIANTS = ("scenario", "seed", "dt", "duration")

#: Counter fields summed across partitions.
_MERGE_SUMS = (
    "offered",
    "admitted",
    "degraded",
    "rejected",
    "closed",
    "truncated",
    "shed_sessions",
    "violations",
    "peak_concurrent",
)


def merge_report_payloads(
    payloads: Mapping[str, Mapping[str, Any]],
) -> dict[str, Any]:
    """Canonically merge per-partition report payloads into one.

    ``payloads`` maps partition id (the tenant the slice simulated) to
    that slice's :meth:`WorkloadReport.to_dict` payload.  The merge is
    a pure function of the payload *bytes* — partitions are folded in
    sorted partition order, tenants re-sorted, sessions re-sorted by
    ``(tenant, index)`` — so any process that holds the same slice
    payloads produces the identical merged document regardless of how
    many shards computed them.  That is the cluster's determinism
    contract: shard count must never change output bytes.

    Notes on semantics: slices are *isolated* simulations, so summed
    fields are exact, while ``peak_concurrent`` is the sum of the
    per-slice peaks (an upper bound on any global instant — slices
    have no common instant to measure).  ``violation_rate`` is
    recomputed from the summed integer counters.
    """
    if not payloads:
        raise ConfigurationError("cannot merge zero report payloads")
    order = sorted(payloads)
    first = payloads[order[0]]
    for key in _MERGE_INVARIANTS:
        values = {
            partition: payloads[partition].get(key) for partition in order
        }
        if len(set(values.values())) != 1:
            raise ConfigurationError(
                f"cannot merge: partitions disagree on {key!r}: {values}"
            )
    merged: dict[str, Any] = {
        key: first[key] for key in _MERGE_INVARIANTS
    }
    merged["partitions"] = order
    for key in _MERGE_SUMS:
        merged[key] = sum(int(payloads[p][key]) for p in order)
    violated = (
        merged["rejected"] + merged["degraded"] + merged["violations"]
    )
    merged["violation_rate"] = _round6(
        violated / merged["offered"] if merged["offered"] else 0.0
    )
    # Folding already-rounded slice totals in sorted-partition order
    # keeps the float sum order-free in practice *and* bit-stable by
    # construction (same inputs, same order, same arithmetic).
    merged["delivered_megabits"] = _round6(
        sum(float(payloads[p]["delivered_megabits"] or 0.0) for p in order)
    )
    tenants: dict[str, Any] = {}
    sessions: list[dict[str, Any]] = []
    for partition in order:
        payload = payloads[partition]
        for tenant, account in payload.get("tenants", {}).items():
            if tenant in tenants:
                raise ConfigurationError(
                    f"cannot merge: tenant {tenant!r} appears in more "
                    f"than one partition"
                )
            tenants[tenant] = dict(account)
        sessions.extend(dict(s) for s in payload.get("sessions", ()))
    merged["tenants"] = {name: tenants[name] for name in sorted(tenants)}
    merged["sessions"] = sorted(
        sessions, key=lambda s: (s["tenant"], s["index"])
    )
    return merged


def merged_checksum(merged: Mapping[str, Any]) -> str:
    """Hex digest of a merged payload (same primitive as reports)."""
    return payload_digest(merged)
