"""Open-loop churn driver: session arrivals and departures mid-run.

:class:`ChurnDriver` takes a planned session population (from
:func:`repro.workload.catalog.plan_sessions`) and plays it against a
live :class:`~repro.middleware.service.IQPathsService` on the sim
clock: each ``dt`` step first closes sessions whose holding time
expired, then opens sessions whose arrival time came due, then advances
the delivery loop one interval.  The load is *open-loop* — arrivals do
not slow down when the overlay saturates, which is exactly what makes
the capacity envelope measurable.

Every admission outcome (admit / degrade / reject), every close, and
every shed observed along the way is recorded per session and rolled up
per tenant into a :class:`WorkloadReport`.  The report is a pure
function of ``(plans, service configuration, seed)`` — it contains no
wall-clock material — so two same-seed runs produce byte-identical
``to_dict()`` payloads and the whole run can live behind the
:mod:`repro.runner` content-addressed cache.  ``WORKLOAD``-category
trace events mirror the same lifecycle onto the observability bus.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import AdmissionError, ConfigurationError
from repro.middleware.service import IQPathsService
from repro.obs.events import Category
from repro.runner.cache import payload_digest
from repro.workload.catalog import SessionPlan


def _round6(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), 6)


@dataclass
class SessionRecord:
    """Final accounting for one planned session."""

    index: int
    name: str
    tenant: str
    template: str
    arrival_s: float
    holding_s: float
    #: "admitted" | "degraded" | "rejected"
    outcome: str
    opened_at: Optional[float] = None
    closed_at: Optional[float] = None
    #: True if the degradation policy paused the stream at any point.
    shed: bool = False
    #: True if the run ended before the session's planned departure.
    truncated: bool = False
    mean_mbps: Optional[float] = None
    attainment: Optional[float] = None
    #: Guaranteed session that was admitted but missed its probability.
    violated: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "tenant": self.tenant,
            "template": self.template,
            "arrival_s": _round6(self.arrival_s),
            "holding_s": _round6(self.holding_s),
            "outcome": self.outcome,
            "opened_at": _round6(self.opened_at),
            "closed_at": _round6(self.closed_at),
            "shed": self.shed,
            "truncated": self.truncated,
            "mean_mbps": _round6(self.mean_mbps),
            "attainment": _round6(self.attainment),
            "violated": self.violated,
        }


@dataclass
class TenantAccount:
    """Per-tenant rollup of session outcomes and delivered goodput."""

    tenant: str
    priority: int
    offered: int = 0
    admitted: int = 0
    degraded: int = 0
    rejected: int = 0
    shed: int = 0
    violations: int = 0
    delivered_megabits: float = 0.0
    _attainments: list[float] = field(default_factory=list, repr=False)

    @property
    def mean_attainment(self) -> Optional[float]:
        if not self._attainments:
            return None
        return sum(self._attainments) / len(self._attainments)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "priority": self.priority,
            "offered": self.offered,
            "admitted": self.admitted,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "shed": self.shed,
            "violations": self.violations,
            "delivered_megabits": _round6(self.delivered_megabits),
            "mean_attainment": _round6(self.mean_attainment),
        }


@dataclass
class WorkloadReport:
    """Everything one churn run produced, deterministically serializable."""

    scenario: str
    seed: int
    dt: float
    duration: float
    offered: int
    admitted: int
    degraded: int
    rejected: int
    closed: int
    truncated: int
    shed_sessions: int
    violations: int
    peak_concurrent: int
    delivered_megabits: float
    tenants: dict[str, TenantAccount]
    sessions: list[SessionRecord]

    @property
    def violation_rate(self) -> float:
        """Fraction of offered sessions the overlay failed in any way.

        A session counts as a violation if it was rejected, opened
        degraded, or admitted with a guarantee it then missed — the
        quantity the capacity envelope holds under its ceiling.
        """
        if self.offered == 0:
            return 0.0
        return (self.rejected + self.degraded + self.violations) / (
            self.offered
        )

    def to_dict(self) -> dict[str, Any]:
        """Canonical payload: pure, sorted, wall-clock-free."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "dt": self.dt,
            "duration": self.duration,
            "offered": self.offered,
            "admitted": self.admitted,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "closed": self.closed,
            "truncated": self.truncated,
            "shed_sessions": self.shed_sessions,
            "violations": self.violations,
            "violation_rate": _round6(self.violation_rate),
            "peak_concurrent": self.peak_concurrent,
            "delivered_megabits": _round6(self.delivered_megabits),
            "tenants": {
                name: account.to_dict()
                for name, account in sorted(self.tenants.items())
            },
            "sessions": [s.to_dict() for s in self.sessions],
        }

    def checksum(self) -> str:
        """Hex digest of the canonical payload (byte-identity probe)."""
        return payload_digest(self.to_dict())

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"workload {self.scenario!r} seed={self.seed}: "
            f"{self.offered} sessions over {self.duration:.0f}s",
            f"  admitted={self.admitted} degraded={self.degraded} "
            f"rejected={self.rejected} shed={self.shed_sessions} "
            f"violations={self.violations}",
            f"  violation_rate={self.violation_rate:.4f} "
            f"peak_concurrent={self.peak_concurrent} "
            f"delivered={self.delivered_megabits:.1f} Mb",
        ]
        for name, account in sorted(
            self.tenants.items(),
            key=lambda kv: (kv[1].priority, kv[0]),
        ):
            mean_att = account.mean_attainment
            att = f"{mean_att:.3f}" if mean_att is not None else "n/a"
            lines.append(
                f"  [{name}] offered={account.offered} "
                f"admitted={account.admitted} "
                f"degraded={account.degraded} "
                f"rejected={account.rejected} shed={account.shed} "
                f"violations={account.violations} attainment={att}"
            )
        return "\n".join(lines)


class ChurnDriver:
    """Plays a session plan against a service, one interval at a time.

    Opens and closes go through the service's public API *between*
    delivery steps (never from inside :meth:`IQPathsService.at`
    callbacks, so strict-admission rejections stay catchable here).
    """

    def __init__(
        self,
        service: IQPathsService,
        plans: list[SessionPlan],
        scenario: str = "adhoc",
        seed: int = 0,
    ):
        names = [p.name for p in plans]
        if len(set(names)) != len(names):
            raise ConfigurationError("session plans must have unique names")
        self.service = service
        self.plans = sorted(plans, key=lambda p: (p.arrival_s, p.index))
        self.scenario = scenario
        self.seed = seed
        self.obs = service.obs

    def run(self, duration: float) -> WorkloadReport:
        """Drive the full plan for ``duration`` seconds of session time."""
        service = self.service
        dt = service.dt
        steps = int(round(duration / dt))
        if steps > service.remaining_intervals:
            raise ConfigurationError(
                f"duration {duration}s needs {steps} intervals; "
                f"realization has {service.remaining_intervals} left"
            )
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "workload_start",
                scenario=self.scenario,
                planned_sessions=len(self.plans),
                duration=duration,
            )
        records: dict[str, SessionRecord] = {}
        tenants: dict[str, TenantAccount] = {}
        # Departure heap: (close_time, plan_index, session_name).  The
        # index tie-break keeps same-instant closes in arrival order.
        departures: list[tuple[float, int, str]] = []
        next_plan = 0
        open_sessions: set[str] = set()
        shed_seen: set[str] = set()
        peak_concurrent = 0
        for k in range(steps):
            t = k * dt
            while departures and departures[0][0] <= t:
                _, _, name = heapq.heappop(departures)
                self._close(name, records[name], open_sessions)
            while (
                next_plan < len(self.plans)
                and self.plans[next_plan].arrival_s <= t
            ):
                plan = self.plans[next_plan]
                next_plan += 1
                record = self._arrive(plan, tenants)
                records[plan.name] = record
                if record.outcome != "rejected":
                    open_sessions.add(plan.name)
                    heapq.heappush(
                        departures,
                        (
                            record.opened_at + plan.holding_s,
                            plan.index,
                            plan.name,
                        ),
                    )
            peak_concurrent = max(peak_concurrent, len(open_sessions))
            service.advance(dt)
            if service.health is not None and service.shed_streams:
                newly_shed = (
                    (service.shed_streams & open_sessions) - shed_seen
                )
                for name in sorted(newly_shed):
                    shed_seen.add(name)
                    records[name].shed = True
        # Run over: close whatever is still open, marked truncated.
        for name in sorted(
            open_sessions, key=lambda n: records[n].index
        ):
            records[name].truncated = True
            self._close(name, records[name], open_sessions)
        report = self._finalize(
            records, tenants, duration, peak_concurrent
        )
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "workload_end",
                scenario=self.scenario,
                offered=report.offered,
                admitted=report.admitted,
                degraded=report.degraded,
                rejected=report.rejected,
                violation_rate=report.violation_rate,
            )
        return report

    # ------------------------------------------------------------------
    # lifecycle steps
    # ------------------------------------------------------------------
    def _account(self, plan: SessionPlan, tenants) -> TenantAccount:
        account = tenants.get(plan.tenant)
        if account is None:
            account = TenantAccount(
                tenant=plan.tenant, priority=plan.priority
            )
            tenants[plan.tenant] = account
        return account

    def _arrive(
        self, plan: SessionPlan, tenants: dict[str, TenantAccount]
    ) -> SessionRecord:
        service = self.service
        account = self._account(plan, tenants)
        account.offered += 1
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "session_arrival",
                stream=plan.name,
                tenant=plan.tenant,
                template=plan.template,
            )
        record = SessionRecord(
            index=plan.index,
            name=plan.name,
            tenant=plan.tenant,
            template=plan.template,
            arrival_s=plan.arrival_s,
            holding_s=plan.holding_s,
            outcome="rejected",
        )
        try:
            handle = service.open_stream(plan.spec, tenant=plan.tenant)
        except AdmissionError:
            account.rejected += 1
            if self.obs.enabled:
                self.obs.trace.emit(
                    service.now,
                    Category.WORKLOAD,
                    "session_rejected",
                    stream=plan.name,
                    tenant=plan.tenant,
                )
            return record
        record.outcome = "admitted" if handle.admitted else "degraded"
        record.opened_at = service.now
        if handle.admitted:
            account.admitted += 1
        else:
            account.degraded += 1
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                f"session_{record.outcome}",
                stream_id=handle.stream_id,
                stream=plan.name,
                tenant=plan.tenant,
            )
        return record

    def _close(
        self,
        name: str,
        record: SessionRecord,
        open_sessions: set[str],
    ) -> None:
        service = self.service
        handle = service.close_stream(name)
        open_sessions.discard(name)
        record.closed_at = service.now
        stream_report = service.report(name)
        record.mean_mbps = stream_report.mean_mbps
        record.attainment = stream_report.attainment
        spec = handle.spec
        if (
            record.outcome == "admitted"
            and spec.probability is not None
            and record.attainment is not None
            and record.attainment < spec.probability
        ):
            record.violated = True
        if self.obs.enabled:
            self.obs.trace.emit(
                service.now,
                Category.WORKLOAD,
                "session_close",
                stream_id=handle.stream_id,
                stream=name,
                tenant=record.tenant,
                outcome=record.outcome,
                truncated=record.truncated,
                mean_mbps=record.mean_mbps,
                attainment=record.attainment,
            )

    def _finalize(
        self,
        records: dict[str, SessionRecord],
        tenants: dict[str, TenantAccount],
        duration: float,
        peak_concurrent: int,
    ) -> WorkloadReport:
        dt = self.service.dt
        sessions = sorted(records.values(), key=lambda r: r.index)
        delivered_total = 0.0
        for record in sessions:
            account = tenants[record.tenant]
            if record.shed:
                account.shed += 1
            if record.violated:
                account.violations += 1
            if record.attainment is not None:
                account._attainments.append(record.attainment)
            if record.mean_mbps is not None and record.closed_at is not None:
                lifetime = (record.closed_at or 0.0) - (
                    record.opened_at or 0.0
                )
                megabits = record.mean_mbps * lifetime
                account.delivered_megabits += megabits
                delivered_total += megabits
        return WorkloadReport(
            scenario=self.scenario,
            seed=self.seed,
            dt=dt,
            duration=duration,
            offered=len(sessions),
            admitted=sum(1 for r in sessions if r.outcome == "admitted"),
            degraded=sum(1 for r in sessions if r.outcome == "degraded"),
            rejected=sum(1 for r in sessions if r.outcome == "rejected"),
            closed=sum(
                1
                for r in sessions
                if r.closed_at is not None and not r.truncated
            ),
            truncated=sum(1 for r in sessions if r.truncated),
            shed_sessions=sum(1 for r in sessions if r.shed),
            violations=sum(1 for r in sessions if r.violated),
            peak_concurrent=peak_concurrent,
            delivered_megabits=delivered_total,
            tenants=tenants,
            sessions=sessions,
        )
