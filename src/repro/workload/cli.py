"""Command-line front door for the workload engine.

Runs one named scenario (or its capacity-envelope search) and prints
the deterministic report plus wall-clock throughput figures::

    python -m repro.workload --scenario baseline --seed 0
    python -m repro.workload --scenario flash-crowd --rate-scale 1.5 \\
        --trace-out trace.jsonl --metrics-out metrics.json
    python -m repro.workload --scenario baseline --envelope \\
        --ceiling 0.05 --iterations 6

``tools/run_scale.py`` is the same entry point runnable straight from
a checkout.  Wall-clock rates (sessions/sec, steps/sec) are printed but
deliberately kept *out* of the report payload and its checksum, so the
checksum stays a pure function of ``(scenario, seed)``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from repro.obs.context import Observability
from repro.workload.envelope import estimate_envelope
from repro.workload.scenarios import (
    SCENARIOS,
    make_scenario,
    run_scenario,
)


#: Snapshot cadence when --checkpoint-dir is given without an explicit
#: --checkpoint-every.
DEFAULT_CHECKPOINT_EVERY_S = 5.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description=(
            "Run a multi-tenant workload scenario against the IQ-Paths "
            "middleware, or estimate its capacity envelope."
        ),
    )
    parser.add_argument(
        "--scenario", default="baseline", choices=sorted(SCENARIOS),
        help="named scenario to run (default: baseline)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="top-level seed; every stochastic ingredient derives from it",
    )
    parser.add_argument(
        "--topology", default=None,
        help=(
            "run on a generated topology: a preset name such as "
            "fat_tree_k4 / leaf_spine_4x8 / repetita_wan_s0, optionally "
            "with a ':<traffic>' suffix (nlanr, dc-baseline, dc-incast, "
            "dc-hotrack); default: the Figure-8 Emulab testbed"
        ),
    )
    parser.add_argument(
        "--rate-scale", type=float, default=1.0,
        help="multiply the scenario's arrival rates (default: 1.0)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="override the scenario's run duration (seconds)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None,
        help="truncate the session plan after this many arrivals",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="write the canonical report payload (JSON) here",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="export the run's trace (JSONL) here",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="export the run's metrics registry here",
    )
    parser.add_argument(
        "--metrics-format", choices=("auto", "json", "prometheus"),
        default="auto",
        help=(
            "metrics export format; auto picks prometheus exposition "
            "text for a .prom extension, JSON otherwise (default: auto)"
        ),
    )
    parser.add_argument(
        "--profile-out", type=Path, default=None,
        help=(
            "enable the span profiler: print the self-time table and "
            "span-structure digest, write the profile report (JSON) here"
        ),
    )
    parser.add_argument(
        "--envelope", action="store_true",
        help="binary-search the capacity envelope instead of one run",
    )
    parser.add_argument(
        "--ceiling", type=float, default=0.05,
        help="envelope violation-rate ceiling (default: 0.05)",
    )
    parser.add_argument(
        "--iterations", type=int, default=6,
        help="envelope bisection iterations (default: 6)",
    )
    parser.add_argument(
        "--probe-duration", type=float, default=30.0,
        help="duration of each envelope probe run (default: 30s)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help=(
            "enable crash-safe execution: snapshot run state here, "
            "auto-resume from the last verified snapshot, and exit 75 "
            "after flushing a final snapshot on SIGINT/SIGTERM"
        ),
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=None,
        help=(
            "virtual seconds between snapshots (default: "
            f"{DEFAULT_CHECKPOINT_EVERY_S}; requires --checkpoint-dir)"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "strict resume: fail loudly if the checkpoint is missing "
            "context, corrupt, or written by different code (default "
            "is lenient — unusable checkpoints restart fresh)"
        ),
    )
    parser.add_argument(
        "--kill-at", type=float, action="append", default=None,
        metavar="T",
        help=(
            "kill-injection: SIGKILL this process at virtual time T "
            "(repeatable; once per point across restarts; requires "
            "--checkpoint-dir)"
        ),
    )
    return parser


def validate_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject flag combinations that would otherwise silently no-op.

    Checkpoint-related flags only mean something relative to a
    checkpoint directory; accepting them without one used to leave the
    user believing resume (or kill-injection) was armed when nothing
    was.  Fail fast, through ``parser.error`` so the message carries
    the usual usage text and exit code 2.
    """
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    if args.kill_at and args.checkpoint_dir is None:
        parser.error("--kill-at requires --checkpoint-dir")
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        parser.error("--checkpoint-every requires --checkpoint-dir")
    if args.kill_at and args.checkpoint_every is None:
        parser.error(
            "--kill-at requires an explicit --checkpoint-every "
            "(a kill schedule is only meaningful against a known "
            "snapshot cadence)"
        )


def _run_envelope(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    envelope = estimate_envelope(
        args.scenario,
        seed=args.seed,
        ceiling=args.ceiling,
        iterations=args.iterations,
        probe_duration=args.probe_duration,
        max_sessions=args.max_sessions,
        topology=args.topology,
    )
    wall = time.perf_counter() - t0
    print(envelope.render())
    print(f"checksum {envelope.checksum()}")
    print(f"wall {wall:.2f}s over {len(envelope.probes)} probes")
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(envelope.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    return 0


def _run_checkpointed(args: argparse.Namespace, obs):
    """Crash-safe scenario run: snapshots, resume, graceful interrupt."""
    from repro.checkpoint import (
        CheckpointConfig,
        CheckpointStore,
        GRACEFUL_EXIT_CODE,
        InterruptFlag,
        RunInterrupted,
        run_scale_scenario_checkpointed,
    )

    scenario = make_scenario(
        args.scenario,
        rate_scale=args.rate_scale,
        duration=args.duration,
        topology=args.topology,
    )
    store = CheckpointStore(args.checkpoint_dir)
    on_step = None
    if args.kill_at:
        from repro.harness.crash import KillSwitch

        switch = KillSwitch(args.checkpoint_dir, args.kill_at)
        on_step = lambda k, t: switch.maybe_kill(t)  # noqa: E731
    flag = InterruptFlag().install()
    try:
        report = run_scale_scenario_checkpointed(
            scenario,
            store,
            seed=args.seed,
            max_sessions=args.max_sessions,
            obs=obs,
            config=CheckpointConfig(
                every_s=(
                    args.checkpoint_every
                    if args.checkpoint_every is not None
                    else DEFAULT_CHECKPOINT_EVERY_S
                )
            ),
            strict_resume=args.resume,
            interrupt=flag,
            on_step=on_step,
        )
    except RunInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        print(
            "rerun the same command to resume from the checkpoint",
            file=sys.stderr,
        )
        return None, GRACEFUL_EXIT_CODE
    finally:
        flag.restore()
    return report, 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_args(parser, args)
    if args.envelope:
        return _run_envelope(args)
    want_obs = (
        args.trace_out is not None
        or args.metrics_out is not None
        or args.profile_out is not None
    )
    obs = (
        Observability(profile=args.profile_out is not None)
        if want_obs
        else None
    )
    t0 = time.perf_counter()
    if args.checkpoint_dir is not None:
        report, code = _run_checkpointed(args, obs)
        if report is None:
            return code
    else:
        report = run_scenario(
            args.scenario,
            seed=args.seed,
            rate_scale=args.rate_scale,
            duration=args.duration,
            max_sessions=args.max_sessions,
            obs=obs,
            topology=args.topology,
        )
    wall = time.perf_counter() - t0
    print(report.render())
    print(f"checksum {report.checksum()}")
    steps = int(round(report.duration / report.dt))
    print(
        f"wall {wall:.2f}s  "
        f"sessions/sec {report.offered / wall:.1f}  "
        f"steps/sec {steps / wall:.1f}"
    )
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    if obs is not None and args.trace_out is not None:
        count = obs.trace.export_jsonl(args.trace_out)
        print(f"wrote {args.trace_out} ({count} events)")
    if obs is not None and args.metrics_out is not None:
        from repro.obs.prom import export_metrics

        fmt = export_metrics(
            obs.metrics, args.metrics_out, fmt=args.metrics_format
        )
        print(f"wrote {args.metrics_out} ({fmt})")
    if obs is not None and args.profile_out is not None:
        profile = obs.prof.report()
        print()
        print(profile.render())
        profile.export_json(args.profile_out)
        print(f"wrote {args.profile_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
