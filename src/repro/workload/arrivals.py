"""Seeded, deterministic session arrival models.

Each model turns ``(duration, seed)`` into a sorted array of arrival
times — nothing else.  Determinism is the contract the whole scale
suite rests on: the same seed yields a byte-identical schedule (same
floats, same order), regardless of platform or call pattern, because
every draw comes from a :class:`repro.sim.random.RandomStreams` child
stream named after the model kind.

Three families cover the dynamics the capacity work needs:

* :class:`PoissonArrivals` — memoryless open-loop load (the baseline);
* :class:`MMPPArrivals` — a cyclic Markov-modulated Poisson process
  (piecewise-constant rates with exponential dwell times), the classic
  diurnal day/night model;
* :class:`FlashCrowdArrivals` — a trapezoid rate profile (ramp, hold,
  decay) over a base rate, realized by thinning: the news-event burst.

Models serialize to plain JSON params (``to_params`` /
:func:`arrival_model_from_params`) so :class:`repro.runner.RunSpec`
payloads can carry them, and every model supports :meth:`~ArrivalModel.
scaled` — multiply all rates by a factor — which is the knob the
capacity-envelope estimator binary-searches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, ClassVar

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams


def schedule_checksum(times: np.ndarray) -> str:
    """Hex SHA-256 over the schedule's raw float64 bytes (bit-identity)."""
    arr = np.ascontiguousarray(np.asarray(times, dtype=np.float64))
    return hashlib.sha256(arr.tobytes()).hexdigest()


def _gaps_until(
    rng: np.random.Generator, rate: float, start: float, end: float
) -> list[float]:
    """Exponential-gap arrivals in ``[start, end)`` at constant ``rate``.

    Draws one gap at a time so the consumed stream depends only on the
    realized arrivals, never on an internal chunk size.
    """
    times: list[float] = []
    t = start
    scale = 1.0 / rate
    while True:
        t += rng.exponential(scale)
        if t >= end:
            return times
        times.append(t)


@dataclass(frozen=True)
class ArrivalModel:
    """Base class: a deterministic ``(duration, seed) -> times`` map."""

    kind: ClassVar[str] = "abstract"

    def arrival_times(self, duration: float, seed: int) -> np.ndarray:
        """Sorted, non-negative arrival times in ``[0, duration)``."""
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration}"
            )
        rng = RandomStreams(seed).fresh(f"workload/arrivals/{self.kind}")
        times = self._sample(duration, rng)
        return np.asarray(times, dtype=np.float64)

    def _sample(
        self, duration: float, rng: np.random.Generator
    ) -> list[float]:
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Configured long-run arrival rate (sessions/second)."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "ArrivalModel":
        """The same arrival *shape* with every rate scaled by ``factor``."""
        raise NotImplementedError

    def to_params(self) -> dict[str, Any]:
        """JSON-serializable parameters, including the ``kind`` tag."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalModel):
    """Homogeneous Poisson arrivals at ``rate`` sessions/second."""

    rate: float = 10.0

    kind: ClassVar[str] = "poisson"

    def __post_init__(self):
        if self.rate <= 0:
            raise ConfigurationError(
                f"rate must be positive, got {self.rate}"
            )

    def _sample(
        self, duration: float, rng: np.random.Generator
    ) -> list[float]:
        return _gaps_until(rng, self.rate, 0.0, duration)

    def mean_rate(self) -> float:
        return self.rate

    def scaled(self, factor: float) -> "PoissonArrivals":
        return replace(self, rate=self.rate * factor)

    def to_params(self) -> dict[str, Any]:
        return {"kind": self.kind, "rate": self.rate}


@dataclass(frozen=True)
class MMPPArrivals(ArrivalModel):
    """Cyclic Markov-modulated Poisson process (diurnal load).

    The modulating chain visits its states in order (wrapping around),
    dwelling an exponential time with the state's mean; within a dwell
    the process is Poisson at the state's rate.  Because a Poisson
    process is memoryless, sampling each dwell segment independently is
    exact.  Two states with day/night rates and equal dwells give the
    classic diurnal model; see :meth:`diurnal`.
    """

    rates: tuple[float, ...] = (5.0, 20.0)
    mean_dwell_s: tuple[float, ...] = (15.0, 15.0)

    kind: ClassVar[str] = "mmpp"

    def __post_init__(self):
        rates = tuple(float(r) for r in self.rates)
        dwells = tuple(float(d) for d in self.mean_dwell_s)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "mean_dwell_s", dwells)
        if len(rates) < 2:
            raise ConfigurationError(
                f"MMPP needs >= 2 states, got {len(rates)}"
            )
        if len(rates) != len(dwells):
            raise ConfigurationError(
                f"rates ({len(rates)}) and mean_dwell_s ({len(dwells)}) "
                "must have equal length"
            )
        if any(r < 0 for r in rates) or all(r == 0 for r in rates):
            raise ConfigurationError(
                f"rates must be >= 0 with at least one positive: {rates}"
            )
        if any(d <= 0 for d in dwells):
            raise ConfigurationError(
                f"dwell times must be positive: {dwells}"
            )

    @classmethod
    def diurnal(
        cls, low: float, high: float, period_s: float = 30.0
    ) -> "MMPPArrivals":
        """Two-state day/night model with equal expected dwells."""
        return cls(
            rates=(low, high), mean_dwell_s=(period_s / 2, period_s / 2)
        )

    def _sample(
        self, duration: float, rng: np.random.Generator
    ) -> list[float]:
        times: list[float] = []
        t = 0.0
        state = 0
        n = len(self.rates)
        while t < duration:
            dwell = rng.exponential(self.mean_dwell_s[state])
            end = min(t + dwell, duration)
            rate = self.rates[state]
            if rate > 0:
                times.extend(_gaps_until(rng, rate, t, end))
            t += dwell
            state = (state + 1) % n
        return times

    def mean_rate(self) -> float:
        weights = np.asarray(self.mean_dwell_s)
        rates = np.asarray(self.rates)
        return float((rates * weights).sum() / weights.sum())

    def scaled(self, factor: float) -> "MMPPArrivals":
        return replace(
            self, rates=tuple(r * factor for r in self.rates)
        )

    def to_params(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "rates": list(self.rates),
            "mean_dwell_s": list(self.mean_dwell_s),
        }


@dataclass(frozen=True)
class FlashCrowdArrivals(ArrivalModel):
    """A flash crowd: base Poisson load with one trapezoid burst.

    The instantaneous rate ramps linearly from ``base_rate`` to
    ``peak_rate`` over ``ramp_s`` starting at ``t_start``, holds the
    peak for ``hold_s``, then decays linearly back over ``decay_s``.
    Realized by thinning a homogeneous ``peak_rate`` candidate process,
    so the draw sequence (hence determinism) is independent of where
    the burst sits.
    """

    base_rate: float = 5.0
    peak_rate: float = 30.0
    t_start: float = 20.0
    ramp_s: float = 5.0
    hold_s: float = 10.0
    decay_s: float = 10.0

    kind: ClassVar[str] = "flash-crowd"

    def __post_init__(self):
        if self.base_rate <= 0:
            raise ConfigurationError(
                f"base_rate must be positive, got {self.base_rate}"
            )
        if self.peak_rate < self.base_rate:
            raise ConfigurationError(
                f"peak_rate {self.peak_rate} must be >= base_rate "
                f"{self.base_rate}"
            )
        if self.t_start < 0:
            raise ConfigurationError(
                f"t_start must be >= 0, got {self.t_start}"
            )
        for label in ("ramp_s", "hold_s", "decay_s"):
            if getattr(self, label) < 0:
                raise ConfigurationError(
                    f"{label} must be >= 0, got {getattr(self, label)}"
                )

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate of the trapezoid profile."""
        u = t - self.t_start
        if u < 0 or u >= self.ramp_s + self.hold_s + self.decay_s:
            return self.base_rate
        if u < self.ramp_s:
            frac = u / self.ramp_s if self.ramp_s > 0 else 1.0
            return self.base_rate + frac * (self.peak_rate - self.base_rate)
        if u < self.ramp_s + self.hold_s:
            return self.peak_rate
        frac = (u - self.ramp_s - self.hold_s) / self.decay_s
        return self.peak_rate - frac * (self.peak_rate - self.base_rate)

    def _sample(
        self, duration: float, rng: np.random.Generator
    ) -> list[float]:
        times: list[float] = []
        cap = self.peak_rate
        t = 0.0
        scale = 1.0 / cap
        while True:
            t += rng.exponential(scale)
            if t >= duration:
                return times
            if rng.random() * cap < self.rate_at(t):
                times.append(t)

    def mean_rate(self) -> float:
        """Long-run rate ignoring the burst (the sustained base load)."""
        return self.base_rate

    def burst_sessions_expected(self) -> float:
        """Expected *extra* sessions the burst injects over base load."""
        excess = self.peak_rate - self.base_rate
        return excess * (self.hold_s + (self.ramp_s + self.decay_s) / 2)

    def scaled(self, factor: float) -> "FlashCrowdArrivals":
        return replace(
            self,
            base_rate=self.base_rate * factor,
            peak_rate=self.peak_rate * factor,
        )

    def to_params(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "base_rate": self.base_rate,
            "peak_rate": self.peak_rate,
            "t_start": self.t_start,
            "ramp_s": self.ramp_s,
            "hold_s": self.hold_s,
            "decay_s": self.decay_s,
        }


#: Registry: params ``kind`` tag -> model class.
ARRIVAL_MODELS: dict[str, type[ArrivalModel]] = {
    PoissonArrivals.kind: PoissonArrivals,
    MMPPArrivals.kind: MMPPArrivals,
    FlashCrowdArrivals.kind: FlashCrowdArrivals,
}


def arrival_model_from_params(params: dict[str, Any]) -> ArrivalModel:
    """Inverse of ``to_params``: rebuild a model from its JSON form."""
    kind = params.get("kind")
    cls = ARRIVAL_MODELS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown arrival model kind {kind!r}; "
            f"known: {sorted(ARRIVAL_MODELS)}"
        )
    kwargs = {k: v for k, v in params.items() if k != "kind"}
    if "rates" in kwargs:
        kwargs["rates"] = tuple(kwargs["rates"])
    if "mean_dwell_s" in kwargs:
        kwargs["mean_dwell_s"] = tuple(kwargs["mean_dwell_s"])
    return cls(**kwargs)
