"""Named, reproducible scale scenarios behind one entry point.

A :class:`ScaleScenario` bundles an arrival model, a session catalog, a
run duration, and the middleware's admission posture; the registry in
:data:`SCENARIOS` names the four standard ones:

``baseline``
    Steady Poisson churn sized to offer well over a thousand sessions —
    the determinism and throughput yardstick.
``diurnal``
    MMPP day/night modulation: the overlay sees alternating calm and
    rush periods.
``flash-crowd``
    A trapezoid burst to several times the base arrival rate — the
    admission controller's stress test.
``flash-crowd-chaos``
    The flash crowd landing *during* a random fault campaign, with
    lenient admission so degradation (not rejection) absorbs the hit —
    the composition test between the workload engine and the chaos
    harness.

:func:`run_scenario` is the pure front door: build the Figure-8
testbed, realize it from a seed-derived sub-seed, play the plan through
a :class:`~repro.workload.driver.ChurnDriver`, and return the
:class:`~repro.workload.driver.WorkloadReport`.  Same arguments, same
report — byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.middleware.service import IQPathsService
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import FaultCampaign
from repro.obs.context import NULL_OBS, Observability
from repro.runner.spec import mix_seed
from repro.topo.generators import build_testbed
from repro.topo.spec import parse_topology
from repro.workload.arrivals import (
    ArrivalModel,
    FlashCrowdArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.catalog import (
    SessionCatalog,
    default_catalog,
    plan_sessions,
    slice_plans_by_tenant,
)
from repro.workload.driver import ChurnDriver, WorkloadReport

#: Probe intervals before session time starts (shorter than the figure
#: experiments' 200: churn runs need a warm monitor, not a perfect one).
WARMUP_INTERVALS = 100

#: Slack appended to the realization beyond warmup + scenario duration.
REALIZATION_SLACK_S = 5.0

_DT = 0.1

#: Public alias of the delivery-step interval: the cluster layer sizes
#: its virtual-time epochs in steps without building a driver first.
STEP_DT = _DT


@dataclass(frozen=True)
class ScaleScenario:
    """One named workload scenario: arrivals, mix, and posture."""

    name: str
    model: ArrivalModel
    duration: float
    strict_admission: bool = True
    with_chaos: bool = False
    #: Generated-topology reference (``preset`` or ``preset:traffic``,
    #: see :func:`repro.topo.spec.parse_topology`).  ``None`` runs on
    #: the Figure-8 testbed exactly as before — byte for byte.
    topology: Optional[str] = None

    def __post_init__(self):
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.topology is not None:
            parse_topology(self.topology)  # fail fast on bad references

    def scaled(self, factor: float) -> "ScaleScenario":
        """The same scenario with every arrival rate scaled."""
        return replace(self, model=self.model.scaled(factor))

    def expected_sessions(self) -> float:
        """Rough expected offered-session count (sizing aid)."""
        expected = self.model.mean_rate() * self.duration
        if isinstance(self.model, FlashCrowdArrivals):
            expected += self.model.burst_sessions_expected()
        return expected


def _baseline() -> ScaleScenario:
    return ScaleScenario(
        name="baseline",
        model=PoissonArrivals(rate=16.0),
        duration=75.0,
    )


def _diurnal() -> ScaleScenario:
    return ScaleScenario(
        name="diurnal",
        model=MMPPArrivals.diurnal(6.0, 24.0, period_s=30.0),
        duration=60.0,
    )


def _flash_crowd() -> ScaleScenario:
    return ScaleScenario(
        name="flash-crowd",
        model=FlashCrowdArrivals(
            base_rate=6.0,
            peak_rate=40.0,
            t_start=20.0,
            ramp_s=5.0,
            hold_s=10.0,
            decay_s=10.0,
        ),
        duration=60.0,
    )


def _flash_crowd_chaos() -> ScaleScenario:
    # Lighter than plain flash-crowd: with lenient admission every
    # session opens, and the degradation re-planning that chaos triggers
    # is superlinear in the standing population — this sizing keeps the
    # composition run fast while still exercising shed + downgrade.
    return ScaleScenario(
        name="flash-crowd-chaos",
        model=FlashCrowdArrivals(
            base_rate=2.5,
            peak_rate=12.0,
            t_start=15.0,
            ramp_s=5.0,
            hold_s=8.0,
            decay_s=8.0,
        ),
        duration=50.0,
        strict_admission=False,
        with_chaos=True,
    )


#: Scenario registry: name -> zero-argument factory.
SCENARIOS: dict[str, Callable[[], ScaleScenario]] = {
    "baseline": _baseline,
    "diurnal": _diurnal,
    "flash-crowd": _flash_crowd,
    "flash-crowd-chaos": _flash_crowd_chaos,
}


def make_scenario(
    name: str,
    rate_scale: float = 1.0,
    duration: Optional[float] = None,
    topology: Optional[str] = None,
) -> ScaleScenario:
    """Look up a named scenario, optionally rescaled or re-timed.

    ``topology`` moves the scenario onto a generated topology
    (``preset`` or ``preset:traffic``); ``None`` keeps the Figure-8
    testbed and its exact historical bytes.
    """
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    if rate_scale <= 0:
        raise ConfigurationError(
            f"rate_scale must be positive, got {rate_scale}"
        )
    scenario = factory()
    if rate_scale != 1.0:
        scenario = scenario.scaled(rate_scale)
    if duration is not None:
        scenario = replace(scenario, duration=float(duration))
    if topology is not None:
        scenario = replace(scenario, topology=str(topology))
    return scenario


def build_service(
    scenario: ScaleScenario,
    seed: int,
    obs: Optional[Observability] = None,
    partition: Optional[str] = None,
    sim_backend: Optional[str] = None,
) -> IQPathsService:
    """The Figure-8 middleware stack one scenario run lives on.

    Every stochastic ingredient derives from ``seed`` via
    :func:`~repro.runner.spec.mix_seed`, namespaced by the scenario
    name, so scenarios never share draws and runs are reproducible from
    the single top-level seed.

    With ``partition`` set the seeds are additionally namespaced by the
    partition id (``cluster-realization`` / ``cluster-chaos``): each
    partition simulates its *own* independent testbed realization and
    fault campaign, a pure function of ``(seed, scenario, partition)``
    — never of which shard happens to run it.

    ``sim_backend`` selects the delivery backend
    (``vectorized``/``scalar``; ``None`` reads ``REPRO_SIM_BACKEND``).
    The two are bit-identical, so it never changes report bytes — only
    how fast they are produced.
    """
    if scenario.topology is None:
        testbed = make_figure8_testbed()
    else:
        testbed = build_testbed(parse_topology(scenario.topology))
    total = (
        WARMUP_INTERVALS * _DT + scenario.duration + REALIZATION_SLACK_S
    )
    # The topology reference joins the seed namespace only when set, so
    # Figure-8 runs keep their exact historical bytes.
    topo_tag = (
        () if scenario.topology is None else (scenario.topology,)
    )
    if partition is None:
        realization_seed = mix_seed(
            seed, "workload-realization", scenario.name, *topo_tag
        )
        chaos_seed = mix_seed(
            seed, "workload-chaos", scenario.name, *topo_tag
        )
    else:
        realization_seed = mix_seed(
            seed, "cluster-realization", scenario.name, partition, *topo_tag
        )
        chaos_seed = mix_seed(
            seed, "cluster-chaos", scenario.name, partition, *topo_tag
        )
    realization = testbed.realize(
        seed=realization_seed,
        duration=total,
        dt=_DT,
    )
    campaign = None
    if scenario.with_chaos:
        campaign = FaultCampaign.random(
            list(realization.path_names()),
            duration=scenario.duration,
            seed=chaos_seed,
        )
    return IQPathsService(
        realization,
        warmup_intervals=WARMUP_INTERVALS,
        strict_admission=scenario.strict_admission,
        campaign=campaign,
        obs=obs,
        partition=partition,
        sim_backend=sim_backend,
    )


def run_scenario(
    name: str,
    seed: int = 0,
    rate_scale: float = 1.0,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    obs: Optional[Observability] = None,
    sim_backend: Optional[str] = None,
    topology: Optional[str] = None,
) -> WorkloadReport:
    """Run one named scenario end to end; the package's front door."""
    scenario = make_scenario(
        name, rate_scale=rate_scale, duration=duration, topology=topology
    )
    return run_scale_scenario(
        scenario,
        seed=seed,
        max_sessions=max_sessions,
        catalog=catalog,
        obs=obs,
        sim_backend=sim_backend,
    )


def make_scale_run(
    scenario: ScaleScenario,
    seed: int = 0,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    obs: Optional[Observability] = None,
    on_step: Optional[Callable[[int, float], None]] = None,
    sim_backend: Optional[str] = None,
) -> ChurnDriver:
    """Build the ready-to-run driver for one scenario (not yet run).

    Every stochastic ingredient (plans, realization, campaign) is a
    pure function of ``seed``, which is what makes checkpoint/resume
    cheap: a resuming process calls this again to reconstruct the
    identical immutable scaffolding, then restores only the mutable
    state from the snapshot.
    """
    prof = (obs if obs is not None else NULL_OBS).prof
    if prof.enabled:
        # Scenario planning + testbed realization + warmup is a real
        # slice of short runs' wall time; attribute it, don't lose it.
        with prof.span("workload.setup"):
            return _make_scale_run(
                scenario, seed, max_sessions, catalog, obs, on_step,
                sim_backend,
            )
    return _make_scale_run(
        scenario, seed, max_sessions, catalog, obs, on_step, sim_backend
    )


def _make_scale_run(
    scenario: ScaleScenario,
    seed: int,
    max_sessions: Optional[int],
    catalog: Optional[SessionCatalog],
    obs: Optional[Observability],
    on_step: Optional[Callable[[int, float], None]],
    sim_backend: Optional[str] = None,
) -> ChurnDriver:
    catalog = catalog if catalog is not None else default_catalog()
    plans = plan_sessions(
        scenario.model,
        catalog,
        scenario.duration,
        seed=mix_seed(seed, "workload-plan", scenario.name),
        max_sessions=max_sessions,
    )
    service = build_service(scenario, seed, obs=obs, sim_backend=sim_backend)
    return ChurnDriver(
        service,
        plans,
        scenario=scenario.name,
        seed=seed,
        on_step=on_step,
    )


def run_scale_scenario(
    scenario: ScaleScenario,
    seed: int = 0,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    obs: Optional[Observability] = None,
    sim_backend: Optional[str] = None,
) -> WorkloadReport:
    """Run an explicit :class:`ScaleScenario` (no registry lookup)."""
    driver = make_scale_run(
        scenario,
        seed=seed,
        max_sessions=max_sessions,
        catalog=catalog,
        obs=obs,
        sim_backend=sim_backend,
    )
    return driver.run(scenario.duration)


def partition_ids(
    catalog: Optional[SessionCatalog] = None,
) -> tuple[str, ...]:
    """The partition universe for a catalog: tenant names, sorted.

    The tenant is the cluster's atomic simulation unit — sessions of
    one tenant never split across shards — so this list is what the
    master hashes onto shards and what the in-process baseline iterates.
    """
    catalog = catalog if catalog is not None else default_catalog()
    return tuple(sorted(t.name for t in catalog.tenants))


def make_partition_run(
    scenario: ScaleScenario,
    partition: str,
    seed: int = 0,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    obs: Optional[Observability] = None,
    on_step: Optional[Callable[[int, float], None]] = None,
    sim_backend: Optional[str] = None,
) -> ChurnDriver:
    """Build the driver for one partition's slice of a scenario.

    The *full* session plan is expanded with the same plan seed the
    single-process run uses — ``max_sessions`` truncates the full plan
    *before* the tenant filter — then sliced down to ``partition``'s
    sessions.  The union of all partition slices is therefore exactly
    the single-process population, and each slice is independent of how
    many other partitions exist or where they run.
    """
    catalog = catalog if catalog is not None else default_catalog()
    known = partition_ids(catalog)
    if partition not in known:
        raise ConfigurationError(
            f"unknown partition {partition!r}; known: {list(known)}"
        )
    plans = plan_sessions(
        scenario.model,
        catalog,
        scenario.duration,
        seed=mix_seed(seed, "workload-plan", scenario.name),
        max_sessions=max_sessions,
    )
    plans = slice_plans_by_tenant(plans, partition)
    service = build_service(
        scenario, seed, obs=obs, partition=partition,
        sim_backend=sim_backend,
    )
    return ChurnDriver(
        service,
        plans,
        scenario=scenario.name,
        seed=seed,
        on_step=on_step,
    )


def run_partition_slice(
    scenario: ScaleScenario,
    partition: str,
    seed: int = 0,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    obs: Optional[Observability] = None,
    sim_backend: Optional[str] = None,
) -> WorkloadReport:
    """Run one partition's slice end to end (no registry lookup)."""
    driver = make_partition_run(
        scenario,
        partition,
        seed=seed,
        max_sessions=max_sessions,
        catalog=catalog,
        obs=obs,
        sim_backend=sim_backend,
    )
    return driver.run(scenario.duration)


def scenario_params(scenario: ScaleScenario) -> dict[str, Any]:
    """JSON form of a scenario (for :class:`repro.runner.RunSpec`)."""
    params = {
        "name": scenario.name,
        "model": scenario.model.to_params(),
        "duration": scenario.duration,
        "strict_admission": scenario.strict_admission,
        "with_chaos": scenario.with_chaos,
    }
    # Only topology-bearing scenarios carry the key: legacy RunSpec
    # content hashes (and their cached results) stay valid.
    if scenario.topology is not None:
        params["topology"] = scenario.topology
    return params
