"""Multi-tenant workload engine: arrivals, churn, and capacity envelopes.

The paper evaluates IQ-Paths with a handful of long-lived streams; this
package supplies the *population* view a production overlay needs:

``repro.workload.arrivals``
    Seeded, deterministic session arrival models — Poisson, MMPP
    (diurnal), and flash-crowd bursts — in the calibrated-synthetic
    spirit of data-centre traffic generators.
``repro.workload.catalog``
    Session catalogs: SmartPointer-, GridFTP-, and video-layer-shaped
    :class:`~repro.core.spec.StreamSpec` templates mixed across named
    tenant classes with priorities.
``repro.workload.driver``
    The open-loop churn driver: opens and closes sessions against
    :class:`~repro.middleware.service.IQPathsService` mid-run on the
    sim clock, recording per-tenant admission outcomes (admit / reject
    / degrade / shed), goodput, and attainment.
``repro.workload.scenarios``
    Named, reproducible scenarios (``baseline``, ``diurnal``,
    ``flash-crowd``, ``flash-crowd-chaos``) behind one
    ``run_scenario`` entry point.
``repro.workload.envelope``
    The capacity-envelope estimator: binary-searches the maximum
    sustainable arrival rate per scenario subject to a violation-rate
    ceiling.

Everything is a pure function of ``(scenario, seed)``: two runs with
the same seed produce byte-identical workload reports, which is what
lets the scale suite run as cached :mod:`repro.runner` specs.
"""

from repro.workload.arrivals import (
    ARRIVAL_MODELS,
    ArrivalModel,
    FlashCrowdArrivals,
    MMPPArrivals,
    PoissonArrivals,
    arrival_model_from_params,
    schedule_checksum,
)
from repro.workload.catalog import (
    CatalogEntry,
    SessionCatalog,
    SessionPlan,
    SessionTemplate,
    TenantClass,
    default_catalog,
    plan_concurrent_batch,
    plan_sessions,
    slice_plans_by_tenant,
)
from repro.workload.driver import (
    ChurnDriver,
    SessionRecord,
    TenantAccount,
    WorkloadReport,
    merge_report_payloads,
    merged_checksum,
)
from repro.workload.envelope import (
    CapacityEnvelope,
    EnvelopeProbe,
    estimate_envelope,
)
from repro.workload.scenarios import (
    SCENARIOS,
    ScaleScenario,
    build_service,
    make_partition_run,
    make_scenario,
    partition_ids,
    run_partition_slice,
    run_scale_scenario,
    run_scenario,
    scenario_params,
)

__all__ = [
    "ARRIVAL_MODELS",
    "ArrivalModel",
    "PoissonArrivals",
    "MMPPArrivals",
    "FlashCrowdArrivals",
    "arrival_model_from_params",
    "schedule_checksum",
    "TenantClass",
    "SessionTemplate",
    "CatalogEntry",
    "SessionCatalog",
    "SessionPlan",
    "default_catalog",
    "plan_concurrent_batch",
    "plan_sessions",
    "slice_plans_by_tenant",
    "ChurnDriver",
    "SessionRecord",
    "TenantAccount",
    "WorkloadReport",
    "merge_report_payloads",
    "merged_checksum",
    "ScaleScenario",
    "SCENARIOS",
    "build_service",
    "make_partition_run",
    "make_scenario",
    "partition_ids",
    "run_partition_slice",
    "run_scale_scenario",
    "run_scenario",
    "scenario_params",
    "EnvelopeProbe",
    "CapacityEnvelope",
    "estimate_envelope",
]
