"""Session catalogs: tenant classes mixing application-shaped streams.

A catalog describes *what* arrives when the arrival model says
*something* arrives: a weighted mix of session templates, each shaped
after one of the repo's applications (SmartPointer's small guaranteed
telemetry, GridFTP's guaranteed record streams and elastic bulk data,
layered video's base/enhancement split) but scaled down so thousands of
concurrent sessions fit the Figure-8 testbed's two 100 Mbps paths.

Templates are grouped under named :class:`TenantClass`\\ es with
priorities — the accounting keys the churn driver reports per.
:func:`plan_sessions` welds a catalog to an arrival model: one seeded,
deterministic pass assigns every arrival a template, a tenant, a unique
stream name, and an exponential holding time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import ConfigurationError
from repro.core.spec import StreamSpec
from repro.sim.random import RandomStreams
from repro.workload.arrivals import ArrivalModel


@dataclass(frozen=True)
class TenantClass:
    """One named tenant population sharing the overlay.

    ``priority`` is 0-highest and purely an accounting/reporting label
    here — the middleware's degradation policy orders streams by their
    guarantee strength, which the templates encode.
    """

    name: str
    priority: int = 0

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.priority < 0:
            raise ConfigurationError(
                f"priority must be >= 0, got {self.priority}"
            )


@dataclass(frozen=True)
class SessionTemplate:
    """The shape of one session type: a parameterized StreamSpec."""

    name: str
    required_mbps: Optional[float] = None
    probability: Optional[float] = None
    elastic: bool = False
    nominal_mbps: Optional[float] = None
    mean_holding_s: float = 10.0

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("template name must be non-empty")
        if self.mean_holding_s <= 0:
            raise ConfigurationError(
                f"mean_holding_s must be positive, got {self.mean_holding_s}"
            )
        # Fail fast on shapes StreamSpec would reject at open time.
        self.make_spec("probe")

    def make_spec(self, stream_name: str) -> StreamSpec:
        """Instantiate the template as a concrete, uniquely named spec."""
        return StreamSpec(
            name=stream_name,
            required_mbps=self.required_mbps,
            probability=self.probability,
            elastic=self.elastic,
            nominal_mbps=self.nominal_mbps,
        )

    @property
    def guaranteed(self) -> bool:
        return self.probability is not None


@dataclass(frozen=True)
class CatalogEntry:
    """One (tenant, template) cell with its mix weight."""

    tenant: TenantClass
    template: SessionTemplate
    weight: float = 1.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ConfigurationError(
                f"weight must be positive, got {self.weight}"
            )


@dataclass(frozen=True)
class SessionCatalog:
    """A weighted mix of session templates across tenant classes."""

    entries: tuple[CatalogEntry, ...]

    def __post_init__(self):
        if not self.entries:
            raise ConfigurationError("catalog needs at least one entry")
        object.__setattr__(self, "entries", tuple(self.entries))
        seen = set()
        for e in self.entries:
            key = (e.tenant.name, e.template.name)
            if key in seen:
                raise ConfigurationError(
                    f"duplicate catalog entry {key}"
                )
            seen.add(key)

    @property
    def tenants(self) -> tuple[TenantClass, ...]:
        """Distinct tenant classes, priority-then-name ordered."""
        by_name = {e.tenant.name: e.tenant for e in self.entries}
        return tuple(
            sorted(by_name.values(), key=lambda t: (t.priority, t.name))
        )

    def mean_guaranteed_mbps(self) -> float:
        """Mix-weighted mean guaranteed rate per session (sizing aid)."""
        total_w = sum(e.weight for e in self.entries)
        return (
            sum(
                e.weight * (e.template.required_mbps or 0.0)
                for e in self.entries
            )
            / total_w
        )

    def mean_holding_s(self) -> float:
        """Mix-weighted mean session holding time."""
        total_w = sum(e.weight for e in self.entries)
        return (
            sum(e.weight * e.template.mean_holding_s for e in self.entries)
            / total_w
        )


def default_catalog(rate_scale: float = 1.0) -> SessionCatalog:
    """The standard three-tenant mix (gold / silver / bronze).

    Shapes mirror the repo's applications at ~1/50 scale so hundreds of
    sessions load (without trivially saturating) the two-path testbed:

    * **gold** — SmartPointer-shaped telemetry (small, 95 % guaranteed)
      and video base layers (97 % guaranteed);
    * **silver** — GridFTP-shaped record streams (bigger, 95 %
      guaranteed) and elastic video enhancement layers;
    * **bronze** — purely elastic bulk and best-effort sessions.

    ``rate_scale`` multiplies every per-session bandwidth figure.
    """
    if rate_scale <= 0:
        raise ConfigurationError(
            f"rate_scale must be positive, got {rate_scale}"
        )
    gold = TenantClass("gold", priority=0)
    silver = TenantClass("silver", priority=1)
    bronze = TenantClass("bronze", priority=2)
    s = rate_scale
    return SessionCatalog(
        entries=(
            CatalogEntry(
                gold,
                SessionTemplate(
                    "pointer",
                    required_mbps=0.40 * s,
                    probability=0.95,
                    mean_holding_s=8.0,
                ),
                weight=2.5,
            ),
            CatalogEntry(
                gold,
                SessionTemplate(
                    "video-base",
                    required_mbps=0.25 * s,
                    probability=0.97,
                    mean_holding_s=12.0,
                ),
                weight=1.5,
            ),
            CatalogEntry(
                silver,
                SessionTemplate(
                    "gridftp-record",
                    required_mbps=1.0 * s,
                    probability=0.95,
                    mean_holding_s=10.0,
                ),
                weight=1.5,
            ),
            CatalogEntry(
                silver,
                SessionTemplate(
                    "video-enhancement",
                    elastic=True,
                    nominal_mbps=0.75 * s,
                    mean_holding_s=12.0,
                ),
                weight=1.5,
            ),
            CatalogEntry(
                bronze,
                SessionTemplate(
                    "gridftp-bulk",
                    elastic=True,
                    nominal_mbps=2.0 * s,
                    mean_holding_s=6.0,
                ),
                weight=1.5,
            ),
            CatalogEntry(
                bronze,
                SessionTemplate(
                    "besteffort",
                    elastic=True,
                    nominal_mbps=0.5 * s,
                    mean_holding_s=5.0,
                ),
                weight=1.5,
            ),
        )
    )


@dataclass(frozen=True)
class SessionPlan:
    """One planned session: who arrives, when, as what, for how long."""

    index: int
    name: str
    tenant: str
    priority: int
    template: str
    arrival_s: float
    holding_s: float
    spec: StreamSpec

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "tenant": self.tenant,
            "template": self.template,
            "arrival_s": self.arrival_s,
            "holding_s": self.holding_s,
        }


def plan_sessions(
    model: ArrivalModel,
    catalog: SessionCatalog,
    duration: float,
    seed: int,
    max_sessions: Optional[int] = None,
) -> list[SessionPlan]:
    """Deterministically expand arrivals into concrete session plans.

    Three independent named RNG streams (arrivals, catalog mix, holding
    times) all derive from ``seed``, so the plan is a pure function of
    ``(model, catalog, duration, seed)`` — and adding a draw to one
    stream can never perturb the others.
    """
    times = model.arrival_times(duration, seed)
    if max_sessions is not None:
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        times = times[:max_sessions]
    streams = RandomStreams(seed)
    mix_rng = streams.fresh("workload/catalog-mix")
    hold_rng = streams.fresh("workload/holding")
    entries = catalog.entries
    weights = [e.weight for e in entries]
    total_w = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total_w)
    plans: list[SessionPlan] = []
    for i, t in enumerate(times):
        u = mix_rng.random()
        pick = 0
        while pick < len(cumulative) - 1 and u > cumulative[pick]:
            pick += 1
        entry = entries[pick]
        holding = float(
            hold_rng.exponential(entry.template.mean_holding_s)
        )
        name = f"s{i:05d}.{entry.template.name}.{entry.tenant.name}"
        plans.append(
            SessionPlan(
                index=i,
                name=name,
                tenant=entry.tenant.name,
                priority=entry.tenant.priority,
                template=entry.template.name,
                arrival_s=float(t),
                holding_s=holding,
                spec=entry.template.make_spec(name),
            )
        )
    return plans


def slice_plans_by_tenant(
    plans: Sequence[SessionPlan], tenant: str
) -> list[SessionPlan]:
    """Extract one tenant's slice of a planned session population.

    The cluster partitions load by tenant: every worker expands the
    *same* full plan (a pure function of the seed) and keeps only its
    partition's sessions, so the union of all slices is exactly the
    single-process population — names, indices, arrival times and all —
    no matter how many shards computed it.
    """
    if not tenant:
        raise ConfigurationError("tenant must be non-empty")
    return [p for p in plans if p.tenant == tenant]


def plan_concurrent_batch(
    catalog: SessionCatalog, count: int, seed: int
) -> list[StreamSpec]:
    """``count`` concrete specs drawn from the mix, for batch opens.

    The scale benchmark uses this to stand up a 1k+ concurrent
    population in one :meth:`~repro.middleware.service.IQPathsService.
    open_streams` call.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    mix_rng = RandomStreams(seed).fresh("workload/batch-mix")
    entries = catalog.entries
    weights = [e.weight for e in entries]
    total_w = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total_w)
    specs = []
    for i in range(count):
        u = mix_rng.random()
        pick = 0
        while pick < len(cumulative) - 1 and u > cumulative[pick]:
            pick += 1
        entry = entries[pick]
        specs.append(
            entry.template.make_spec(
                f"b{i:05d}.{entry.template.name}.{entry.tenant.name}"
            )
        )
    return specs
