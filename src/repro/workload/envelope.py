"""Capacity-envelope estimation: the max sustainable arrival rate.

The paper's admission controller answers "does *this* stream fit?"; the
envelope answers the operator's question one level up: "how much
session churn can the overlay sustain before it starts failing
sessions?"  :func:`estimate_envelope` binary-searches the arrival-rate
scale factor of a scenario for the largest load whose
:attr:`~repro.workload.driver.WorkloadReport.violation_rate` (rejected
+ degraded + missed-guarantee sessions, over offered) stays under a
ceiling.

Every probe is one full deterministic churn run, so the whole search is
a pure function of ``(scenario, seed, ceiling, bounds, iterations)`` —
which is what lets envelope estimates run as cached
:mod:`repro.runner` specs: re-running the suite replays the identical
probe sequence and hits the result cache on every one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.errors import ConfigurationError
from repro.runner.cache import payload_digest
from repro.workload.catalog import SessionCatalog
from repro.workload.driver import WorkloadReport
from repro.workload.scenarios import (
    ScaleScenario,
    make_scenario,
    run_scale_scenario,
)


def _round6(value: float) -> float:
    return round(float(value), 6)


@dataclass(frozen=True)
class EnvelopeProbe:
    """One binary-search probe: a rate scale and what it produced."""

    rate_scale: float
    offered: int
    violation_rate: float
    sustainable: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate_scale": _round6(self.rate_scale),
            "offered": self.offered,
            "violation_rate": _round6(self.violation_rate),
            "sustainable": self.sustainable,
        }


@dataclass(frozen=True)
class CapacityEnvelope:
    """The search's verdict: the largest sustainable arrival-rate scale."""

    scenario: str
    seed: int
    ceiling: float
    base_rate: float
    probes: tuple[EnvelopeProbe, ...]
    max_sustainable_scale: float
    #: Generated-topology reference the probes ran on (``None`` =
    #: Figure-8; omitted from the payload then, preserving old bytes).
    topology: Optional[str] = None

    @property
    def max_sustainable_rate(self) -> float:
        """Sessions/second the overlay sustains under the ceiling."""
        return self.base_rate * self.max_sustainable_scale

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "ceiling": _round6(self.ceiling),
            "base_rate": _round6(self.base_rate),
            "max_sustainable_scale": _round6(self.max_sustainable_scale),
            "max_sustainable_rate": _round6(self.max_sustainable_rate),
            "probes": [p.to_dict() for p in self.probes],
        }
        if self.topology is not None:
            payload["topology"] = self.topology
        return payload

    def checksum(self) -> str:
        """Hex digest of the canonical payload (byte-identity probe)."""
        return payload_digest(self.to_dict())

    def render(self) -> str:
        where = (
            "" if self.topology is None else f" on {self.topology}"
        )
        lines = [
            f"capacity envelope for {self.scenario!r}{where} "
            f"(seed={self.seed}, ceiling={self.ceiling:.3f}):",
            f"  max sustainable scale = "
            f"{self.max_sustainable_scale:.4f} "
            f"(~{self.max_sustainable_rate:.2f} sessions/s)",
        ]
        for probe in self.probes:
            verdict = "ok" if probe.sustainable else "over"
            lines.append(
                f"  probe scale={probe.rate_scale:.4f}: "
                f"offered={probe.offered} "
                f"violation_rate={probe.violation_rate:.4f} [{verdict}]"
            )
        return "\n".join(lines)


def estimate_envelope(
    scenario_name: str,
    seed: int = 0,
    ceiling: float = 0.05,
    lo_scale: float = 0.125,
    hi_scale: float = 4.0,
    iterations: int = 6,
    probe_duration: float = 30.0,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    resume_probes: Optional[Mapping[float, Mapping[str, Any]]] = None,
    on_probe: Optional[Callable[[EnvelopeProbe], None]] = None,
    probe_fn: Optional[Callable[[float], tuple[int, float]]] = None,
    topology: Optional[str] = None,
) -> CapacityEnvelope:
    """Binary-search the max sustainable arrival-rate scale.

    The search brackets on ``[lo_scale, hi_scale]``: the two endpoints
    are probed first (so the caller learns if the whole bracket is
    under or over the ceiling), then ``iterations`` bisections narrow
    it.  ``probe_duration`` truncates each probe run — capacity is a
    rate property, so shorter runs trade confidence for speed.

    Probe-granular resume: the bisection path is a deterministic
    function of probe verdicts, so a crashed search restarts exactly by
    replaying finished probes from a journal.  ``on_probe`` fires after
    each *computed* probe (the checkpoint layer appends it to the
    journal); ``resume_probes`` maps ``rate_scale`` to a previously
    journaled probe dict — probes found there are reused without
    rerunning (and ``on_probe`` does not fire for them).

    ``probe_fn`` swaps out *how* one probe runs: given a rate scale it
    returns ``(offered, violation_rate)``.  The sharded control plane
    (:func:`repro.cluster.estimate_cluster_envelope`) injects a probe
    that fans the run across worker shards; the search logic — and so
    the probe sequence for identical probe results — is unchanged.
    """
    if not 0 < ceiling < 1:
        raise ConfigurationError(
            f"ceiling must be in (0, 1), got {ceiling}"
        )
    if not 0 < lo_scale < hi_scale:
        raise ConfigurationError(
            f"need 0 < lo_scale < hi_scale, got {lo_scale}, {hi_scale}"
        )
    if iterations < 1:
        raise ConfigurationError(
            f"iterations must be >= 1, got {iterations}"
        )
    scenario = make_scenario(
        scenario_name, duration=probe_duration, topology=topology
    )
    base_rate = scenario.model.mean_rate()

    probes: list[EnvelopeProbe] = []

    def probe(scale: float) -> bool:
        if resume_probes is not None and scale in resume_probes:
            journaled = resume_probes[scale]
            entry = EnvelopeProbe(
                rate_scale=scale,
                offered=int(journaled["offered"]),
                violation_rate=float(journaled["violation_rate"]),
                sustainable=bool(journaled["sustainable"]),
            )
            probes.append(entry)
            return entry.sustainable
        if probe_fn is not None:
            offered, violation_rate = probe_fn(scale)
        else:
            report = run_scale_scenario(
                scenario.scaled(scale),
                seed=seed,
                max_sessions=max_sessions,
                catalog=catalog,
            )
            offered, violation_rate = report.offered, report.violation_rate
        ok = violation_rate <= ceiling and offered > 0
        entry = EnvelopeProbe(
            rate_scale=scale,
            offered=int(offered),
            violation_rate=_round6(violation_rate),
            sustainable=ok,
        )
        probes.append(entry)
        if on_probe is not None:
            on_probe(entry)
        return ok

    lo_ok = probe(lo_scale)
    hi_ok = probe(hi_scale)
    if not lo_ok:
        # Even the lightest load violates: report zero capacity.
        best = 0.0
    elif hi_ok:
        # The heaviest probe sustains: the envelope is off-bracket.
        best = hi_scale
    else:
        lo, hi = lo_scale, hi_scale
        for _ in range(iterations):
            mid = (lo + hi) / 2
            if probe(mid):
                lo = mid
            else:
                hi = mid
        best = lo
    return CapacityEnvelope(
        scenario=scenario_name,
        seed=seed,
        ceiling=ceiling,
        base_rate=base_rate,
        probes=tuple(probes),
        max_sustainable_scale=best,
        topology=scenario.topology,
    )
