"""``python -m repro.workload`` — run scenarios from the command line."""

import sys

from repro.workload.cli import main

sys.exit(main())
