"""Crash-safe execution: deterministic checkpoint/resume.

The simulation stack is deterministic given ``(spec, seed)``; this
package makes it *restartable* without losing that property.  A
checkpoint is a versioned, digest-verified JSON snapshot of every piece
of mutable mid-run state (engine clock and queue, RNG substreams,
monitor windows, health machines, service sessions, churn-driver loop
state), written atomically so a crash mid-write can never corrupt the
last good snapshot.  A run resumed from a checkpoint produces the same
report, byte for byte, as one that never crashed — the kill-injection
harness in :mod:`repro.harness.crash` asserts exactly that.

Layout:

:mod:`repro.checkpoint.snapshot`
    :class:`CheckpointStore` — atomic, digest-verified persistence with
    code-fingerprint staleness detection.
:mod:`repro.checkpoint.policy`
    When to snapshot (:class:`CheckpointConfig`), how to stop
    (:class:`InterruptFlag`, :data:`GRACEFUL_EXIT_CODE`).
:mod:`repro.checkpoint.workload`
    The glue that runs a scale scenario under a checkpoint policy and
    resumes it.
"""

from repro.checkpoint.policy import (
    GRACEFUL_EXIT_CODE,
    CheckpointConfig,
    InterruptFlag,
    RunInterrupted,
)
from repro.checkpoint.snapshot import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointStore,
)
from repro.checkpoint.workload import run_scale_scenario_checkpointed

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointStore",
    "GRACEFUL_EXIT_CODE",
    "InterruptFlag",
    "RunInterrupted",
    "run_scale_scenario_checkpointed",
]
