"""Versioned, digest-verified, atomically-written checkpoints.

A checkpoint file is a JSON envelope::

    {
      "schema": 1,
      "fingerprint": "<code fingerprint at write time>",
      "meta": {...},          # small, human-inspectable context
      "digest": "<sha256 of the serialized payload>",
      "payload": {...}        # the state_dict tree
    }

Three properties matter:

* **Atomic.**  Writes go through :func:`repro.fsutil.atomic_write_text`
  (temp file + fsync + rename), so a crash mid-write leaves the previous
  checkpoint intact — there is never a torn snapshot on disk.
* **Verified.**  ``digest`` commits to the payload bytes; a load
  re-serializes the parsed payload and compares.  Bit-rot, truncation,
  or hand-editing is detected, never silently resumed.
* **Order-preserving.**  The payload is serialized with
  ``sort_keys=False``: dict iteration order is part of the simulation's
  determinism (float sums accumulate in insertion order), so the
  serialization must not reorder what the ``state_dict`` methods
  deliberately ordered.

Staleness: the envelope records the runner code fingerprint
(:func:`repro.runner.fingerprint.code_fingerprint`).  Resuming a
checkpoint across a code change is undefined behaviour — state layouts
may have shifted — so a strict load raises
:class:`~repro.errors.StaleCheckpointError` on mismatch, and a lenient
load treats the checkpoint as absent (fresh start).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.errors import CheckpointError, StaleCheckpointError
from repro.fsutil import atomic_write_text
from repro.obs.context import NULL_OBS, Observability
from repro.obs.events import Category

#: Envelope layout version; bumped whenever the payload tree changes shape.
CHECKPOINT_SCHEMA = 1


def _dumps_payload(payload: Mapping[str, Any]) -> str:
    """The canonical byte form the digest commits to.

    ``sort_keys=False`` preserves ``state_dict`` insertion order;
    ``allow_nan=False`` keeps the file strict JSON (NaN state would be
    a bug upstream, better caught at write time).
    """
    return json.dumps(
        payload, sort_keys=False, separators=(",", ":"), allow_nan=False
    )


def payload_checksum(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical serialized payload."""
    return hashlib.sha256(_dumps_payload(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One verified checkpoint, as loaded from disk."""

    schema: int
    fingerprint: str
    meta: dict[str, Any]
    payload: dict[str, Any]
    digest: str


class CheckpointStore:
    """Atomic single-slot checkpoint persistence under one directory.

    One store holds the *latest* checkpoint of one run (the atomic
    rename makes "latest" always a complete snapshot; older snapshots
    are superseded in place).  The directory may also carry sidecar
    files owned by other layers (e.g. the kill-injection marker), which
    the store ignores.
    """

    FILENAME = "checkpoint.json"

    def __init__(
        self,
        root: Union[str, Path],
        obs: Optional[Observability] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._obs = obs if obs is not None else NULL_OBS

    @classmethod
    def for_partition(
        cls,
        root: Union[str, Path],
        partition: str,
        obs: Optional[Observability] = None,
    ) -> "CheckpointStore":
        """A partition's own snapshot slot under a shared cluster root.

        Keyed by partition id — *not* by shard — so snapshots survive a
        resume under a different shard count: whichever worker owns the
        partition next finds its state at the same path.
        """
        return cls(Path(root) / f"partition-{partition}", obs=obs)

    def bind_observability(self, obs: Optional[Observability]) -> None:
        """Attach a run's obs context so snapshot events land on its bus.

        The store is often constructed (by a CLI) before the run's
        observability exists; rebinding here keeps construction order
        flexible.  Snapshot events carry the *virtual* time the snapshot
        captured (``meta["t"]``), so resume points line up with the
        simulation timeline in causal chains.
        """
        self._obs = obs if obs is not None else NULL_OBS

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------
    # write
    # ------------------------------------------------------------------
    def save(
        self,
        payload: Mapping[str, Any],
        *,
        fingerprint: str,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Atomically persist ``payload`` as the latest checkpoint."""
        digest = payload_checksum(payload)
        envelope = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": fingerprint,
            "meta": dict(meta) if meta else {},
            "digest": digest,
            "payload": payload,
        }
        serialized = json.dumps(envelope, sort_keys=False, indent=None)
        with self._obs.prof.span("checkpoint.save"):
            atomic_write_text(self.path, serialized)
        if self._obs.enabled:
            self._obs.trace.emit(
                float(envelope["meta"].get("t", 0.0)),
                Category.CHECKPOINT,
                "snapshot_write",
                size=len(serialized),
                digest=digest,
            )
        return self.path

    def clear(self) -> None:
        """Remove the checkpoint (a finished run must not be resumed)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def load(
        self,
        *,
        fingerprint: Optional[str] = None,
        strict: bool = True,
    ) -> Optional[Checkpoint]:
        """Load and verify the latest checkpoint.

        Returns ``None`` when no checkpoint exists.  With
        ``strict=True`` (the explicit ``--resume`` path), a corrupt
        envelope raises :class:`CheckpointError` and a code-fingerprint
        mismatch raises :class:`StaleCheckpointError` — resuming must
        fail loudly, not quietly recompute something different.  With
        ``strict=False`` (a supervised worker restarting itself), any
        unusable checkpoint degrades to ``None`` so the worker falls
        back to a fresh, still-deterministic run.
        """
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        try:
            with self._obs.prof.span("checkpoint.load"):
                checkpoint = self._verify(raw)
            if (
                fingerprint is not None
                and checkpoint.fingerprint != fingerprint
            ):
                raise StaleCheckpointError(
                    f"checkpoint {self.path} was written by different "
                    f"code (fingerprint {checkpoint.fingerprint[:12]}..., "
                    f"current {fingerprint[:12]}...); resuming across a "
                    "code change is unsafe — delete the checkpoint or "
                    "rerun from scratch"
                )
        except CheckpointError as exc:
            if self._obs.enabled:
                self._obs.trace.emit(
                    0.0,
                    Category.CHECKPOINT,
                    "snapshot_reject",
                    size=len(raw),
                    reason=type(exc).__name__,
                )
            if strict:
                raise
            return None
        if self._obs.enabled:
            self._obs.trace.emit(
                float(checkpoint.meta.get("t", 0.0)),
                Category.CHECKPOINT,
                "snapshot_restore",
                size=len(raw),
                digest=checkpoint.digest,
            )
        return checkpoint

    def _verify(self, raw: str) -> Checkpoint:
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(envelope, dict):
            raise CheckpointError(
                f"checkpoint {self.path}: envelope must be an object"
            )
        missing = {
            "schema",
            "fingerprint",
            "meta",
            "digest",
            "payload",
        } - envelope.keys()
        if missing:
            raise CheckpointError(
                f"checkpoint {self.path} is missing {sorted(missing)}"
            )
        if envelope["schema"] != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {self.path} has schema {envelope['schema']}; "
                f"this code reads schema {CHECKPOINT_SCHEMA}"
            )
        digest = payload_checksum(envelope["payload"])
        if digest != envelope["digest"]:
            raise CheckpointError(
                f"checkpoint {self.path} failed digest verification "
                f"(stored {envelope['digest'][:12]}..., computed "
                f"{digest[:12]}...); refusing to resume corrupt state"
            )
        return Checkpoint(
            schema=int(envelope["schema"]),
            fingerprint=envelope["fingerprint"],
            meta=envelope["meta"],
            payload=envelope["payload"],
            digest=envelope["digest"],
        )
