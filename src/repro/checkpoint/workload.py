"""Running a scale scenario under a checkpoint policy.

:func:`run_scale_scenario_checkpointed` is
:func:`repro.workload.scenarios.run_scale_scenario` wrapped in crash
safety: periodic snapshots on the virtual clock, automatic resume from
the last verified snapshot, and a final snapshot on cooperative
interrupt.  Because every immutable ingredient (plans, realization,
fault campaign) is a pure function of the seed, a snapshot only carries
the *mutable* mid-run state — the resuming process rebuilds the
scaffolding deterministically and loads the rest.

Determinism contract: a run killed at any point and resumed from its
last checkpoint returns a :class:`~repro.workload.driver.WorkloadReport`
whose ``to_dict()`` payload is byte-identical to an uninterrupted
run's.  ``tests/checkpoint`` and the kill-injection harness
(:mod:`repro.harness.crash`) enforce this.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CheckpointError
from repro.checkpoint.policy import (
    CheckpointConfig,
    InterruptFlag,
    RunInterrupted,
)
from repro.checkpoint.snapshot import CheckpointStore
from repro.obs.context import Observability
from repro.runner.fingerprint import code_fingerprint
from repro.workload.catalog import SessionCatalog
from repro.workload.driver import WorkloadReport
from repro.workload.scenarios import ScaleScenario, make_scale_run


def run_scale_scenario_checkpointed(
    scenario: ScaleScenario,
    store: CheckpointStore,
    seed: int = 0,
    max_sessions: Optional[int] = None,
    catalog: Optional[SessionCatalog] = None,
    obs: Optional[Observability] = None,
    config: Optional[CheckpointConfig] = None,
    fingerprint: Optional[str] = None,
    resume: bool = True,
    strict_resume: bool = False,
    interrupt: Optional[InterruptFlag] = None,
    on_step: Optional[Callable[[int, float], None]] = None,
    sim_backend: Optional[str] = None,
) -> WorkloadReport:
    """Run ``scenario`` with periodic checkpoints, resuming if possible.

    Parameters beyond :func:`run_scale_scenario`'s:

    store:
        Where the run's single checkpoint slot lives.
    config:
        Snapshot cadence (default every 5 virtual seconds).
    fingerprint:
        Code fingerprint stamped into (and demanded of) checkpoints;
        computed from the live tree when omitted.
    resume:
        When True (default) and a usable checkpoint exists, continue
        from it; when False any existing checkpoint is ignored and
        overwritten.
    strict_resume:
        When True, a corrupt or stale checkpoint raises
        (:class:`~repro.errors.CheckpointError` /
        :class:`~repro.errors.StaleCheckpointError`) instead of
        silently starting fresh.  Explicit ``--resume`` flows want
        this; supervised workers want the lenient default.
    interrupt:
        Optional latched-signal flag polled between steps.  When it
        trips, a final checkpoint is flushed and
        :class:`RunInterrupted` is raised.
    on_step:
        Extra per-step hook ``(k, t)``, called after checkpoint
        bookkeeping (the kill-injection harness hangs here).
    sim_backend:
        Delivery backend (``vectorized``/``scalar``; ``None`` reads
        ``REPRO_SIM_BACKEND``).  Snapshots are backend-agnostic: a
        checkpoint written under one backend resumes byte-identically
        under the other.

    A completed run clears the checkpoint slot: finished work must not
    be "resumed".
    """
    config = config if config is not None else CheckpointConfig()
    if fingerprint is None:
        fingerprint = code_fingerprint()
    if obs is not None:
        # Snapshot writes/restores/rejects join the run's trace, tagged
        # with the virtual time each snapshot captured.
        store.bind_observability(obs)

    checkpoint = None
    if resume:
        checkpoint = store.load(
            fingerprint=fingerprint, strict=strict_resume
        )
        if checkpoint is not None:
            meta = checkpoint.meta
            if (
                meta.get("scenario") != scenario.name
                or meta.get("seed") != seed
            ):
                message = (
                    f"checkpoint in {store.root} belongs to scenario "
                    f"{meta.get('scenario')!r} seed {meta.get('seed')!r}, "
                    f"not {scenario.name!r} seed {seed!r}"
                )
                if strict_resume:
                    raise CheckpointError(message)
                checkpoint = None

    hooks: dict = {}

    def step_hook(k: int, t: float) -> None:
        driver = hooks["driver"]
        done = k + 1
        if interrupt is not None and interrupt.triggered:
            _save(driver, store, fingerprint, scenario, seed, done, t)
            raise RunInterrupted(
                f"run interrupted ({interrupt.signal_name}) after "
                f"{done} steps (t={t:.1f}s); checkpoint flushed to "
                f"{store.path}",
                steps_done=done,
                t=t,
            )
        if done % hooks["every_steps"] == 0:
            _save(driver, store, fingerprint, scenario, seed, done, t)
        if on_step is not None:
            on_step(k, t)

    driver = make_scale_run(
        scenario,
        seed=seed,
        max_sessions=max_sessions,
        catalog=catalog,
        obs=obs,
        on_step=step_hook,
        sim_backend=sim_backend,
    )
    hooks["driver"] = driver
    hooks["every_steps"] = config.every_steps(driver.service.dt)
    if checkpoint is not None:
        driver.service.load_state_dict(checkpoint.payload["service"])
        driver.load_state_dict(checkpoint.payload["driver"])
    report = driver.run(scenario.duration)
    store.clear()
    return report


def _save(driver, store, fingerprint, scenario, seed, step, t) -> None:
    store.save(
        {
            "service": driver.service.state_dict(),
            "driver": driver.state_dict(),
        },
        fingerprint=fingerprint,
        meta={
            "scenario": scenario.name,
            "seed": seed,
            "step": step,
            "t": t,
        },
    )
