"""When to snapshot, and how to stop without losing work.

:class:`CheckpointConfig` fixes the snapshot cadence in *virtual*
seconds — checkpoints land at deterministic step boundaries, so the
same run always snapshots at the same points regardless of host speed.

:class:`InterruptFlag` is the cooperative half of graceful shutdown:
it latches ``SIGINT``/``SIGTERM`` instead of dying mid-step, the run
loop polls it between steps, flushes a final checkpoint, and the CLI
exits with :data:`GRACEFUL_EXIT_CODE` (75, ``EX_TEMPFAIL``: "try again
later" — the conventional code for a transient, resumable stop).
"""

from __future__ import annotations

import signal
import types
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, ReproError

#: Exit code for "interrupted but checkpointed; rerun to resume"
#: (BSD ``EX_TEMPFAIL``).
GRACEFUL_EXIT_CODE = 75


@dataclass(frozen=True)
class CheckpointConfig:
    """Snapshot policy for one checkpointed run.

    ``every_s`` is measured on the simulation clock: a snapshot is
    taken after each step that completes a multiple of ``every_s``
    virtual seconds.  Cadence therefore never depends on wall-clock
    jitter, and two runs of the same spec checkpoint at identical
    steps.
    """

    every_s: float = 5.0

    def __post_init__(self):
        if self.every_s <= 0:
            raise ConfigurationError(
                f"every_s must be positive, got {self.every_s}"
            )

    def every_steps(self, dt: float) -> int:
        """Snapshot period in delivery steps (at least one)."""
        return max(1, int(round(self.every_s / dt)))


class RunInterrupted(ReproError):
    """A run stopped cooperatively after flushing a checkpoint.

    Carries where the run stopped so the CLI can report resume
    instructions; the checkpoint on disk holds the actual state.
    """

    def __init__(self, message: str, *, steps_done: int, t: float):
        super().__init__(message)
        self.steps_done = steps_done
        self.t = t


class InterruptFlag:
    """Latching SIGINT/SIGTERM handler for cooperative shutdown.

    Usage::

        flag = InterruptFlag()
        flag.install()
        try:
            ...  # long run polling flag.triggered between steps
        finally:
            flag.restore()

    The first signal sets the flag; a second signal of the same kind
    falls through to the previously-installed handler (for SIGINT that
    is ``KeyboardInterrupt``), so a stuck run can still be killed by
    pressing Ctrl-C twice.
    """

    def __init__(self):
        self._triggered = False
        self._signum: Optional[int] = None
        self._previous: dict[int, object] = {}

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def signal_name(self) -> Optional[str]:
        if self._signum is None:
            return None
        return signal.Signals(self._signum).name

    def _handle(
        self, signum: int, frame: Optional[types.FrameType]
    ) -> None:
        if self._triggered:
            previous = self._previous.get(signum)
            if callable(previous):
                previous(signum, frame)
                return
            if previous is signal.SIG_DFL:
                signal.signal(signum, signal.SIG_DFL)
                signal.raise_signal(signum)
            return
        self._triggered = True
        self._signum = signum

    def install(
        self,
        signals: tuple[signal.Signals, ...] = (
            signal.SIGINT,
            signal.SIGTERM,
        ),
    ) -> "InterruptFlag":
        for sig in signals:
            self._previous[int(sig)] = signal.getsignal(sig)
            signal.signal(sig, self._handle)
        return self

    def restore(self) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
