"""Exception hierarchy for the IQ-Paths reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one handler.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class AdmissionError(ReproError):
    """Raised when a stream cannot be admitted with its requested guarantee.

    Mirrors the paper's *upcall* made to the application when no single path
    nor any split across paths can satisfy the stream's utility requirement
    (Section 5.2.2).  The application may catch this and retry with a lower
    probability requirement or bandwidth.
    """

    def __init__(self, stream_name: str, message: str = ""):
        self.stream_name = stream_name
        detail = f": {message}" if message else ""
        super().__init__(
            f"stream {stream_name!r} cannot be scheduled with the requested "
            f"guarantee{detail}"
        )


class TopologyError(ReproError):
    """Raised for malformed topologies or unknown nodes/links/paths."""


class TraceError(ReproError):
    """Raised for malformed or unreadable trace data."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine is misused."""


class CheckpointError(ReproError):
    """Raised for unreadable, corrupt, or unrestorable checkpoints."""


class StaleCheckpointError(CheckpointError):
    """Raised when a checkpoint's code fingerprint no longer matches.

    Resuming across a code change could silently diverge from a clean
    run, so explicit resume requests fail loudly with this error; callers
    that prefer to fall back to a fresh start catch it (or use the
    store's non-strict loader).
    """


class ClusterError(ReproError):
    """Raised when the sharded control plane cannot complete a run.

    Covers worker-spawn failures, exhausted respawn budgets, and
    shard reports that fail the canonical-merge invariants.
    """


class ClusterProtocolError(ClusterError):
    """Raised on malformed frames or out-of-contract messages.

    The framed master/worker protocol is deterministic and versioned;
    anything unparseable, oversized, or sent out of sequence is a bug
    (or a code-fingerprint mismatch), never something to paper over.
    """
