"""Parametric, seeded topology generators.

Three families, all emitting the *existing* substrate objects —
:class:`repro.network.topology.Topology`,
:class:`repro.network.path.OverlayPath`, and (through the inherited
``realize``) :class:`repro.network.emulab.TestbedRealization` — so the
entire middleware/workload/cluster stack runs on a generated topology
without knowing it is not the Figure-8 testbed:

``fat_tree``
    The classic k-ary fat-tree: ``(k/2)^2`` cores, ``k`` pods of
    ``k/2`` aggregation + ``k/2`` edge switches, ``hosts_per_edge``
    hosts per edge switch.  The overlay server/client are multi-homed
    to ``n_paths`` edge switches of the first/last pod (the same
    multi-access pattern as the paper's N-1), yielding ``n_paths``
    node-disjoint overlay paths by construction.
``leaf_spine``
    A two-tier Clos: every leaf connects to every spine.  Server and
    client are multi-homed to disjoint leaf sets; path ``i`` runs
    ``server -> leaf_i -> spine_i -> leaf_{n-1-i} -> client``.
``repetita_wan``
    A REPETITA-style repeatable random WAN: a biconnected ring with
    seeded chord links and seeded per-link delays.  Same
    ``(params, seed)``, same instance — byte for byte.

Per-path cross traffic lands on each overlay path's designated
*bottleneck* link (the first inter-switch hop, like Figure 8's
``N-2 -> N-4``) according to the spec's traffic scenario; see
:mod:`repro.topo.traffic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.network.emulab import EmulabTestbed
from repro.network.link import Link
from repro.network.node import Node, NodeKind
from repro.network.topology import Topology
from repro.runner.cache import payload_digest
from repro.sim.random import RandomStreams
from repro.topo.spec import TopoSpec
from repro.topo.traffic import bottleneck_sources

#: Generated links default to the testbed's fast-ethernet capacity so
#: per-path envelope numbers are comparable across families.
LINK_CAPACITY_MBPS = 100.0

#: One-way delay of a datacenter hop (switch-to-switch), milliseconds.
DC_LINK_DELAY_MS = 0.1

#: One-way delay of a server/client access link, milliseconds.
ACCESS_DELAY_MS = 0.5

#: WAN delays are drawn per link from this range (milliseconds).
WAN_DELAY_RANGE_MS = (3.0, 12.0)


@dataclass(frozen=True)
class GeneratedTestbed(EmulabTestbed):
    """A generated testbed: the Figure-8 contract plus its recipe.

    Inherits ``realize`` — per-link cross-traffic sampling, bottleneck
    composition, and :func:`repro.network.qos.realize_qos` under the
    same ``RandomStreams`` substream discipline — so a
    :class:`~repro.network.emulab.TestbedRealization` built here is
    indistinguishable to the middleware from a Figure-8 one.
    """

    spec: TopoSpec = None  # type: ignore[assignment]
    #: Names of the per-path bottleneck links carrying cross traffic,
    #: ordered by path index.
    bottlenecks: tuple[str, ...] = ()

    def structure_dict(self) -> dict[str, Any]:
        """Canonical description of the built instance."""
        links = []
        for link in sorted(self.topology.links, key=lambda l: l.name):
            links.append(
                {
                    "a": link.a.name,
                    "b": link.b.name,
                    "capacity_mbps": link.capacity_mbps,
                    "delay_ms": round(link.delay_ms, 9),
                    "loss_rate": link.loss_rate,
                    "sources": sorted(s.name for s in link.cross_traffic),
                }
            )
        return {
            "spec": self.spec.to_dict(),
            "nodes": sorted(
                (node.name, node.kind.value) for node in self.topology.nodes
            ),
            "links": links,
            "paths": {
                name: [n.name for n in path.nodes]
                for name, path in sorted(self.paths.items())
            },
            "bottlenecks": list(self.bottlenecks),
        }

    def checksum(self) -> str:
        """Digest of the built structure — the reproducibility proof."""
        return payload_digest(self.structure_dict())


def topo_checksum(testbed: GeneratedTestbed) -> str:
    """Canonical checksum of a generated instance (module-level form)."""
    return testbed.checksum()


# ----------------------------------------------------------------------
# shared scaffolding
# ----------------------------------------------------------------------
def _add_link(
    topo: Topology,
    a: Node,
    b: Node,
    delay_ms: float,
    capacity_mbps: float = LINK_CAPACITY_MBPS,
) -> Link:
    link = Link(
        a=a, b=b, capacity_mbps=capacity_mbps, delay_ms=delay_ms
    )
    topo.add_link(link)
    return link


def _finalize(
    topo: Topology,
    spec: TopoSpec,
    server: Node,
    client: Node,
    routes: list[list[str]],
) -> GeneratedTestbed:
    """Name paths, attach per-path cross traffic, verify disjointness."""
    paths = {}
    bottlenecks = []
    for i, route in enumerate(routes):
        path = topo.path(route)
        name = f"P{i}"
        paths[name] = path
        if path.hop_count < 2:
            raise ConfigurationError(
                f"path {name} too short to designate a bottleneck"
            )
        # The hop after the access link — where Figure 8 puts its
        # bottlenecks — carries the traffic scenario's sources.
        bottleneck = path.links[1]
        for source in bottleneck_sources(spec.traffic, i, bottleneck):
            bottleneck.add_cross_traffic(source)
        bottlenecks.append(bottleneck.name)
    shared = topo.shared_links(paths.values())
    if shared:
        raise ConfigurationError(
            f"overlay paths of {spec.label()} share links: {sorted(shared)}"
        )
    interiors: set[str] = set()
    for path in paths.values():
        inner = {n.name for n in path.nodes[1:-1]}
        if inner & interiors:
            raise ConfigurationError(
                f"overlay paths of {spec.label()} share interior nodes"
            )
        interiors |= inner
    return GeneratedTestbed(
        topology=topo,
        server=server,
        client=client,
        paths=paths,
        spec=spec,
        bottlenecks=tuple(bottlenecks),
    )


# ----------------------------------------------------------------------
# fat-tree
# ----------------------------------------------------------------------
def build_fat_tree(spec: TopoSpec) -> GeneratedTestbed:
    """The k-ary fat-tree family (``k`` even, ``>= 4``)."""
    params = spec.param_dict()
    k = int(params.get("k", 4))
    if k < 4 or k % 2:
        raise ConfigurationError(f"fat_tree needs even k >= 4, got {k}")
    half = k // 2
    hosts_per_edge = int(params.get("hosts_per_edge", half))
    if spec.n_paths > half:
        raise ConfigurationError(
            f"fat_tree k={k} supports at most {half} disjoint paths, "
            f"{spec.n_paths} requested"
        )
    topo = Topology()
    cores = [
        topo.add_node(Node(f"C{c}", NodeKind.ROUTER))
        for c in range(half * half)
    ]
    aggs: dict[tuple[int, int], Node] = {}
    edges: dict[tuple[int, int], Node] = {}
    for p in range(k):
        for i in range(half):
            aggs[p, i] = topo.add_node(Node(f"A{p}-{i}", NodeKind.ROUTER))
            edges[p, i] = topo.add_node(Node(f"E{p}-{i}", NodeKind.ROUTER))
        for e in range(half):
            for a in range(half):
                _add_link(topo, edges[p, e], aggs[p, a], DC_LINK_DELAY_MS)
            for h in range(hosts_per_edge):
                host = topo.add_node(
                    Node(f"H{p}-{e}-{h}", NodeKind.HOST)
                )
                _add_link(topo, host, edges[p, e], DC_LINK_DELAY_MS)
        for a in range(half):
            for c in range(half):
                _add_link(
                    topo, aggs[p, a], cores[a * half + c], DC_LINK_DELAY_MS
                )
    server = topo.add_node(Node("SRV", NodeKind.SERVER))
    client = topo.add_node(Node("CLT", NodeKind.CLIENT))
    src_pod, dst_pod = 0, k - 1
    routes = []
    for i in range(spec.n_paths):
        _add_link(topo, server, edges[src_pod, i], ACCESS_DELAY_MS)
        _add_link(topo, edges[dst_pod, i], client, ACCESS_DELAY_MS)
        routes.append(
            [
                server.name,
                f"E{src_pod}-{i}",
                f"A{src_pod}-{i}",
                f"C{i * half}",
                f"A{dst_pod}-{i}",
                f"E{dst_pod}-{i}",
                client.name,
            ]
        )
    return _finalize(topo, spec, server, client, routes)


# ----------------------------------------------------------------------
# leaf-spine
# ----------------------------------------------------------------------
def build_leaf_spine(spec: TopoSpec) -> GeneratedTestbed:
    """The two-tier leaf-spine family."""
    params = spec.param_dict()
    n_spine = int(params.get("n_spine", 2))
    n_leaf = int(params.get("n_leaf", 4))
    hosts_per_leaf = int(params.get("hosts_per_leaf", 2))
    if n_spine < 1 or n_leaf < 2:
        raise ConfigurationError(
            f"leaf_spine needs n_spine >= 1 and n_leaf >= 2, "
            f"got {n_spine}, {n_leaf}"
        )
    if spec.n_paths > min(n_spine, n_leaf // 2):
        raise ConfigurationError(
            f"leaf_spine {n_spine}x{n_leaf} supports at most "
            f"{min(n_spine, n_leaf // 2)} disjoint paths, "
            f"{spec.n_paths} requested"
        )
    topo = Topology()
    spines = [
        topo.add_node(Node(f"S{s}", NodeKind.ROUTER))
        for s in range(n_spine)
    ]
    leaves = [
        topo.add_node(Node(f"L{l}", NodeKind.ROUTER))
        for l in range(n_leaf)
    ]
    for leaf in leaves:
        for spine in spines:
            _add_link(topo, leaf, spine, DC_LINK_DELAY_MS)
    for l in range(n_leaf):
        for h in range(hosts_per_leaf):
            host = topo.add_node(Node(f"H{l}-{h}", NodeKind.HOST))
            _add_link(topo, host, leaves[l], DC_LINK_DELAY_MS)
    server = topo.add_node(Node("SRV", NodeKind.SERVER))
    client = topo.add_node(Node("CLT", NodeKind.CLIENT))
    routes = []
    for i in range(spec.n_paths):
        src_leaf, dst_leaf = leaves[i], leaves[n_leaf - 1 - i]
        _add_link(topo, server, src_leaf, ACCESS_DELAY_MS)
        _add_link(topo, dst_leaf, client, ACCESS_DELAY_MS)
        routes.append(
            [
                server.name,
                src_leaf.name,
                spines[i].name,
                dst_leaf.name,
                client.name,
            ]
        )
    return _finalize(topo, spec, server, client, routes)


# ----------------------------------------------------------------------
# REPETITA-style repeatable random WAN
# ----------------------------------------------------------------------
def build_repetita_wan(spec: TopoSpec) -> GeneratedTestbed:
    """A seeded random WAN: biconnected ring + chords, seeded delays.

    Chords are drawn *within* each half of the ring (the clockwise arc
    ``W1..W{n/2}`` and the counter-clockwise arc ``W{n/2+1}..W{n-1}``)
    so the two arc-side overlay paths stay node-disjoint no matter
    which chords the seed produces.
    """
    params = spec.param_dict()
    n_nodes = int(params.get("n_nodes", 12))
    chords = int(params.get("chords", 4))
    if n_nodes < 6:
        raise ConfigurationError(
            f"repetita_wan needs n_nodes >= 6, got {n_nodes}"
        )
    if spec.n_paths != 2:
        raise ConfigurationError(
            "repetita_wan extracts exactly 2 arc-disjoint paths; "
            f"n_paths={spec.n_paths} unsupported"
        )
    streams = RandomStreams(spec.seed)
    delay_rng = streams.fresh("topo/repetita/delays")
    chord_rng = streams.fresh("topo/repetita/chords")
    lo, hi = WAN_DELAY_RANGE_MS

    topo = Topology()
    ring = [
        topo.add_node(Node(f"W{i}", NodeKind.ROUTER))
        for i in range(n_nodes)
    ]
    for i in range(n_nodes):
        _add_link(
            topo,
            ring[i],
            ring[(i + 1) % n_nodes],
            delay_ms=float(delay_rng.uniform(lo, hi)),
        )
    half = n_nodes // 2
    cw_arc = list(range(1, half))            # clockwise interior
    ccw_arc = list(range(half + 1, n_nodes))  # counter-clockwise interior
    added: set[tuple[int, int]] = set()
    for c in range(chords):
        arc = cw_arc if c % 2 == 0 else ccw_arc
        # Rejection-sample a fresh non-adjacent in-arc pair; bounded
        # tries keep generation total even for tiny arcs.
        for _ in range(32):
            a, b = sorted(
                int(x) for x in chord_rng.choice(arc, size=2, replace=False)
            )
            if b - a > 1 and (a, b) not in added:
                added.add((a, b))
                _add_link(
                    topo,
                    ring[a],
                    ring[b],
                    delay_ms=float(delay_rng.uniform(lo, hi)),
                )
                break
    server = topo.add_node(Node("SRV", NodeKind.SERVER))
    client = topo.add_node(Node("CLT", NodeKind.CLIENT))
    # Multi-homed endpoints: the two arcs between the attachment points
    # are node-disjoint by the ring's construction.
    _add_link(topo, server, ring[1], ACCESS_DELAY_MS)
    _add_link(topo, server, ring[n_nodes - 1], ACCESS_DELAY_MS)
    _add_link(topo, ring[half - 1], client, ACCESS_DELAY_MS)
    _add_link(topo, ring[half + 1], client, ACCESS_DELAY_MS)
    routes = [
        [server.name]
        + [f"W{i}" for i in range(1, half)]
        + [client.name],
        [server.name]
        + [f"W{i}" for i in range(n_nodes - 1, half, -1)]
        + [client.name],
    ]
    return _finalize(topo, spec, server, client, routes)


#: Family registry: family name -> builder.
FAMILIES: dict[str, Callable[[TopoSpec], GeneratedTestbed]] = {
    "fat_tree": build_fat_tree,
    "leaf_spine": build_leaf_spine,
    "repetita_wan": build_repetita_wan,
}


def build_testbed(spec: TopoSpec) -> GeneratedTestbed:
    """Build the testbed one spec describes (the family dispatch)."""
    builder = FAMILIES.get(spec.family)
    if builder is None:
        raise ConfigurationError(
            f"unknown topology family {spec.family!r}; "
            f"known: {sorted(FAMILIES)}"
        )
    return builder(spec)
