"""Parametric topology generators with calibrated cross traffic.

The Figure-8 Emulab layout (:mod:`repro.network.emulab`) is one data
point; this package generates *families* of topologies — k-ary
fat-trees, leaf-spine fabrics, and REPETITA-style repeatable random
WANs — as named, seeded, checksummed instances that plug into the
existing workload/cluster stack through the ``topology=`` parameter of
:func:`repro.workload.scenarios.make_scenario`.

Everything a generated instance is, is captured by its
:class:`TopoSpec`; :func:`build_testbed` turns a spec into a
:class:`GeneratedTestbed` (a drop-in
:class:`~repro.network.emulab.EmulabTestbed`), and
:func:`topo_checksum` digests the built structure as the
reproducibility proof.
"""

from repro.topo.generators import (
    FAMILIES,
    GeneratedTestbed,
    build_fat_tree,
    build_leaf_spine,
    build_repetita_wan,
    build_testbed,
    topo_checksum,
)
from repro.topo.mesh import overlay_mesh_from_testbed
from repro.topo.paths import (
    greedy_disjoint_routes,
    route_is_simple,
    routes_edge_disjoint,
    routes_node_disjoint,
    shortest_route,
)
from repro.topo.spec import (
    PRESETS,
    TopoSpec,
    parse_topology,
    resolve_topology,
)
from repro.topo.traffic import (
    DCFlowTraffic,
    IncastTraffic,
    TRAFFIC_SCENARIOS,
    bottleneck_sources,
    traffic_params,
)

__all__ = [
    "FAMILIES",
    "GeneratedTestbed",
    "PRESETS",
    "TRAFFIC_SCENARIOS",
    "TopoSpec",
    "DCFlowTraffic",
    "IncastTraffic",
    "bottleneck_sources",
    "build_fat_tree",
    "build_leaf_spine",
    "build_repetita_wan",
    "build_testbed",
    "greedy_disjoint_routes",
    "overlay_mesh_from_testbed",
    "parse_topology",
    "resolve_topology",
    "route_is_simple",
    "routes_edge_disjoint",
    "routes_node_disjoint",
    "shortest_route",
    "topo_checksum",
    "traffic_params",
]
