"""Deterministic disjoint-route extraction over adjacency maps.

:mod:`networkx`'s ``node_disjoint_paths`` decomposes a max-flow, so
*which* disjoint paths it returns depends on internal edge ordering —
i.e. on graph construction order.  Generated topologies need route
extraction that is a pure function of the graph's *structure* (so a
``topo_checksum`` built from the routes is reproducible from
``(family, params, seed)`` alone), which this module provides: greedy
shortest-route peeling with lexicographic tie-breaking.

The algorithm: repeatedly take the lexicographically-smallest minimum-
hop route from ``src`` to ``dst``, then remove its interior nodes
(node-disjoint mode) or its edges (edge-disjoint mode) and repeat.
Greedy peeling can under-count on adversarial graphs (max-flow is the
exact answer); callers that need the exact count fall back to a flow
computation when greedy comes up short (see
:meth:`repro.overlay.mesh.OverlayMesh.routes`).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from repro.errors import TopologyError


def _reverse_distances(
    adjacency: Mapping[str, Iterable[str]], dst: str
) -> dict[str, int]:
    """Hop count from every node *to* ``dst`` (BFS on reversed edges)."""
    reverse: dict[str, list[str]] = {}
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            reverse.setdefault(neighbor, []).append(node)
    dist = {dst: 0}
    queue = deque([dst])
    while queue:
        node = queue.popleft()
        for pred in reverse.get(node, ()):
            if pred not in dist:
                dist[pred] = dist[node] + 1
                queue.append(pred)
    return dist


def shortest_route(
    adjacency: Mapping[str, Iterable[str]], src: str, dst: str
) -> list[str] | None:
    """The lexicographically-smallest minimum-hop route, or ``None``.

    Walks from ``src`` toward ``dst`` always choosing the smallest-named
    neighbor that still lies on *some* shortest path — deterministic for
    a given structure no matter the insertion order of nodes or edges.
    """
    dist = _reverse_distances(adjacency, dst)
    if src not in dist:
        return None
    route = [src]
    node = src
    while node != dst:
        step = None
        for neighbor in sorted(adjacency.get(node, ())):
            if dist.get(neighbor, -1) == dist[node] - 1:
                step = neighbor
                break
        assert step is not None  # dist[src] finite => a next hop exists
        route.append(step)
        node = step
    return route


def greedy_disjoint_routes(
    adjacency: Mapping[str, Iterable[str]],
    src: str,
    dst: str,
    k: int,
    disjoint: str = "node",
) -> list[list[str]]:
    """Up to ``k`` mutually disjoint routes, shortest first.

    Returns fewer than ``k`` routes when greedy peeling exhausts the
    graph; raises only on malformed arguments.  ``disjoint`` selects
    what the routes may not share: interior ``"node"``s (the default —
    matching the paper's OverQoS-style no-shared-bottleneck placement)
    or ``"edge"``s.
    """
    if disjoint not in ("node", "edge"):
        raise TopologyError(f"disjoint must be 'node' or 'edge', got {disjoint!r}")
    if k < 1:
        raise TopologyError(f"k must be >= 1, got {k}")
    if src == dst:
        raise TopologyError("src and dst must differ")
    # Work on a mutable copy: sets for O(1) removal, sorted at walk time.
    work: dict[str, set[str]] = {
        node: set(neighbors) for node, neighbors in adjacency.items()
    }
    routes: list[list[str]] = []
    while len(routes) < k:
        route = shortest_route(work, src, dst)
        if route is None:
            break
        routes.append(route)
        if disjoint == "node":
            for interior in route[1:-1]:
                work.pop(interior, None)
            for neighbors in work.values():
                neighbors.difference_update(route[1:-1])
            # src->dst may also be a direct edge; burn it once used.
            if len(route) == 2:
                work[src].discard(dst)
        else:
            for a, b in zip(route[:-1], route[1:]):
                work[a].discard(b)
    return routes


def route_is_simple(route: list[str]) -> bool:
    """True when the route visits no node twice."""
    return len(set(route)) == len(route)


def routes_node_disjoint(routes: list[list[str]]) -> bool:
    """True when no two routes share an interior node."""
    seen: set[str] = set()
    for route in routes:
        interior = set(route[1:-1])
        if interior & seen:
            return False
        seen |= interior
    return True


def routes_edge_disjoint(routes: list[list[str]]) -> bool:
    """True when no two routes share a directed edge."""
    seen: set[tuple[str, str]] = set()
    for route in routes:
        for edge in zip(route[:-1], route[1:]):
            if edge in seen:
                return False
            seen.add(edge)
    return True
