"""Topology specs: the canonical identity of a generated instance.

A :class:`TopoSpec` is the *complete* recipe for one topology instance
— family, sorted parameters, seed, traffic scenario, and overlay path
count — in the REPETITA spirit of named, repeatable experiment
instances: anyone holding the spec rebuilds the byte-identical
topology, and :func:`TopoSpec.checksum` is the short proof.

Specs travel the stack as strings (scenario fields, runner spec
params, cluster ``assign`` frames): either a preset name from
:data:`PRESETS` (``fat_tree_k4``) or ``preset:traffic``
(``fat_tree_k4:dc-incast``) to override the traffic scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.runner.cache import payload_digest
from repro.topo.traffic import TRAFFIC_SCENARIOS


@dataclass(frozen=True)
class TopoSpec:
    """One generated-topology instance, reproducible from this alone.

    Attributes
    ----------
    family:
        Generator family name (``fat_tree`` / ``leaf_spine`` /
        ``repetita_wan``).
    params:
        Family parameters as a sorted tuple of ``(name, value)`` pairs
        — tuple, not dict, so specs are hashable and canonical.
    seed:
        Structure seed.  Only the random-WAN family draws from it, but
        it is part of every instance's identity.
    traffic:
        Cross-traffic scenario (see
        :data:`repro.topo.traffic.TRAFFIC_SCENARIOS`).
    n_paths:
        Node-disjoint overlay paths extracted between server and client.
    """

    family: str
    params: tuple[tuple[str, Any], ...]
    seed: int = 0
    traffic: str = "nlanr"
    n_paths: int = 2

    def __post_init__(self):
        if self.traffic not in TRAFFIC_SCENARIOS:
            raise ConfigurationError(
                f"unknown traffic scenario {self.traffic!r}; "
                f"known: {list(TRAFFIC_SCENARIOS)}"
            )
        if self.n_paths < 1:
            raise ConfigurationError(
                f"n_paths must be >= 1, got {self.n_paths}"
            )

    @classmethod
    def make(
        cls,
        family: str,
        seed: int = 0,
        traffic: str = "nlanr",
        n_paths: int = 2,
        **params: Any,
    ) -> "TopoSpec":
        """Build a spec with keyword parameters (sorted canonically)."""
        return cls(
            family=family,
            params=tuple(sorted(params.items())),
            seed=seed,
            traffic=traffic,
            n_paths=n_paths,
        )

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def with_traffic(self, traffic: str) -> "TopoSpec":
        """The same instance under a different traffic scenario."""
        return replace(self, traffic=traffic)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (checksums, runner params, docs)."""
        return {
            "family": self.family,
            "params": self.param_dict(),
            "seed": self.seed,
            "traffic": self.traffic,
            "n_paths": self.n_paths,
        }

    def checksum(self) -> str:
        """Digest of the spec identity (not the built structure)."""
        return payload_digest(self.to_dict())

    def label(self) -> str:
        """Short human-readable tag (report renders, spec names)."""
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({params})@{self.traffic}"


#: Named presets — one per family plus scaled-up variants.  The three
#: the acceptance criteria (and CI's topo-smoke) exercise directly are
#: ``fat_tree_k4``, ``leaf_spine_4x8``, and ``repetita_wan_s0``.
PRESETS: dict[str, TopoSpec] = {
    "fat_tree_k4": TopoSpec.make("fat_tree", k=4),
    "fat_tree_k8": TopoSpec.make("fat_tree", k=8, n_paths=4),
    "leaf_spine_4x8": TopoSpec.make(
        "leaf_spine", n_spine=4, n_leaf=8, hosts_per_leaf=4, n_paths=4
    ),
    "leaf_spine_2x4": TopoSpec.make(
        "leaf_spine", n_spine=2, n_leaf=4, hosts_per_leaf=2
    ),
    "repetita_wan_s0": TopoSpec.make(
        "repetita_wan", n_nodes=12, chords=4, seed=0
    ),
    "repetita_wan_s1": TopoSpec.make(
        "repetita_wan", n_nodes=12, chords=4, seed=1
    ),
}


def parse_topology(text: str) -> TopoSpec:
    """Parse a topology string: ``preset`` or ``preset:traffic``."""
    name, sep, traffic = text.partition(":")
    spec = PRESETS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown topology preset {name!r}; "
            f"known: {sorted(PRESETS)} "
            f"(append ':<traffic>' to override the traffic scenario)"
        )
    if sep:
        spec = spec.with_traffic(traffic)
    return spec


def resolve_topology(
    value: Union[None, str, TopoSpec, Mapping[str, Any]]
) -> Optional[TopoSpec]:
    """Normalize any accepted topology reference to a spec (or None)."""
    if value is None or isinstance(value, TopoSpec):
        return value
    if isinstance(value, str):
        return parse_topology(value)
    if isinstance(value, Mapping):
        return TopoSpec.make(
            value["family"],
            seed=int(value.get("seed", 0)),
            traffic=str(value.get("traffic", "nlanr")),
            n_paths=int(value.get("n_paths", 2)),
            **dict(value.get("params", {})),
        )
    raise ConfigurationError(
        f"cannot interpret topology reference {value!r}"
    )
