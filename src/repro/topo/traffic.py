"""Datacenter cross-traffic calibrated to benchmarking reality.

The NLANR-style profiles in :mod:`repro.traces.nlanr` model WAN
backbone links.  Datacenter links look different — per "Traffic
Generation for Benchmarking Data Centre Networks" (Parsonson et al.,
PAPERS.md) the load is dominated by three effects this module models
explicitly:

* **heavy-tailed flow sizes** — most flows are mice, most *bytes*
  travel in elephants; the flow-size distribution has a log-normal body
  and a Pareto tail (:class:`DCFlowTraffic`);
* **incast** — synchronized fan-in (e.g. a partition/aggregate step)
  lands many simultaneous flows on one victim leaf, producing short
  near-line-rate spikes (:class:`IncastTraffic`);
* **hot-rack skew** — rack-to-rack demand is far from uniform; a few
  hot racks carry a disproportionate share (modeled by per-path mean
  scaling in :func:`bottleneck_sources`).

Every generator is ``CrossTrafficSource``-compatible: it exposes
``sample(n, rng)`` like :class:`repro.traces.nlanr.CrossTrafficProfile`
and is attached to links through the *same*
:class:`~repro.network.crosstraffic.CrossTrafficSource` wrapper, so the
``RandomStreams`` substream discipline (one named ``fresh`` stream per
source) — and therefore byte-determinism per seed — carries over
unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.network.crosstraffic import CrossTrafficSource
from repro.network.link import Link

#: Pareto shape of the elephant tail.  1 < alpha < 2: finite mean,
#: infinite variance — the canonical datacenter flow-size regime.
ELEPHANT_ALPHA = 1.6

#: NLANR profile rotation for the default (WAN-like) traffic scenario:
#: path 0 gets the stabler profile, path 1 the noisier one — mirroring
#: the Figure-8 testbed's path-A/path-B asymmetry — and further paths
#: cycle through the remaining calibrated profiles.
NLANR_ROTATION = ("abilene-moderate", "abilene-noisy", "auckland", "light")


@dataclass(frozen=True)
class DCFlowTraffic:
    """Aggregate rate of a heavy-tailed datacenter flow arrival process.

    Flows arrive Poisson at a rate chosen so the long-run mean load is
    ``mean_mbps``; each flow's size is log-normal (the mice body) with
    probability ``1 - elephant_prob``, else Pareto (the elephant tail),
    and transmits at a constant ``flow_rate_mbps`` until drained.  The
    per-interval aggregate is the sum of concurrently active flows'
    rates — bursty at short timescales, calibrated in the mean.

    Attributes
    ----------
    name:
        Label (also part of the RNG substream key via the wrapping
        :class:`~repro.network.crosstraffic.CrossTrafficSource`).
    mean_mbps:
        Long-run mean aggregate rate the process is calibrated to.
    mice_mb, mice_sigma:
        Median (megabits) and log-std of the log-normal body.
    elephant_prob:
        Probability a flow is an elephant (Pareto-tailed).
    elephant_min_mb:
        Pareto scale: the smallest elephant, in megabits.
    flow_rate_mbps:
        Per-flow transmission rate (the sender's pacing/NIC share).
    """

    name: str
    mean_mbps: float
    mice_mb: float = 0.4
    mice_sigma: float = 1.0
    elephant_prob: float = 0.07
    elephant_min_mb: float = 8.0
    flow_rate_mbps: float = 8.0

    def __post_init__(self):
        if self.mean_mbps < 0:
            raise ConfigurationError(
                f"mean_mbps must be >= 0, got {self.mean_mbps}"
            )
        if not 0.0 <= self.elephant_prob < 1.0:
            raise ConfigurationError(
                f"elephant_prob must be in [0, 1), got {self.elephant_prob}"
            )
        if min(self.mice_mb, self.elephant_min_mb, self.flow_rate_mbps) <= 0:
            raise ConfigurationError(
                f"sizes and flow rate must be positive in {self.name!r}"
            )

    def mean_flow_mb(self) -> float:
        """Expected flow size (megabits) under the mixture."""
        mice = self.mice_mb * math.exp(self.mice_sigma**2 / 2)
        elephant = (
            ELEPHANT_ALPHA * self.elephant_min_mb / (ELEPHANT_ALPHA - 1.0)
        )
        return (
            (1.0 - self.elephant_prob) * mice
            + self.elephant_prob * elephant
        )

    def arrivals_per_s(self) -> float:
        """Flow arrival rate that yields the calibrated mean load."""
        return self.mean_mbps / self.mean_flow_mb()

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Aggregate rate (Mbps) over ``n`` measurement intervals.

        The calibration constants assume the testbed's measurement
        interval (0.1 s), which is what every realization in the stack
        uses; :class:`CrossTrafficSource` hands ``sample`` only the
        interval count, exactly as for the NLANR profiles.
        """
        dt = 0.1
        arrivals = rng.poisson(self.arrivals_per_s() * dt, size=n)
        total = int(arrivals.sum())
        if total == 0:
            return np.zeros(n)
        is_elephant = rng.random(total) < self.elephant_prob
        mice = self.mice_mb * rng.lognormal(0.0, self.mice_sigma, total)
        elephants = self.elephant_min_mb * (1.0 + rng.pareto(
            ELEPHANT_ALPHA, total
        ))
        sizes_mb = np.where(is_elephant, elephants, mice)
        # Each flow holds flow_rate_mbps for floor(size / rate / dt)
        # whole intervals plus one partial interval carrying the
        # residual, so delivered megabits equal the sampled size
        # exactly — otherwise rounding up would inflate the long-run
        # mean well above the calibration (mice are smaller than one
        # full-rate interval).  Accumulate via delta arrays + cumsum.
        per_interval_mb = self.flow_rate_mbps * dt
        full = np.floor(sizes_mb / per_interval_mb).astype(int)
        resid_rate = (sizes_mb - full * per_interval_mb) / dt
        starts = np.repeat(np.arange(n), arrivals)
        delta = np.zeros(n + 1)
        np.add.at(delta, starts, self.flow_rate_mbps)
        np.add.at(
            delta, np.minimum(starts + full, n), -self.flow_rate_mbps
        )
        np.add.at(delta, np.minimum(starts + full, n), resid_rate)
        np.add.at(delta, np.minimum(starts + full + 1, n), -resid_rate)
        # cumsum of cancelling float deltas can leave ~1e-13 residue.
        return np.maximum(np.cumsum(delta[:n]), 0.0)


@dataclass(frozen=True)
class IncastTraffic:
    """Synchronized fan-in bursts onto a victim link.

    Every ``period_s`` (with seeded phase jitter) ``fan_in`` senders
    simultaneously push ``request_mb`` each at ``flow_rate_mbps`` —
    a partition/aggregate barrier hitting one leaf.  The aggregate
    spike is ``fan_in * flow_rate_mbps`` for however many intervals the
    requests take to drain, typically enough to swamp the link outright
    for a few hundred milliseconds.
    """

    name: str
    fan_in: int = 24
    request_mb: float = 1.0
    flow_rate_mbps: float = 6.0
    period_s: float = 2.5
    jitter_s: float = 0.4

    def __post_init__(self):
        if self.fan_in < 1:
            raise ConfigurationError(
                f"fan_in must be >= 1, got {self.fan_in}"
            )
        if min(self.request_mb, self.flow_rate_mbps, self.period_s) <= 0:
            raise ConfigurationError(
                f"request, rate, and period must be positive in {self.name!r}"
            )
        if self.jitter_s < 0:
            raise ConfigurationError(
                f"jitter_s must be >= 0, got {self.jitter_s}"
            )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        dt = 0.1
        burst_rate = self.fan_in * self.flow_rate_mbps
        burst_intervals = max(
            1,
            int(math.ceil(self.request_mb / (self.flow_rate_mbps * dt))),
        )
        rates = np.zeros(n + 1)
        t = float(rng.uniform(0.0, self.period_s))
        while t < n * dt:
            start = int(t / dt)
            stop = min(start + burst_intervals, n)
            rates[start] += burst_rate
            rates[stop] -= burst_rate
            t += self.period_s + float(
                rng.uniform(-self.jitter_s, self.jitter_s)
            )
        return np.cumsum(rates[:n])


# ----------------------------------------------------------------------
# traffic scenarios: how sources land on a generated topology
# ----------------------------------------------------------------------
#: Baseline mean load per datacenter bottleneck (Mbps on 100 Mbps links)
#: — sized so residual bandwidth sits in the same regime as the NLANR
#: profiles, isolating the *distributional* differences.
DC_BASE_MEAN_MBPS = 46.0

#: Hot-rack skew: the hot path's bottleneck carries this multiple of
#: the base mean (popular-content rack), the rest slightly less.
HOT_RACK_FACTOR = 1.45
COOL_RACK_FACTOR = 0.95

#: The victim-path index for incast (and the hot path for hot-rack).
VICTIM_PATH = 0

#: Known traffic scenario names, in documentation order.
TRAFFIC_SCENARIOS = ("nlanr", "dc-baseline", "dc-incast", "dc-hotrack")


def bottleneck_sources(
    traffic: str, path_index: int, link: Link
) -> list[CrossTrafficSource]:
    """The cross-traffic sources one path's bottleneck link carries.

    ``traffic`` names the scenario; ``path_index`` is the overlay
    path's position (0-based) and selects profile rotation, the incast
    victim, and the hot rack.  Source names embed the link name, so
    every link draws from its own ``RandomStreams`` substream.
    """
    if traffic == "nlanr":
        profile = NLANR_ROTATION[path_index % len(NLANR_ROTATION)]
        return [
            CrossTrafficSource.from_profile_name(
                f"nlanr/{link.name}", profile
            )
        ]
    if traffic == "dc-baseline":
        return [_dc_flow_source(link, DC_BASE_MEAN_MBPS)]
    if traffic == "dc-incast":
        sources = [_dc_flow_source(link, DC_BASE_MEAN_MBPS)]
        if path_index == VICTIM_PATH:
            sources.append(
                CrossTrafficSource(
                    name=f"incast/{link.name}",
                    profile=IncastTraffic(name=f"incast/{link.name}"),
                )
            )
        return sources
    if traffic == "dc-hotrack":
        factor = (
            HOT_RACK_FACTOR
            if path_index == VICTIM_PATH
            else COOL_RACK_FACTOR
        )
        return [_dc_flow_source(link, DC_BASE_MEAN_MBPS * factor)]
    raise ConfigurationError(
        f"unknown traffic scenario {traffic!r}; "
        f"known: {list(TRAFFIC_SCENARIOS)}"
    )


def _dc_flow_source(link: Link, mean_mbps: float) -> CrossTrafficSource:
    return CrossTrafficSource(
        name=f"dc/{link.name}",
        profile=DCFlowTraffic(name=f"dc/{link.name}", mean_mbps=mean_mbps),
    )


def traffic_params(traffic: str) -> dict[str, float | str]:
    """Calibration knobs of a scenario, for checksums and docs."""
    if traffic not in TRAFFIC_SCENARIOS:
        raise ConfigurationError(
            f"unknown traffic scenario {traffic!r}; "
            f"known: {list(TRAFFIC_SCENARIOS)}"
        )
    params: dict[str, float | str] = {"traffic": traffic}
    if traffic.startswith("dc-"):
        params["mean_mbps"] = DC_BASE_MEAN_MBPS
        params["elephant_alpha"] = ELEPHANT_ALPHA
    if traffic == "dc-hotrack":
        params["hot_factor"] = HOT_RACK_FACTOR
        params["cool_factor"] = COOL_RACK_FACTOR
    return params
