"""Overlay meshes built from generated topologies.

The S3-style route tests (and any mesh-level experiment) need an
:class:`repro.overlay.mesh.OverlayMesh` whose logical links mirror a
generated underlay: one directed logical link per switch-level underlay
link.  Hosts and cross-traffic nodes are excluded — the overlay routes
between server, client, and switch-resident router daemons, exactly as
on the Figure-8 testbed.
"""

from __future__ import annotations

from repro.network.node import NodeKind
from repro.overlay.mesh import OverlayMesh
from repro.topo.generators import GeneratedTestbed

#: Node kinds the overlay can route through.
MESH_KINDS = (NodeKind.SERVER, NodeKind.CLIENT, NodeKind.ROUTER)

#: Profile rotation for mesh logical links: calibrated NLANR profiles
#: assigned round-robin over the *sorted* link names, so the assignment
#: is a pure function of structure (insertion-order independent).
MESH_PROFILE_ROTATION = ("calm", "light", "steady")


def overlay_mesh_from_testbed(testbed: GeneratedTestbed) -> OverlayMesh:
    """Mirror a generated testbed's switch fabric as an overlay mesh.

    Links are added in sorted-name order and profiles are assigned by
    that same order, so two testbeds with the same *structure* produce
    byte-identical meshes no matter how their nodes were inserted.
    """
    kinds = {node.name: node.kind for node in testbed.topology.nodes}
    mesh = OverlayMesh()
    links = sorted(testbed.topology.links, key=lambda l: l.name)
    for i, link in enumerate(links):
        if kinds[link.a.name] not in MESH_KINDS:
            continue
        if kinds[link.b.name] not in MESH_KINDS:
            continue
        mesh.add_link(
            link.a.name,
            link.b.name,
            profile=MESH_PROFILE_ROTATION[i % len(MESH_PROFILE_ROTATION)],
            capacity_mbps=link.capacity_mbps,
        )
    return mesh
