"""The interval-driven experiment runner.

One loop shared by every throughput figure in the paper:

1. Non-elastic streams accrue CBR arrivals into bounded backlogs.
2. The scheduler (PGOS or a baseline) emits per-path bandwidth requests —
   using only information from past intervals.
3. Each path resolves contention with :func:`repro.core.scheduler.water_fill`
   against its *realized* available bandwidth for the interval.
4. Deliveries drain backlogs; overflowing backlogs drop bytes (bounded
   receiver/sender buffers); the scheduler gets the interval's measured
   availability as feedback.

The result records per-(stream, path) throughput series — exactly the
curves plotted in Figures 9, 10, 12, and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.scheduler import SchedulerBase, water_fill
from repro.core.spec import StreamSpec
from repro.monitoring.probe import ProbingEstimator
from repro.network.emulab import TestbedRealization
from repro.units import bytes_in_interval, mbps_from_bytes


@dataclass
class ExperimentResult:
    """Recorded throughput of one scheduler run.

    Attributes
    ----------
    scheduler_name:
        Display name of the algorithm.
    dt:
        Measurement interval (seconds).
    stream_names, path_names:
        Dimension labels.
    delivered_mbps:
        ``delivered_mbps[stream][path]`` is the per-interval throughput
        series of that sub-stream (Mbps).
    available_mbps:
        The realized availability series per path over the same intervals.
    dropped_bytes:
        Bytes dropped per stream due to bounded buffers.
    """

    scheduler_name: str
    dt: float
    stream_names: list[str]
    path_names: list[str]
    delivered_mbps: dict[str, dict[str, np.ndarray]]
    available_mbps: dict[str, np.ndarray]
    dropped_bytes: dict[str, float] = field(default_factory=dict)

    @property
    def n_intervals(self) -> int:
        first = next(iter(self.available_mbps.values()))
        return len(first)

    @property
    def times(self) -> np.ndarray:
        """Interval start times, seconds from the experiment start."""
        return np.arange(self.n_intervals) * self.dt

    def stream_series(self, stream: str) -> np.ndarray:
        """Total per-interval throughput of ``stream`` across paths."""
        shares = self.delivered_mbps.get(stream)
        if not shares:
            raise ConfigurationError(f"unknown stream {stream!r}")
        total = np.zeros(self.n_intervals)
        for series in shares.values():
            total += series
        return total

    def substream_series(self, stream: str, path: str) -> np.ndarray:
        """Per-interval throughput of ``stream`` on ``path``."""
        shares = self.delivered_mbps.get(stream)
        if not shares or path not in shares:
            raise ConfigurationError(f"no sub-stream {stream!r} on {path!r}")
        return shares[path]

    def paths_used(self, stream: str, min_mbps: float = 0.1) -> list[str]:
        """Paths that ever carried a meaningful share of ``stream``."""
        shares = self.delivered_mbps.get(stream, {})
        return [
            p for p, series in shares.items() if float(series.max()) >= min_mbps
        ]

    def total_series(self) -> np.ndarray:
        """Aggregate throughput across all streams."""
        total = np.zeros(self.n_intervals)
        for stream in self.stream_names:
            total += self.stream_series(stream)
        return total


def run_schedule_experiment(
    scheduler: SchedulerBase,
    realization: TestbedRealization,
    streams: Sequence[StreamSpec],
    warmup_intervals: int = 100,
    buffer_seconds: float = 2.0,
    tw: Optional[float] = None,
    probe: Optional["ProbingEstimator"] = None,
    probe_seed: Optional[int] = None,
) -> ExperimentResult:
    """Run one scheduler over one testbed realization.

    Parameters
    ----------
    scheduler:
        Any :class:`SchedulerBase`; OptSched must have its oracle set.
    realization:
        Per-path availability from :meth:`EmulabTestbed.realize`.
    streams:
        The stream specifications.
    warmup_intervals:
        Probe-phase length: the scheduler observes these intervals (filling
        monitors/predictors) but no application traffic is recorded.
    buffer_seconds:
        Per-stream sender-buffer bound, in seconds of the stream's required
        rate; overflow is dropped and counted.
    tw:
        Scheduling-window length; defaults to ``10 * dt`` (1 s at the
        default 0.1 s interval, the paper's operating point).
    probe:
        Optional :class:`repro.monitoring.probe.ProbingEstimator`: the
        scheduler then *observes* probe estimates of availability instead
        of the truth (delivery still uses the true series) — the realistic
        monitoring regime.
    probe_seed:
        Seed for the probe's noise RNG; defaults to the realization's
        seed.  Sweeps pass a per-point derived seed so probe noise is
        independent of execution order and worker assignment.
    """
    dt = realization.dt
    tw = tw if tw is not None else 10 * dt
    path_names = realization.path_names()
    avail = {
        p: realization.available[p].available_mbps for p in path_names
    }
    n_total = realization.n_intervals
    if warmup_intervals < 0 or warmup_intervals >= n_total:
        raise ConfigurationError(
            f"warmup_intervals {warmup_intervals} out of range for "
            f"{n_total} intervals"
        )

    qos = realization.qos
    observed = avail
    if probe is not None:
        observed = probe.perturb_realization(
            {p: avail[p] for p in path_names},
            seed=realization.seed if probe_seed is None else probe_seed,
        )

    def feed(k: int) -> None:
        scheduler.observe(
            k,
            {p: float(observed[p][k]) for p in path_names},
            rtt_ms={p: float(qos[p].rtt_ms[k]) for p in path_names},
            loss_rate={p: float(qos[p].loss_rate[k]) for p in path_names},
        )

    scheduler.setup(streams, path_names, dt, tw)
    for k in range(warmup_intervals):
        feed(k)

    n = n_total - warmup_intervals
    delivered = {
        s.name: {p: np.zeros(n) for p in path_names} for s in streams
    }
    backlog_bytes: dict[str, float] = {s.name: 0.0 for s in streams}
    dropped: dict[str, float] = {s.name: 0.0 for s in streams}
    buffer_limit: dict[str, float] = {}
    for s in streams:
        if s.demand_mbps is not None:
            buffer_limit[s.name] = bytes_in_interval(
                s.demand_mbps, buffer_seconds
            )

    by_name = {s.name: s for s in streams}
    for k in range(warmup_intervals, n_total):
        idx = k - warmup_intervals
        # 1. arrivals
        backlog_mbps: dict[str, Optional[float]] = {}
        for s in streams:
            if s.demand_mbps is None:
                backlog_mbps[s.name] = None
                continue
            backlog_bytes[s.name] += bytes_in_interval(s.demand_mbps, dt)
            limit = buffer_limit[s.name]
            if backlog_bytes[s.name] > limit:
                dropped[s.name] += backlog_bytes[s.name] - limit
                backlog_bytes[s.name] = limit
            backlog_mbps[s.name] = mbps_from_bytes(backlog_bytes[s.name], dt)

        # 2. scheduler decision (uses only past observations)
        requests = scheduler.allocate(k, backlog_mbps)

        # 3. per-path contention against realized availability
        for p in path_names:
            path_requests = requests.get(p, [])
            if not path_requests:
                continue
            granted = water_fill(path_requests, float(avail[p][k]))
            for stream_name, mbps in granted.items():
                if mbps <= 0:
                    continue
                spec = by_name.get(stream_name)
                if spec is None:
                    raise ConfigurationError(
                        f"scheduler requested unknown stream {stream_name!r}"
                    )
                nbytes = bytes_in_interval(mbps, dt)
                if spec.demand_mbps is not None:
                    # Cannot deliver more than is queued.
                    nbytes = min(nbytes, backlog_bytes[stream_name])
                    backlog_bytes[stream_name] -= nbytes
                delivered[stream_name][p][idx] += mbps_from_bytes(nbytes, dt)

        # 4. feedback
        feed(k)

    return ExperimentResult(
        scheduler_name=scheduler.name,
        dt=dt,
        stream_names=[s.name for s in streams],
        path_names=list(path_names),
        delivered_mbps=delivered,
        available_mbps={
            p: avail[p][warmup_intervals:].copy() for p in path_names
        },
        dropped_bytes=dropped,
    )
