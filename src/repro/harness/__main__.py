"""``python -m repro.harness`` — see :mod:`repro.harness.cli`."""

import sys

from repro.harness.cli import main

sys.exit(main())
