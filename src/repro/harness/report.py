"""ASCII rendering of experiment results.

The paper's figures are plots; a terminal harness reports the same content
as tables (summary rows), CDF tables (value at fixed probability points),
and coarse sparkline series so a reader can eyeball stability.

Report files are written through :func:`write_report` — an atomic
temp-file + rename write — so a reader (or a parallel runner worker)
never observes a half-written report.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.fsutil import atomic_write_text

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def write_report(path: str | Path, text: str) -> Path:
    """Atomically write a rendered report, ensuring a trailing newline."""
    if not text.endswith("\n"):
        text += "\n"
    return atomic_write_text(path, text)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a left-aligned ASCII table with a header rule."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def sparkline(series: np.ndarray, width: int = 60) -> str:
    """Coarse unicode sparkline of a series (downsampled to ``width``)."""
    x = np.asarray(series, dtype=float)
    if x.size == 0:
        return ""
    if x.size > width:
        # Average within equal chunks.
        edges = np.linspace(0, x.size, width + 1).astype(int)
        x = np.array(
            [x[a:b].mean() if b > a else x[min(a, x.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(x.min()), float(x.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[4] * x.size
    scaled = (x - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(v))] for v in scaled)


def series_block(
    label: str, series: np.ndarray, width: int = 60
) -> str:
    """A labelled sparkline with min/mean/max annotations."""
    x = np.asarray(series, dtype=float)
    if x.size == 0:
        return f"{label}: (empty)"
    return (
        f"{label:<18} {sparkline(x, width)}  "
        f"min={x.min():6.2f} mean={x.mean():6.2f} max={x.max():6.2f}"
    )


def cdf_table(
    series_by_label: dict[str, np.ndarray],
    probabilities: Sequence[float] = (0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.95),
) -> str:
    """Throughput quantiles per labelled series — a tabular Figure 10/13.

    Each row gives, for probability ``p``, the throughput level below which
    the series falls a fraction ``p`` of the time (the CDF read off at
    fixed heights).
    """
    headers = ["P(thpt<=x)"] + list(series_by_label)
    rows = []
    for p in probabilities:
        row: list[object] = [f"{p:.2f}"]
        for series in series_by_label.values():
            row.append(float(np.percentile(np.asarray(series), p * 100.0)))
        rows.append(row)
    return format_table(headers, rows)


def paper_vs_measured_table(
    rows: Iterable[tuple[str, object, object]],
) -> str:
    """Three-column comparison: quantity, paper-reported, measured."""
    return format_table(
        ["quantity", "paper", "measured"],
        [(name, paper, measured) for name, paper, measured in rows],
    )
