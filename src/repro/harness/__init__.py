"""Experiment harness.

* :mod:`repro.harness.experiment` — the interval-driven experiment runner
  shared by every figure: schedulers emit requests, paths water-fill,
  backlogs evolve, throughput is recorded.
* :mod:`repro.harness.metrics` — the paper's evaluation metrics
  (percentile-of-time throughput, deadline/frame jitter, std deviations).
* :mod:`repro.harness.report` — ASCII rendering of figures as tables and
  series.
* :mod:`repro.harness.figures` — one module per paper figure, each
  returning a structured result with paper-vs-measured rows.
* :mod:`repro.harness.chaos` — chaos campaigns against the middleware:
  time-to-detect, time-to-recover, guarantee-violation seconds.
* :mod:`repro.harness.cli` — ``python -m repro.harness fig9 --seed 7``.
"""

from repro.harness.chaos import ChaosReport, run_chaos_campaign, run_chaos_suite
from repro.harness.experiment import ExperimentResult, run_schedule_experiment
from repro.harness.metrics import StreamSummary, frame_jitter_ms, summarize_stream

__all__ = [
    "ExperimentResult",
    "run_schedule_experiment",
    "StreamSummary",
    "summarize_stream",
    "frame_jitter_ms",
    "ChaosReport",
    "run_chaos_campaign",
    "run_chaos_suite",
]
