"""Evaluation metrics used by the paper's figures.

Figure 11 reports, per stream and algorithm: the target bandwidth, the
mean achieved, the bandwidth achieved 95 % and 99 % of the time, and the
standard deviation.  Section 6.1 additionally reports application frame
jitter (2.0 ms under MSFQ vs 1.4 ms under PGOS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.units import bytes_in_interval


def bandwidth_at_time_fraction(series: np.ndarray, fraction: float) -> float:
    """Bandwidth achieved at least ``fraction`` of the time.

    ``bandwidth_at_time_fraction(x, 0.95)`` is the level the stream met or
    exceeded 95 % of the time — the ``(1 - fraction)`` quantile.
    """
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
    x = np.asarray(series, dtype=float)
    if x.size == 0:
        raise ConfigurationError("empty series")
    return float(np.percentile(x, (1.0 - fraction) * 100.0))


def fraction_of_time_at_least(series: np.ndarray, target: float) -> float:
    """Fraction of intervals in which throughput was >= ``target``."""
    x = np.asarray(series, dtype=float)
    if x.size == 0:
        raise ConfigurationError("empty series")
    return float(np.mean(x >= target))


@dataclass(frozen=True)
class StreamSummary:
    """The Figure-11 row for one stream under one algorithm."""

    stream: str
    algorithm: str
    target_mbps: Optional[float]
    mean_mbps: float
    std_mbps: float
    p95_time_mbps: float
    p99_time_mbps: float
    fraction_meeting_target: Optional[float]

    def target_attainment_at(self, fraction_label: str = "p95") -> Optional[float]:
        """Achieved / target ratio at the 95 %- or 99 %-of-time level."""
        if self.target_mbps is None or self.target_mbps <= 0:
            return None
        value = (
            self.p95_time_mbps if fraction_label == "p95" else self.p99_time_mbps
        )
        return value / self.target_mbps


def summarize_stream(
    series: np.ndarray,
    stream: str,
    algorithm: str,
    target_mbps: Optional[float] = None,
) -> StreamSummary:
    """Compute the Figure-11 metrics for one throughput series."""
    x = np.asarray(series, dtype=float)
    if x.size == 0:
        raise ConfigurationError("empty series")
    return StreamSummary(
        stream=stream,
        algorithm=algorithm,
        target_mbps=target_mbps,
        mean_mbps=float(x.mean()),
        std_mbps=float(x.std()),
        p95_time_mbps=bandwidth_at_time_fraction(x, 0.95),
        p99_time_mbps=bandwidth_at_time_fraction(x, 0.99),
        fraction_meeting_target=(
            fraction_of_time_at_least(x, target_mbps)
            if target_mbps is not None
            else None
        ),
    )


def frame_delivery_times(
    series_mbps: np.ndarray, dt: float, frame_bytes: float
) -> np.ndarray:
    """Completion time of each frame given a throughput series.

    The stream's delivered bytes accumulate piecewise-linearly within each
    interval; frame *i* completes when cumulative delivery reaches
    ``(i + 1) * frame_bytes``.  Frames not fully delivered by the end of
    the series are dropped from the result.
    """
    if frame_bytes <= 0:
        raise ConfigurationError(f"frame_bytes must be > 0, got {frame_bytes}")
    x = np.asarray(series_mbps, dtype=float)
    per_interval = np.array([bytes_in_interval(m, dt) for m in x])
    cumulative = np.concatenate([[0.0], np.cumsum(per_interval)])
    total = cumulative[-1]
    n_frames = int(total // frame_bytes)
    if n_frames == 0:
        return np.empty(0)
    targets = frame_bytes * np.arange(1, n_frames + 1)
    # Invert the piecewise-linear cumulative curve.
    idx = np.searchsorted(cumulative, targets, side="left")
    idx = np.clip(idx, 1, len(cumulative) - 1)
    prev = cumulative[idx - 1]
    gained = cumulative[idx] - prev
    frac = np.where(gained > 0, (targets - prev) / gained, 1.0)
    return (idx - 1 + frac) * dt


def frame_jitter_ms(
    series_mbps: np.ndarray,
    dt: float,
    frame_bytes: float,
    frame_rate: float,
) -> float:
    """Application frame jitter (ms): deviation of inter-delivery spacing.

    Mean absolute deviation of consecutive frame-completion gaps from the
    nominal ``1 / frame_rate`` period — the quantity the paper reports as
    2.0 ms (MSFQ) vs 1.4 ms (PGOS) for SmartPointer.
    """
    if frame_rate <= 0:
        raise ConfigurationError(f"frame_rate must be > 0, got {frame_rate}")
    times = frame_delivery_times(series_mbps, dt, frame_bytes)
    if times.size < 2:
        return 0.0
    gaps = np.diff(times)
    nominal = 1.0 / frame_rate
    return float(np.mean(np.abs(gaps - nominal)) * 1000.0)


def required_playout_buffer_bytes(
    series_mbps: np.ndarray, dt: float, playout_mbps: float
) -> float:
    """Receiver buffer needed to play out at a constant rate without stalls.

    The companion tech report's buffer analysis: with a pre-buffered start,
    the client needs enough buffered bytes to ride out every deficit
    period where delivery lags the playout rate.  Given the delivered
    series, that is the maximum cumulative shortfall
    ``max_t (playout*t - delivered[0..t])`` (clipped at 0).

    A smoother delivery (PGOS) has smaller deficits than a bursty one
    (MSFQ) at the same mean — the "reduces the server/client buffer size
    requirement" claim.
    """
    if playout_mbps <= 0:
        raise ConfigurationError(
            f"playout_mbps must be > 0, got {playout_mbps}"
        )
    x = np.asarray(series_mbps, dtype=float)
    if x.size == 0:
        raise ConfigurationError("empty series")
    delivered = np.cumsum([bytes_in_interval(m, dt) for m in x])
    playout = bytes_in_interval(playout_mbps, dt) * np.arange(1, x.size + 1)
    deficit = playout - delivered
    return float(max(np.max(deficit), 0.0))


def downside_deviation(series_mbps: np.ndarray, target_mbps: float) -> float:
    """Root-mean-square shortfall below ``target_mbps``.

    The guarantee-centric stability metric: intervals *above* target
    (e.g. backlog catch-up spikes after a dip) do not hurt the
    application, so only the downside counts.  Zero when the target is
    always met.
    """
    if target_mbps <= 0:
        raise ConfigurationError(
            f"target_mbps must be > 0, got {target_mbps}"
        )
    x = np.asarray(series_mbps, dtype=float)
    if x.size == 0:
        raise ConfigurationError("empty series")
    shortfall = np.clip(target_mbps - x, 0.0, None)
    return float(np.sqrt(np.mean(shortfall**2)))


def burstiness(series_mbps: np.ndarray) -> float:
    """Coefficient of variation of per-interval delivery.

    The tech report's companion claim: statistical prediction makes the
    transfer "less bursty".  Zero for perfectly smooth delivery.
    """
    x = np.asarray(series_mbps, dtype=float)
    if x.size == 0:
        raise ConfigurationError("empty series")
    mean = float(x.mean())
    if mean == 0.0:
        return 0.0
    return float(x.std() / mean)


def empirical_cdf_points(series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) points of a series' empirical CDF — the Figure 10/13 axes."""
    x = np.sort(np.asarray(series, dtype=float))
    if x.size == 0:
        raise ConfigurationError("empty series")
    f = np.arange(1, x.size + 1) / x.size
    return x, f


def window_constraint_satisfaction(
    series_mbps: np.ndarray,
    dt: float,
    tw: float,
    x_packets: int,
    packet_size: int,
) -> float:
    """Fraction of scheduling windows meeting a DWCS window constraint.

    A window constraint (x, y) demands that at least ``x`` of the window's
    packets be serviced (Section 5.1).  Given a delivered-throughput
    series at interval ``dt``, this aggregates it into windows of ``tw``
    and checks how many delivered at least ``x`` packets of
    ``packet_size`` — the quantity the Theorem-1 guarantee ("the window
    constraint will be met with probability P_i") is stated over.
    """
    if x_packets < 0:
        raise ConfigurationError(f"x_packets must be >= 0, got {x_packets}")
    if packet_size <= 0:
        raise ConfigurationError(
            f"packet_size must be positive, got {packet_size}"
        )
    k = int(round(tw / dt))
    if k < 1 or abs(tw / dt - k) > 1e-9:
        raise ConfigurationError(
            f"tw {tw} must be an integer multiple of dt {dt}"
        )
    x = np.asarray(series_mbps, dtype=float)
    n = (x.size // k) * k
    if n == 0:
        raise ConfigurationError("series shorter than one window")
    per_window_bytes = (
        np.array([bytes_in_interval(m, dt) for m in x[:n]])
        .reshape(-1, k)
        .sum(axis=1)
    )
    packets = per_window_bytes / packet_size
    # Half-packet tolerance absorbs fluid-model rounding at the boundary.
    return float(np.mean(packets >= x_packets - 0.5))


def deadline_miss_rate(
    series_mbps: np.ndarray, dt: float, required_mbps: float
) -> float:
    """Fraction of intervals delivering less than the required rate.

    The interval-level rendering of the paper's deadline miss rate: an
    interval below the required rate means some packets missed their
    virtual deadlines in that window.
    """
    if required_mbps <= 0:
        raise ConfigurationError(
            f"required_mbps must be > 0, got {required_mbps}"
        )
    x = np.asarray(series_mbps, dtype=float)
    if x.size == 0:
        raise ConfigurationError("empty series")
    # Tolerate float rounding at the boundary.
    return float(np.mean(x < required_mbps * (1 - 1e-9)))
