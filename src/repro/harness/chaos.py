"""Chaos-campaign harness: measure fault tolerance, not just throughput.

A chaos campaign drives the full middleware
(:class:`repro.middleware.service.IQPathsService`) through a seeded
:class:`repro.network.faults.FaultCampaign` — link flapping, correlated
multi-path outages, monitor blackouts — and reports the robustness
metrics the throughput figures cannot show:

* **time to detect** — first health transition off ``HEALTHY`` on a
  faulted path, measured from the campaign's first fault onset;
* **time to recover** — all paths back to ``HEALTHY`` (probe-confirmed,
  backoff-gated), measured from the campaign's last fault end;
* **guarantee-violation seconds** — per guaranteed stream, how long its
  delivered rate sat below its requirement;
* **packets lost during remap** — shortfall volume (converted to
  packets) between fault onset and recovery, i.e. what the disruption
  cost while the overlay was re-routing.

Campaigns are seeded and the whole pipeline is deterministic: the same
seed reproduces the same report, which is what makes the chaos suite a
regression test rather than a dice roll.

The harness runs with observability on by default: the report's
time-to-detect/recover figures are computed *from the trace* (the
``health.transition`` events every run emits), not from private
bookkeeping, so ``tools/trace_report.py`` can reconstruct exactly the
numbers the report prints.  The legacy transition-log computation is
kept (``_detection_latency`` / ``_recovery_latency``) as the
cross-check the test suite holds the trace against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.pgos import PGOSScheduler
from repro.core.spec import StreamSpec
from repro.network.emulab import TestbedRealization, make_figure8_testbed
from repro.network.faults import FaultCampaign
from repro.obs.context import Observability
from repro.obs.events import Category
from repro.obs.introspect import (
    detection_latency_from_trace,
    recovery_latency_from_trace,
)
from repro.robustness.health import (
    HealthThresholds,
    HealthTracker,
    HealthTransition,
    PathHealth,
)


@dataclass(frozen=True)
class ChaosReport:
    """Robustness metrics from one campaign run.

    ``time_to_detect`` / ``time_to_recover`` are ``None`` when the event
    never happened (no transition fired / paths never all healed), so a
    finite value is itself an assertion that the loop closed.
    """

    campaign: str
    dt: float
    duration: float
    #: seconds from first fault onset to first off-HEALTHY transition
    #: on a faulted path
    time_to_detect: Optional[float]
    #: seconds from last fault end until every path is HEALTHY again
    time_to_recover: Optional[float]
    #: per guaranteed stream, seconds delivered below its requirement
    violation_seconds: dict[str, float]
    #: per guaranteed stream, shortfall packets between onset and recovery
    packets_lost_during_remap: dict[str, int]
    #: per stream, fraction of its lifetime at >= its requirement
    attainment: dict[str, Optional[float]]
    remap_count: int
    transitions: tuple[HealthTransition, ...] = ()
    events: tuple[str, ...] = ()
    #: The run's observability context (trace + metrics); ``None`` only
    #: when the caller explicitly disabled it.
    obs: Optional[Observability] = None

    @property
    def detected(self) -> bool:
        return self.time_to_detect is not None

    @property
    def recovered(self) -> bool:
        return self.time_to_recover is not None

    def summary(self) -> str:
        """A compact human-readable scorecard."""
        def fmt(value: Optional[float]) -> str:
            return f"{value:.2f}s" if value is not None else "never"

        lines = [
            f"campaign {self.campaign!r} over {self.duration:.0f}s "
            f"(dt={self.dt}s)",
            f"  time to detect : {fmt(self.time_to_detect)}",
            f"  time to recover: {fmt(self.time_to_recover)}",
            f"  remaps         : {self.remap_count}",
        ]
        for name in sorted(self.violation_seconds):
            attain = self.attainment.get(name)
            attain_s = f"{attain:.3f}" if attain is not None else "n/a"
            lines.append(
                f"  {name}: violation {self.violation_seconds[name]:.1f}s, "
                f"lost {self.packets_lost_during_remap[name]} pkts "
                f"during remap, attainment {attain_s}"
            )
        return "\n".join(lines)


def _detection_latency(
    transitions: Sequence[HealthTransition],
    campaign: FaultCampaign,
) -> Optional[float]:
    """Seconds from first fault onset to first off-HEALTHY transition."""
    onset = campaign.first_onset
    for tr in transitions:
        if tr.path in campaign.faulted_paths and tr.time >= onset:
            return tr.time - onset
    return None


def _recovery_latency(
    tracker: HealthTracker,
    campaign: FaultCampaign,
) -> Optional[float]:
    """Seconds from last fault end until every path is HEALTHY again.

    Uses the transition log: replays path states over time and finds the
    first instant at/after the campaign's end where all are HEALTHY.
    """
    end = campaign.last_end
    states = {p: PathHealth.HEALTHY for p in tracker.machines}
    for tr in sorted(tracker.transitions, key=lambda t: t.time):
        states[tr.path] = tr.new
        if tr.time >= end and all(
            s is PathHealth.HEALTHY for s in states.values()
        ):
            return tr.time - end
    # No transition at/after the end completed the recovery: either all
    # paths were already healthy when the faults ended (instantaneous),
    # or some path never healed.
    if all(s is PathHealth.HEALTHY for s in states.values()):
        return 0.0
    return None


def run_chaos_campaign(
    realization: TestbedRealization,
    streams: Sequence[StreamSpec],
    campaign: FaultCampaign,
    warmup_intervals: int = 200,
    tw: float = 1.0,
    thresholds: Optional[HealthThresholds] = None,
    scheduler: Optional[PGOSScheduler] = None,
    duration: Optional[float] = None,
    obs: Optional[Observability] = None,
) -> ChaosReport:
    """Run ``streams`` through ``campaign`` and score the fault handling.

    The service runs with ``strict_admission=False`` (a chaos run must
    not abort because the faulted overlay cannot re-admit everything —
    that is exactly the condition under test) and an auto-settled
    duration: long enough to cover the campaign plus a recovery tail,
    bounded by the realization.

    A fresh enabled :class:`Observability` context is created unless one
    is passed; the report's detect/recover figures come from its trace.
    """
    known = set(realization.path_names())
    ghost = (
        campaign.faulted_paths | {b.path for b in campaign.blackouts}
    ) - known
    if ghost:
        raise ConfigurationError(
            f"campaign targets unknown paths {sorted(ghost)}; "
            f"realization has {sorted(known)}"
        )
    dt = realization.dt
    max_duration = (realization.n_intervals - warmup_intervals) * dt
    if duration is None:
        # Campaign + the worst-case backoff tail, capped by the data.
        th = thresholds or HealthThresholds()
        tail = 2.0 * th.backoff_max + 10.0 * tw
        duration = min(campaign.last_end + tail, max_duration)
    if duration > max_duration + 1e-9:
        raise ConfigurationError(
            f"duration {duration}s exceeds realization "
            f"({max_duration}s after warmup)"
        )
    # Imported here, not at module top: the service pulls in
    # repro.harness.metrics, whose package __init__ imports this module.
    from repro.middleware.service import IQPathsService

    if obs is None:
        obs = Observability()
    tracker = HealthTracker(realization.path_names(), thresholds)
    service = IQPathsService(
        realization,
        warmup_intervals=warmup_intervals,
        tw=tw,
        strict_admission=False,
        scheduler=scheduler,
        campaign=campaign,
        health=tracker,
        obs=obs,
    )
    obs.trace.emit(
        0.0,
        Category.HARNESS,
        "campaign_start",
        campaign=campaign.name,
        faults=len(campaign.faults),
        blackouts=len(campaign.blackouts),
        first_onset=campaign.first_onset,
        last_end=campaign.last_end,
        duration=duration,
    )
    for spec in streams:
        service.open_stream(spec)
    service.advance(duration)

    guaranteed = [
        s for s in streams if s.guaranteed or s.max_violation_rate is not None
    ]
    reports: dict[str, StreamReport] = service.reports()
    violation_seconds: dict[str, float] = {}
    packets_lost: dict[str, int] = {}
    # The trace is the source of truth; the transition-log computation
    # below is the legacy bookkeeping the tests cross-check against.
    trace_events = obs.trace.events(category=Category.HEALTH)
    if obs.enabled:
        detect = detection_latency_from_trace(
            trace_events, campaign.faulted_paths, campaign.first_onset
        )
        recover = recovery_latency_from_trace(
            trace_events, realization.path_names(), campaign.last_end
        )
    else:
        detect = _detection_latency(tracker.transitions, campaign)
        recover = _recovery_latency(tracker, campaign)
    onset = campaign.first_onset
    recovery_t = (
        campaign.last_end + recover if recover is not None else duration
    )
    for spec in guaranteed:
        series = reports[spec.name].mbps
        target = spec.required_mbps or 0.0
        below = series < target * 0.999
        violation_seconds[spec.name] = float(below.sum()) * dt
        lo = max(int(round(onset / dt)), 0)
        hi = min(int(round(recovery_t / dt)), series.size)
        shortfall_mbps = np.clip(target - series[lo:hi], 0.0, None)
        lost_bytes = float(shortfall_mbps.sum()) * dt * 1e6 / 8.0
        packets_lost[spec.name] = int(round(lost_bytes / spec.packet_size))
    obs.trace.emit(
        duration,
        Category.HARNESS,
        "campaign_end",
        campaign=campaign.name,
        time_to_detect=detect,
        time_to_recover=recover,
        remap_count=service.scheduler.remap_count,
    )
    obs.metrics.snapshot(duration)
    return ChaosReport(
        campaign=campaign.name,
        dt=dt,
        duration=duration,
        time_to_detect=detect,
        time_to_recover=recover,
        violation_seconds=violation_seconds,
        packets_lost_during_remap=packets_lost,
        attainment={
            name: rep.attainment for name, rep in reports.items()
        },
        remap_count=service.scheduler.remap_count,
        transitions=tuple(tracker.transitions),
        events=tuple(service.events),
        obs=obs,
    )


def standard_chaos_run(
    seed: int = 7,
    duration: float = 80.0,
    realization_seed: int = 41,
    realization_duration: float = 220.0,
    dt: float = 0.1,
    obs: Optional[Observability] = None,
) -> ChaosReport:
    """The canonical seeded campaign, as a pure spec->result function.

    Figure-8 testbed with a viable backup path, a random campaign (link
    flapping + correlated outage + monitor blackout) generated from
    ``seed``, driven through the full middleware.  This is the single
    construction shared by ``tools/run_chaos.py``, the CI chaos smoke,
    and the ``repro.runner`` chaos task — same seed, same report.
    """
    from repro.apps.smartpointer import smartpointer_streams

    testbed = make_figure8_testbed(
        profile_a="abilene-moderate", profile_b="light"
    )
    realization = testbed.realize(
        seed=realization_seed, duration=realization_duration, dt=dt
    )
    campaign = FaultCampaign.random(
        ["A", "B"], duration=duration, seed=seed
    )
    return run_chaos_campaign(
        realization, smartpointer_streams(), campaign, obs=obs
    )


def run_chaos_suite(
    realization: TestbedRealization,
    streams: Sequence[StreamSpec],
    campaigns: Sequence[FaultCampaign],
    **kwargs,
) -> list[ChaosReport]:
    """Sweep several campaigns over fresh service instances."""
    if not campaigns:
        raise ConfigurationError("at least one campaign is required")
    return [
        run_chaos_campaign(realization, streams, campaign, **kwargs)
        for campaign in campaigns
    ]
