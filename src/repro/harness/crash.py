"""Kill-injection harness: prove crash-safety by actually crashing.

The determinism contract of :mod:`repro.checkpoint` — a run SIGKILLed
at arbitrary points and resumed from its last checkpoint produces
byte-identical results — is only worth anything if it is *tested* with
real SIGKILLs, not cooperative exceptions.  This module provides the
two halves:

:class:`KillSwitch`
    Runs *inside* a worker.  Armed with a list of virtual-time kill
    points, it SIGKILLs its own process the first time the simulation
    clock reaches each point.  A plain marker file (``kills.json``,
    atomically replaced, deliberately outside the digest-verified
    checkpoint) counts kills already delivered, so each point fires
    exactly once across restarts and the run always makes progress.

:func:`run_crash_test`
    Runs in the orchestrator.  Computes the uninterrupted golden
    report, then drives the same spec through the supervised executor
    with the kill switch armed, and asserts the survivor's payload is
    byte-identical to the golden's.

Kill points are seeded (:func:`seeded_kill_points`): derived from the
spec seed so a failing crash test reproduces exactly.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fsutil import atomic_write_text
from repro.runner.spec import mix_seed


def seeded_kill_points(
    duration: float, n: int, seed: int, label: str = "crash-test"
) -> list[float]:
    """``n`` deterministic kill times inside ``(10%, 90%)`` of the run.

    Drawn from a seed-derived substream and sorted; two harness runs
    with the same arguments kill at the same virtual instants.
    """
    if n < 1:
        raise ConfigurationError(f"need at least one kill point, got {n}")
    if duration <= 0:
        raise ConfigurationError(
            f"duration must be positive, got {duration}"
        )
    rng = np.random.default_rng(mix_seed(seed, "kill-points", label))
    points = rng.uniform(0.1 * duration, 0.9 * duration, size=n)
    return sorted(round(float(t), 3) for t in points)


class KillSwitch:
    """Self-SIGKILL at planned virtual times, exactly once per point.

    The kills-delivered counter lives in ``kills.json`` next to the
    checkpoint.  It is written *before* the kill (atomic replace, so
    the count survives the SIGKILL) and is intentionally not part of
    the digest-verified snapshot: it records harness progress, not
    simulation state, and advancing it must not move the resume point.
    """

    MARKER = "kills.json"

    def __init__(
        self,
        root: Union[str, Path],
        kill_points: Sequence[float],
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.kill_points = sorted(float(t) for t in kill_points)

    @property
    def marker_path(self) -> Path:
        return self.root / self.MARKER

    @property
    def kills_done(self) -> int:
        """Kill points already delivered (0 when the marker is absent)."""
        try:
            data = json.loads(self.marker_path.read_text())
            return int(data["kills"])
        except (OSError, ValueError, KeyError, TypeError):
            return 0

    def maybe_kill(self, t: float) -> None:
        """SIGKILL this process if virtual time reached the next point."""
        done = self.kills_done
        if done >= len(self.kill_points):
            return
        if t < self.kill_points[done]:
            return
        # Count first, kill second: if the count is durable the next
        # attempt skips this point, so progress is monotone even when a
        # kill lands before the next periodic checkpoint.
        atomic_write_text(
            self.marker_path, json.dumps({"kills": done + 1})
        )
        os.kill(os.getpid(), signal.SIGKILL)


def run_crash_test(
    scenario: str = "baseline",
    seed: int = 0,
    kills: int = 3,
    duration: float = 20.0,
    max_sessions: Optional[int] = 150,
    checkpoint_every: float = 2.0,
    workers: int = 1,
    rate_scale: float = 1.0,
    work_dir: Optional[Union[str, Path]] = None,
    manifest_path: Optional[Union[str, Path]] = None,
) -> dict[str, Any]:
    """Golden-vs-survivor crash test through the supervised executor.

    1. Run the workload spec uninterrupted (inline) — the golden.
    2. Run the identical simulation through :func:`run_specs` with a
       checkpoint root and ``kills`` seeded SIGKILL points armed; the
       supervisor restarts the worker after each kill and every restart
       resumes from the last verified checkpoint.
    3. Compare payloads byte for byte.

    Returns a summary dict (``identical``, checksums, attempts, kill
    points); raises nothing on mismatch — callers check ``identical``
    so the CLI can exit nonzero with the full summary printed.
    """
    import tempfile

    from repro.runner.executor import run_specs
    from repro.runner.spec import RunSpec
    from repro.runner.tasks import execute_spec

    kill_points = seeded_kill_points(duration, kills, seed)

    def make_spec(with_kills: bool) -> RunSpec:
        params: dict[str, Any] = {
            "scenario": scenario,
            "rate_scale": rate_scale,
            "duration": duration,
            "max_sessions": max_sessions,
            "checkpoint_every": checkpoint_every,
        }
        if with_kills:
            params["kill_points"] = kill_points
        return RunSpec(
            kind="workload",
            name=f"crash-{scenario}" if with_kills else f"gold-{scenario}",
            params=params,
            seed=seed,
        )

    golden_payload = execute_spec(make_spec(with_kills=False))

    cleanup = None
    if work_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-crash-")
        work_dir = cleanup.name
    try:
        report = run_specs(
            [make_spec(with_kills=True)],
            workers=workers,
            retries=kills + 1,
            checkpoint_root=os.path.join(str(work_dir), "ckpt"),
            retry_backoff_s=0.01,
            manifest_path=(
                str(manifest_path) if manifest_path is not None else None
            ),
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    outcome = report.outcomes[0]
    survivor_payload = outcome.payload
    identical = (
        outcome.status == "ok"
        and survivor_payload is not None
        and json.dumps(survivor_payload, sort_keys=True)
        == json.dumps(golden_payload, sort_keys=True)
    )
    return {
        "identical": identical,
        "scenario": scenario,
        "seed": seed,
        "workers": workers,
        "kill_points": kill_points,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "error": outcome.error,
        "golden_checksum": golden_payload["checksum"],
        "survivor_checksum": (
            survivor_payload.get("checksum")
            if survivor_payload is not None
            else None
        ),
    }
