"""Command-line entry point: regenerate any figure from the paper.

Examples
--------
::

    python -m repro.harness fig9 --seed 7
    python -m repro.harness all --fast
    iqpaths fig12
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.figures import FIGURES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="iqpaths",
        description=(
            "Reproduce the figures of 'IQ-Paths: Predictably High "
            "Performance Data Streams across Dynamic Network Overlays' "
            "(HPDC 2006)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="realization seed (default: each figure's canonical seed)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shorter runs (same structure, CI-friendly)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write each figure's report to DIR/<figure>.txt",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    out_dir = None
    if args.output is not None:
        from pathlib import Path

        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        runner = FIGURES[name]
        kwargs = {"fast": args.fast}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = runner(**kwargs)
        rendered = result.render()
        print(rendered)
        print()
        if out_dir is not None:
            from repro.harness.report import write_report

            write_report(out_dir / f"{name}.txt", rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
